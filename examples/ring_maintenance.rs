//! Domain scenario: a fleet of token-ring style networks must maintain a
//! global Hamiltonian cycle (every processor on one cycle). The scheme
//! certifies Hamiltonicity together with the pathwidth bound, so after any
//! reconfiguration each processor can re-check the invariant from its
//! local labels alone — the self-stabilization use case that motivated
//! proof labeling schemes. The whole fleet goes through one
//! [`BatchRunner`] sweep.
//!
//! Run with `cargo run --example ring_maintenance`.

use lanecert_suite::algebra::{props::HamiltonianCycle, Algebra};
use lanecert_suite::graph::{generators, VertexId};
use lanecert_suite::{BatchJob, BatchRunner, CertError, Certifier, Configuration};

fn main() {
    let certifier = Certifier::builder()
        .property(Algebra::shared(HamiltonianCycle))
        .pathwidth(2)
        .build()
        .expect("complete spec");

    // Healthy ring with two maintenance chords (still Hamiltonian, pw 2).
    let mut ring = generators::cycle_graph(10);
    ring.add_edge(VertexId(0), VertexId(2)).unwrap();
    ring.add_edge(VertexId(5), VertexId(7)).unwrap();

    let report = BatchRunner::new(certifier).run([
        BatchJob::new(Configuration::with_random_ids(ring, 17)).named("ring+chords"),
        // A ladder interconnect is also Hamiltonian with pathwidth 2.
        BatchJob::new(Configuration::with_random_ids(generators::ladder(6), 17)).named("ladder"),
        // A broken reconfiguration: a path is not a cycle — the prover
        // refuses, and per soundness no adversarial labeling could fool
        // the verifiers.
        BatchJob::new(Configuration::with_random_ids(
            generators::path_graph(10),
            17,
        ))
        .named("broken (path)"),
    ]);

    for outcome in &report.outcomes {
        match &outcome.result {
            Ok(r) => {
                assert!(r.accepted());
                println!(
                    "{}: certified Hamiltonian (max label {} bits over {} edges)",
                    outcome.name, r.max_label_bits, r.edges
                );
            }
            Err(CertError::PropertyViolated) => {
                println!(
                    "{}: prover refuses — network is NOT Hamiltonian",
                    outcome.name
                );
            }
            Err(e) => println!("{}: {e}", outcome.name),
        }
    }
    println!("\nfleet: {}", report.summary());
    assert_eq!(report.accepted(), 2);
    assert_eq!(report.refused(), 1);
}
