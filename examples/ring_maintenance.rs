//! Domain scenario: a token-ring style network must maintain a global
//! Hamiltonian cycle (every processor on one cycle). The scheme certifies
//! Hamiltonicity together with the pathwidth bound, so after any
//! reconfiguration each processor can re-check the invariant from its local
//! labels alone — the self-stabilization use case that motivated proof
//! labeling schemes.
//!
//! Run with `cargo run --example ring_maintenance`.

use lanecert_suite::algebra::{props::HamiltonianCycle, Algebra};
use lanecert_suite::graph::{generators, Graph, VertexId};
use lanecert_suite::pls::theorem1::{PathwidthScheme, ProveError, SchemeOptions};
use lanecert_suite::pls::Configuration;

fn certify(name: &str, g: Graph, scheme: &PathwidthScheme) {
    let cfg = Configuration::with_random_ids(g, 17);
    match scheme.prove_auto(&cfg) {
        Ok(labels) => {
            let report = scheme.run_with_labels(&cfg, &labels);
            assert!(report.accepted());
            println!(
                "{name}: certified Hamiltonian ({} vertices, max label {} bits)",
                cfg.n(),
                report.max_label_bits
            );
        }
        Err(ProveError::PropertyViolated) => {
            println!("{name}: prover refuses — network is NOT Hamiltonian");
        }
        Err(e) => println!("{name}: {e}"),
    }
}

fn main() {
    let scheme = PathwidthScheme::new(
        Algebra::shared(HamiltonianCycle),
        SchemeOptions::exact_pathwidth(2),
    );

    // Healthy ring with two maintenance chords (still Hamiltonian, pw 2).
    let mut ring = generators::cycle_graph(10);
    ring.add_edge(VertexId(0), VertexId(2)).unwrap();
    ring.add_edge(VertexId(5), VertexId(7)).unwrap();
    certify("ring+chords", ring, &scheme);

    // A ladder interconnect is also Hamiltonian with pathwidth 2.
    certify("ladder", generators::ladder(6), &scheme);

    // A broken reconfiguration: a path is not a cycle — the prover refuses,
    // and per soundness no adversarial labeling could fool the verifiers.
    certify("broken (path)", generators::path_graph(10), &scheme);
}
