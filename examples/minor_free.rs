//! Corollary 1.2: `F`-minor-free graph classes are certifiable with
//! `O(log n)`-bit labels for every forest `F`, because excluding a forest
//! bounds the pathwidth (Robertson–Seymour's Excluding Forest Theorem).
//!
//! This example instantiates the smallest interesting case: caterpillar
//! forests, which are exactly the graphs of pathwidth ≤ 1 — equivalently
//! the `{K3, S(2,2,2)}`-minor-free graphs. Certifying
//! `acyclic ∧ (pathwidth ≤ 1)` therefore certifies the minor-free class,
//! and the brute-force minor oracle cross-checks the characterization.
//!
//! Run with `cargo run --example minor_free`.

use lanecert_suite::algebra::{props::Forest, Algebra};
use lanecert_suite::graph::{generators, minor, Graph};
use lanecert_suite::{Certifier, Configuration};

fn main() {
    let certifier = Certifier::builder()
        .property(Algebra::shared(Forest))
        .pathwidth(1)
        .build()
        .expect("complete spec");
    let k3 = generators::complete_graph(3);
    let spider = minor::spider_s222();

    let cases: Vec<(&str, Graph)> = vec![
        ("caterpillar(5,2)", generators::caterpillar(5, 2)),
        ("star(8)", generators::star(8)),
        ("path(12)", generators::path_graph(12)),
        ("binary_tree(4)", generators::binary_tree(4)), // contains the spider
    ];
    for (name, g) in cases {
        let minor_free = !minor::has_minor(&g, &k3) && !minor::has_minor(&g, &spider);
        let cfg = Configuration::with_random_ids(g, 23);
        let certified = match certifier.run(&cfg) {
            Ok(report) => {
                assert!(report.accepted());
                true
            }
            Err(_) => false,
        };
        // The certificate exists exactly when the class membership holds.
        assert_eq!(minor_free, certified, "{name}");
        println!("{name:<18} {{K3, S(2,2,2)}}-minor-free: {minor_free:<5}  certified: {certified}");
    }
    println!("\ncertificates exist exactly for the minor-free graphs (Corollary 1.2)");
}
