//! Regenerates the paper's construction figures as text artifacts:
//! Figure 1 (path decomposition + interval representation of the 6-cycle),
//! Figure 3 (weak completion / completion), Figures 7/10 (a lanewidth
//! construction trace and its hierarchical decomposition) — then
//! certifies the same 6-cycle end to end, showing the canonical class
//! table (Proposition 2.4's `C`, frozen up front) that makes the
//! engine's parallel proving bit-reproducible.
//!
//! Run with `cargo run --example paper_figures`.

use lanecert_suite::algebra::{props::Bipartite, Algebra, FreezeOptions, FrozenAlgebra};
use lanecert_suite::graph::generators;
use lanecert_suite::lanes::{
    build_hierarchy, completion, lanewidth, partition, Completion, Construction,
};
use lanecert_suite::pathwidth::{Interval, IntervalRep};
use lanecert_suite::{Certifier, Configuration, ProverHint};

fn main() {
    // ---- Figure 1: the 6-cycle a..f with bags {a,b,c},{a,c,d},{a,d,e},{a,e,f}
    let g = generators::cycle_graph(6);
    let rep = IntervalRep::new(
        [(0, 3), (0, 0), (0, 1), (1, 2), (2, 3), (3, 3)]
            .iter()
            .map(|&(a, b)| Interval::new(a, b))
            .collect(),
    );
    rep.validate(&g).unwrap();
    let pd = rep.to_decomposition();
    println!(
        "Figure 1 — path decomposition of the 6-cycle (width {}):",
        pd.width()
    );
    println!("  {pd}");
    println!(
        "  intervals: {}",
        (0..6)
            .map(|v| format!("v{v}:{}", rep.interval(lanecert_suite::graph::VertexId(v))))
            .collect::<Vec<_>>()
            .join("  ")
    );

    // ---- Figure 3: weak completion / completion of a lane partition.
    let p = partition::greedy_partition(&rep);
    let comp = Completion::build(&g, p);
    println!("\nFigure 3 — completion of (G, I, P):");
    print!("{}", completion::ascii_diagram(&comp));

    // ---- Figures 7/10: a lanewidth construction and its hierarchy.
    let c = Construction::from_completion(&comp, &rep);
    println!("\nFigure 7/10 — lanewidth construction recovered via Prop 5.2:");
    print!("{}", lanewidth::trace(&c));
    let built = c.build().unwrap();
    let h = build_hierarchy(&built);
    h.validate(&built);
    println!(
        "hierarchical decomposition: {} nodes {:?}, depth {} ≤ 2k = {}",
        h.nodes.len(),
        h.kind_counts(),
        h.depth(),
        2 * h.k
    );

    // ---- Proposition 2.4's class space C, frozen canonically.
    // The scheme builds this table once per (property, width); every
    // wire id below indexes it, independent of prover execution order.
    let frozen = FrozenAlgebra::freeze(
        Algebra::shared(Bipartite),
        &FreezeOptions::for_interface_arity(6),
    );
    println!(
        "\nCanonical class table for (bipartite, w ≤ 3): {} states, total: {}, fingerprint {:#018x}",
        frozen.canonical_state_count(),
        frozen.is_total(),
        frozen.fingerprint(),
    );
    let certifier = Certifier::builder()
        .property(Algebra::shared(Bipartite))
        .pathwidth(2)
        .representation(rep)
        .build()
        .unwrap();
    let cfg = Configuration::with_random_ids(generators::cycle_graph(6), 1);
    let labels = certifier
        .certify_with(&cfg, &ProverHint::auto())
        .expect("C6 is bipartite with pathwidth 2");
    println!(
        "certified the 6-cycle: {} labels, max {} bits, recorded fingerprint {:#018x}",
        labels.len(),
        labels.max_bits(),
        labels.fingerprint().unwrap(),
    );
}
