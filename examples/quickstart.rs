//! Quickstart: certify `bipartite ∧ (pathwidth ≤ 2)` on a ring network,
//! then tamper with one certificate and watch a vertex reject.
//!
//! Run with `cargo run --example quickstart`.

use lanecert_suite::algebra::{props::Bipartite, Algebra};
use lanecert_suite::graph::generators;
use lanecert_suite::pls::theorem1::{PathwidthScheme, SchemeOptions};
use lanecert_suite::pls::{attacks, Configuration};

fn main() {
    // A ring of 12 processors with distinct identifiers.
    let network = generators::cycle_graph(12);
    let cfg = Configuration::with_random_ids(network, 42);

    // The scheme certifies ϕ ∧ (pathwidth ≤ 2) with ϕ = bipartiteness.
    let scheme = PathwidthScheme::new(
        Algebra::shared(Bipartite),
        SchemeOptions::exact_pathwidth(2),
    );

    // Prover: computes an optimal path decomposition, the lane layout, the
    // hierarchical decomposition, and per-edge O(log n)-bit certificates.
    let labels = scheme.prove_auto(&cfg).expect("C12 is bipartite, pw 2");
    let report = scheme.run_with_labels(&cfg, &labels);
    assert!(report.accepted());
    println!(
        "honest run: all {} vertices accept; max label = {} bits",
        cfg.n(),
        report.max_label_bits
    );

    // Adversary: flip the marked bit of one certificate.
    let mut rng = generators::seeded_rng(7);
    let corrupted =
        attacks::corrupt(&labels, attacks::Corruption::FlipMark, &mut rng).expect("labels exist");
    let report = scheme.run_with_labels(&cfg, &corrupted);
    assert!(!report.accepted());
    println!(
        "tampered run: {} vertices reject (first reason: {})",
        report.reject_count(),
        report.first_rejection().unwrap_or("-")
    );
}
