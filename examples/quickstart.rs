//! Quickstart: certify `bipartite ∧ (pathwidth ≤ 2)` on a ring network
//! through the builder API, then tamper with one certificate bit and
//! watch a vertex reject.
//!
//! Run with `cargo run --example quickstart`.

use lanecert_suite::algebra::{props::Bipartite, Algebra};
use lanecert_suite::graph::generators;
use lanecert_suite::{BatchJob, BatchRunner, Certifier, Configuration, Engine};

fn main() {
    // A ring of 12 processors with distinct identifiers.
    let network = generators::cycle_graph(12);
    let cfg = Configuration::with_random_ids(network, 42);

    // The scheme certifies ϕ ∧ (pathwidth ≤ k) with ϕ = bipartiteness.
    // "theorem1" is the default registry scheme; spell it out anyway.
    // `heuristic_limit` raises the ceiling up to which hintless prove
    // calls derive a decomposition themselves (default 256 vertices).
    let certifier = Certifier::builder()
        .property(Algebra::shared(Bipartite))
        .pathwidth(2)
        .scheme("theorem1")
        .heuristic_limit(512)
        .build()
        .expect("complete spec");

    // Prover: computes an optimal path decomposition, the lane layout, the
    // hierarchical decomposition, and per-edge O(log n)-bit certificates —
    // already wire-encoded.
    let labels = certifier.certify(&cfg).expect("C12 is bipartite, pw 2");
    let report = certifier.verify(&cfg, &labels).unwrap();
    assert!(report.accepted());
    println!(
        "honest run: all {} vertices accept; max label = {} bits",
        cfg.n(),
        report.max_label_bits
    );

    // Adversary: flip a single bit of one certificate on the wire.
    let mut corrupted = labels.clone();
    corrupted.flip_bit(0, 3);
    let report = certifier.verify(&cfg, &corrupted).unwrap();
    assert!(!report.accepted());
    println!(
        "tampered run: {} vertices reject (first reason: {})",
        report.reject_count(),
        report.first_rejection().unwrap_or("-")
    );

    // Scale out: the engine proves AND verifies on its worker pool by
    // default — since canonical algebra interning, class ids (and so
    // every label byte) are a pure function of the job, so the parallel
    // report is bit-identical to the sequential BatchRunner.
    let rings = |count: u64| {
        (0..count).map(|i| {
            BatchJob::new(Configuration::with_random_ids(
                generators::cycle_graph(10 + 2 * i as usize),
                i,
            ))
        })
    };
    let build = || {
        Certifier::builder()
            .property(Algebra::shared(Bipartite))
            .pathwidth(2)
            .heuristic_limit(512)
            .build()
            .unwrap()
    };
    let sequential = BatchRunner::new(build()).run(rings(8));
    let engine = Engine::builder()
        .certifier(build())
        .workers(4)
        .heuristic_limit(512)
        .build()
        .unwrap();
    let parallel = engine.run(rings(8));
    assert_eq!(parallel.batch, sequential);
    println!(
        "engine ({} workers, parallel prove): {}",
        engine.workers(),
        parallel.batch.summary()
    );
}
