//! Quickstart: certify `bipartite ∧ (pathwidth ≤ 2)` on a ring network
//! through the builder API, then tamper with one certificate bit and
//! watch a vertex reject.
//!
//! Run with `cargo run --example quickstart`.

use lanecert_suite::algebra::{props::Bipartite, Algebra};
use lanecert_suite::graph::generators;
use lanecert_suite::{Certifier, Configuration};

fn main() {
    // A ring of 12 processors with distinct identifiers.
    let network = generators::cycle_graph(12);
    let cfg = Configuration::with_random_ids(network, 42);

    // The scheme certifies ϕ ∧ (pathwidth ≤ k) with ϕ = bipartiteness.
    // "theorem1" is the default registry scheme; spell it out anyway.
    let certifier = Certifier::builder()
        .property(Algebra::shared(Bipartite))
        .pathwidth(2)
        .scheme("theorem1")
        .build()
        .expect("complete spec");

    // Prover: computes an optimal path decomposition, the lane layout, the
    // hierarchical decomposition, and per-edge O(log n)-bit certificates —
    // already wire-encoded.
    let labels = certifier.certify(&cfg).expect("C12 is bipartite, pw 2");
    let report = certifier.verify(&cfg, &labels).unwrap();
    assert!(report.accepted());
    println!(
        "honest run: all {} vertices accept; max label = {} bits",
        cfg.n(),
        report.max_label_bits
    );

    // Adversary: flip a single bit of one certificate on the wire.
    let mut corrupted = labels.clone();
    corrupted.as_mut_slice()[0].flip_bit(3);
    let report = certifier.verify(&cfg, &corrupted).unwrap();
    assert!(!report.accepted());
    println!(
        "tampered run: {} vertices reject (first reason: {})",
        report.reject_count(),
        report.first_rejection().unwrap_or("-")
    );
}
