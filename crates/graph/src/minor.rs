//! Brute-force minor testing for small graphs.
//!
//! `H` is a minor of `G` iff the vertices of `H` can be mapped to pairwise
//! disjoint, connected *branch sets* in `G` such that every edge of `H` has a
//! `G`-edge between the corresponding branch sets. This module enumerates
//! branch sets one `H`-vertex at a time over vertex bitmasks, pruning on
//! `H`-edge feasibility as soon as both endpoints are placed. It is
//! exponential and intended purely as a **test oracle** for the minor-closed
//! properties the paper discusses (e.g. the pathwidth-1 obstruction set,
//! `F`-minor-freeness in Corollary 1.2).

use crate::{Graph, VertexId};

/// Returns `true` if `h` is a minor of `g`.
///
/// Intended for `g.vertex_count() ≤ 20` or so.
///
/// # Panics
///
/// Panics if `g` has more than 30 vertices (bitmask limit).
pub fn has_minor(g: &Graph, h: &Graph) -> bool {
    let n = g.vertex_count();
    assert!(n <= 30, "minor oracle is limited to 30 vertices");
    let nh = h.vertex_count();
    if nh == 0 {
        return true;
    }
    if nh > n || h.edge_count() > g.edge_count() {
        return false;
    }
    // adjacency bitmasks of G
    let adj: Vec<u32> = (0..n)
        .map(|v| {
            let mut m = 0u32;
            for w in g.neighbors(VertexId::new(v)) {
                m |= 1 << w.index();
            }
            m
        })
        .collect();
    // H-edges among already-placed vertices, per level.
    let h_edges: Vec<Vec<usize>> = (0..nh)
        .map(|i| {
            h.neighbors(VertexId::new(i))
                .map(VertexId::index)
                .filter(|&j| j < i)
                .collect()
        })
        .collect();
    let mut sets = vec![0u32; nh];
    place(&adj, &h_edges, n, nh, 0, 0, &mut sets)
}

/// Checks whether the vertex set `mask` induces a connected subgraph.
fn connected_mask(adj: &[u32], mask: u32) -> bool {
    if mask == 0 {
        return false;
    }
    let start = mask.trailing_zeros() as usize;
    let mut seen = 1u32 << start;
    let mut frontier = seen;
    while frontier != 0 {
        let mut next = 0u32;
        let mut f = frontier;
        while f != 0 {
            let v = f.trailing_zeros() as usize;
            f &= f - 1;
            next |= adj[v] & mask & !seen;
        }
        seen |= next;
        frontier = next;
    }
    seen == mask
}

/// Bitmask of vertices adjacent to any member of `mask`.
fn neighborhood(adj: &[u32], mask: u32) -> u32 {
    let mut out = 0u32;
    let mut m = mask;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        m &= m - 1;
        out |= adj[v];
    }
    out
}

fn place(
    adj: &[u32],
    h_edges: &[Vec<usize>],
    n: usize,
    nh: usize,
    level: usize,
    used: u32,
    sets: &mut Vec<u32>,
) -> bool {
    if level == nh {
        return true;
    }
    let free = !used & ((1u32 << n) - 1);
    if (free.count_ones() as usize) < nh - level {
        return false;
    }
    // Enumerate non-empty subsets of `free` (by increasing mask) and keep the
    // connected ones that satisfy every H-edge to already-placed sets.
    let mut sub = free;
    // Iterate all submasks of `free`.
    loop {
        if sub != 0 && connected_mask(adj, sub) {
            let ok = h_edges[level]
                .iter()
                .all(|&j| neighborhood(adj, sub) & sets[j] != 0);
            if ok {
                sets[level] = sub;
                if place(adj, h_edges, n, nh, level + 1, used | sub, sets) {
                    return true;
                }
            }
        }
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & free;
    }
    false
}

/// The 3-leg spider with legs of length 2 — together with `K_3` it is the
/// obstruction set for pathwidth ≤ 1 (caterpillar forests).
pub fn spider_s222() -> Graph {
    // center 0; legs (1,2), (3,4), (5,6)
    Graph::from_edges(7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn k3_minor_iff_cycle() {
        let k3 = generators::complete_graph(3);
        assert!(has_minor(&generators::cycle_graph(6), &k3));
        assert!(!has_minor(&generators::path_graph(6), &k3));
        assert!(!has_minor(&generators::caterpillar(4, 2), &k3));
    }

    #[test]
    fn k4_minor() {
        let k4 = generators::complete_graph(4);
        assert!(has_minor(&generators::complete_graph(5), &k4));
        // Series-parallel-ish: cycle has no K4 minor.
        assert!(!has_minor(&generators::cycle_graph(8), &k4));
        // The 3x3 grid contains a K4 minor.
        assert!(has_minor(&generators::grid(3, 3), &k4));
    }

    #[test]
    fn pathwidth_one_obstructions() {
        let spider = spider_s222();
        // Caterpillars avoid both obstructions.
        let cat = generators::caterpillar(4, 1);
        assert!(!has_minor(&cat, &generators::complete_graph(3)));
        assert!(!has_minor(&cat, &spider));
        // A binary tree with four levels contains the spider (three paths of
        // length two out of an internal vertex).
        assert!(has_minor(&generators::binary_tree(4), &spider));
        // ... but a depth-3 binary tree does not (no vertex has three
        // disjoint legs of length 2).
        assert!(!has_minor(&generators::binary_tree(3), &spider));
    }

    #[test]
    fn every_graph_has_single_vertex_minor() {
        let k1 = generators::complete_graph(1);
        assert!(has_minor(&generators::path_graph(3), &k1));
    }

    #[test]
    fn minor_needs_enough_vertices() {
        assert!(!has_minor(
            &generators::path_graph(2),
            &generators::path_graph(3)
        ));
    }

    #[test]
    fn k23_minor() {
        let k23 = generators::complete_bipartite(2, 3);
        assert!(has_minor(&generators::grid(3, 3), &k23));
        assert!(!has_minor(&generators::cycle_graph(9), &k23));
    }
}
