//! Breadth-first and depth-first traversal utilities.

use std::collections::VecDeque;

use crate::{EdgeId, Graph, VertexId};

/// A BFS tree rooted at some vertex: parent pointers and hop distances.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root the tree was grown from.
    pub root: VertexId,
    /// `parent[v]` is the BFS parent of `v` (`None` for the root and for
    /// vertices unreachable from the root).
    pub parent: Vec<Option<VertexId>>,
    /// `parent_edge[v]` is the edge to the parent.
    pub parent_edge: Vec<Option<EdgeId>>,
    /// `dist[v]` is the hop distance from the root (`u32::MAX` if
    /// unreachable).
    pub dist: Vec<u32>,
    /// Vertices in visit order (only reachable ones).
    pub order: Vec<VertexId>,
}

impl BfsTree {
    /// Returns `true` if `v` was reached from the root.
    pub fn reached(&self, v: VertexId) -> bool {
        self.dist[v.index()] != u32::MAX
    }

    /// Reconstructs the root-to-`v` vertex path, or `None` if unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs BFS from `root` over the whole graph.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs(g: &Graph, root: VertexId) -> BfsTree {
    bfs_restricted(g, root, |_| true)
}

/// Runs BFS from `root`, traversing only edges for which `allow` returns
/// `true`. Used to grow spanning structures inside certified subgraphs.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_restricted<F>(g: &Graph, root: VertexId, mut allow: F) -> BfsTree
where
    F: FnMut(EdgeId) -> bool,
{
    let n = g.vertex_count();
    assert!(root.index() < n, "root out of range");
    let mut tree = BfsTree {
        root,
        parent: vec![None; n],
        parent_edge: vec![None; n],
        dist: vec![u32::MAX; n],
        order: Vec::new(),
    };
    let mut queue = VecDeque::new();
    tree.dist[root.index()] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        tree.order.push(v);
        for h in g.incident(v) {
            if !allow(h.edge) {
                continue;
            }
            let w = h.to;
            if tree.dist[w.index()] == u32::MAX {
                tree.dist[w.index()] = tree.dist[v.index()] + 1;
                tree.parent[w.index()] = Some(v);
                tree.parent_edge[w.index()] = Some(h.edge);
                queue.push_back(w);
            }
        }
    }
    tree
}

/// Returns a shortest `u`–`v` path as a vertex sequence, or `None` if `v` is
/// unreachable from `u`.
pub fn shortest_path(g: &Graph, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
    bfs(g, u).path_to(v)
}

/// Converts a vertex path into the edge handles along it.
///
/// # Panics
///
/// Panics if consecutive vertices are not adjacent.
pub fn path_edges(g: &Graph, path: &[VertexId]) -> Vec<EdgeId> {
    path.windows(2)
        .map(|w| {
            g.edge_between(w[0], w[1])
                .unwrap_or_else(|| panic!("no edge between {} and {}", w[0], w[1]))
        })
        .collect()
}

/// Returns the vertices reachable from `root` in DFS preorder.
pub fn dfs_preorder(g: &Graph, root: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so lower-index neighbours are visited first.
        for h in g.incident(v).iter().rev() {
            if !seen[h.to.index()] {
                stack.push(h.to);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path_graph(5);
        let tree = bfs(&g, VertexId(0));
        assert_eq!(tree.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(tree.path_to(VertexId(4)).unwrap().len(), 5);
    }

    #[test]
    fn bfs_unreachable_component() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let tree = bfs(&g, VertexId(0));
        assert!(tree.reached(VertexId(1)));
        assert!(!tree.reached(VertexId(3)));
        assert_eq!(tree.path_to(VertexId(3)), None);
    }

    #[test]
    fn shortest_path_on_cycle() {
        let g = generators::cycle_graph(8);
        let p = shortest_path(&g, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(path_edges(&g, &p).len(), 4);
    }

    #[test]
    fn restricted_bfs_ignores_forbidden_edges() {
        let g = generators::cycle_graph(4);
        // Forbid edge 0 (between v0 and v1): distances wrap the other way.
        let tree = bfs_restricted(&g, VertexId(0), |e| e.index() != 0);
        assert_eq!(tree.dist[1], 3);
    }

    #[test]
    fn dfs_visits_everything_connected() {
        let g = generators::ladder(4);
        let order = dfs_preorder(&g, VertexId(0));
        assert_eq!(order.len(), 8);
    }
}
