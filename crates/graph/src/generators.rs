//! Graph families used across tests, examples, and the experiment harness.
//!
//! Deterministic generators take explicit sizes; randomized ones take a
//! caller-provided RNG so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Graph, VertexId};

/// The path `v0 – v1 – … – v(n-1)`. Pathwidth 1 for `n ≥ 2`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(VertexId::new(i - 1), VertexId::new(i)).unwrap();
    }
    g
}

/// The cycle `C_n` (requires `n ≥ 3`). Pathwidth 2.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let mut g = path_graph(n);
    g.add_edge(VertexId::new(n - 1), VertexId::new(0)).unwrap();
    g
}

/// The star `K_{1,n-1}`: vertex 0 is the hub. Pathwidth 1 for `n ≥ 3`.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(VertexId::new(0), VertexId::new(i)).unwrap();
    }
    g
}

/// The complete graph `K_n`. Pathwidth `n − 1`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(VertexId::new(i), VertexId::new(j)).unwrap();
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
/// Pathwidth `min(a, b)`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(VertexId::new(i), VertexId::new(a + j)).unwrap();
        }
    }
    g
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves. Caterpillar forests are exactly the graphs of pathwidth ≤ 1.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut g = path_graph(spine);
    for s in 0..spine {
        for _ in 0..legs {
            let leaf = g.add_vertex();
            g.add_edge(VertexId::new(s), leaf).unwrap();
        }
    }
    g
}

/// The ladder `P_n × K_2` (`2n` vertices). Pathwidth 2 for `n ≥ 2`.
pub fn ladder(n: usize) -> Graph {
    grid(2, n)
}

/// The `h × w` grid. Pathwidth `min(h, w)` (for a non-degenerate grid).
pub fn grid(h: usize, w: usize) -> Graph {
    let mut g = Graph::new(h * w);
    let at = |r: usize, c: usize| VertexId::new(r * w + c);
    for r in 0..h {
        for c in 0..w {
            if c + 1 < w {
                g.add_edge(at(r, c), at(r, c + 1)).unwrap();
            }
            if r + 1 < h {
                g.add_edge(at(r, c), at(r + 1, c)).unwrap();
            }
        }
    }
    g
}

/// The complete binary tree with `depth` full levels (`2^depth − 1`
/// vertices). Pathwidth `Θ(depth)` — useful as a *negative* instance for
/// `pathwidth ≤ k` once `depth` is large.
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1usize << depth) - 1;
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(VertexId::new((i - 1) / 2), VertexId::new(i))
            .unwrap();
    }
    g
}

/// A uniformly random labelled tree on `n` vertices (random attachment).
pub fn random_tree(n: usize, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        let p = rng.random_range(0..i);
        g.add_edge(VertexId::new(p), VertexId::new(i)).unwrap();
    }
    g
}

/// An Erdős–Rényi graph `G(n, p)`.
pub fn gnp(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                g.add_edge(VertexId::new(i), VertexId::new(j)).unwrap();
            }
        }
    }
    g
}

/// A random connected graph of pathwidth at most `k`, built by walking a
/// width-(k+1) bag sequence left to right and randomly swapping one vertex
/// per step; every edge inside a bag is added with probability `density`.
/// Consecutive-bag overlap keeps the graph connected.
///
/// Returns the graph together with the bag sequence that witnesses
/// `pathwidth ≤ k` (each bag as a vertex list), so callers never need to
/// re-solve pathwidth.
///
/// # Panics
///
/// Panics if `k == 0` or `n < k + 1`.
pub fn random_pathwidth_graph(
    n: usize,
    k: usize,
    density: f64,
    rng: &mut StdRng,
) -> (Graph, Vec<Vec<VertexId>>) {
    assert!(k >= 1, "k must be at least 1");
    assert!(n > k, "need at least k + 1 vertices");
    let mut g = Graph::new(n);
    let mut bag: Vec<VertexId> = (0..=k).map(VertexId::new).collect();
    let mut bags = Vec::new();
    // The initial bag must itself be connected: join it as a path first.
    for w in bag.windows(2) {
        let _ = g.ensure_edge(w[0], w[1]);
    }
    let connect_bag = |g: &mut Graph, bag: &[VertexId], rng: &mut StdRng| {
        // Ensure the newest vertex is attached, then sprinkle extra edges.
        let newest = *bag.last().unwrap();
        let anchor = bag[rng.random_range(0..bag.len() - 1)];
        let _ = g.ensure_edge(anchor, newest);
        for i in 0..bag.len() {
            for j in (i + 1)..bag.len() {
                if rng.random::<f64>() < density {
                    let _ = g.ensure_edge(bag[i], bag[j]);
                }
            }
        }
    };
    connect_bag(&mut g, &bag, rng);
    bags.push(bag.clone());
    for next in (k + 1)..n {
        let out = rng.random_range(0..bag.len());
        bag.remove(out);
        bag.push(VertexId::new(next));
        connect_bag(&mut g, &bag, rng);
        bags.push(bag.clone());
    }
    (g, bags)
}

/// The disjoint union of two graphs: `b`'s vertices are appended after
/// `a`'s (vertex `i` of `b` becomes `a.vertex_count() + i`). The result is
/// disconnected whenever both operands are non-empty — the standard
/// negative instance for connectivity-requiring schemes, which certifiers
/// refuse with a `Disconnected`-style error rather than certify.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let offset = a.vertex_count();
    let mut g = a.clone();
    for _ in 0..b.vertex_count() {
        g.add_vertex();
    }
    for (_, e) in b.edges() {
        g.add_edge(
            VertexId::new(offset + e.u.index()),
            VertexId::new(offset + e.v.index()),
        )
        .unwrap();
    }
    g
}

/// A random interval graph: `n` intervals with integer endpoints in
/// `[0, span]` and lengths in `[0, max_len]`; vertices are adjacent
/// exactly when their intervals overlap. Returns the graph together with
/// the generating intervals as `(lo, hi)` pairs — they form a valid
/// interval representation of the graph by construction (every edge is an
/// overlap), so callers get a pathwidth witness for free. Smaller
/// `max_len` relative to `span / n` keeps the clique number (and hence
/// the width) low; the graph may be disconnected.
///
/// # Panics
///
/// Panics if `max_len > span`.
pub fn random_interval_graph(
    n: usize,
    span: u32,
    max_len: u32,
    rng: &mut StdRng,
) -> (Graph, Vec<(u32, u32)>) {
    assert!(max_len <= span, "interval length cannot exceed the span");
    let intervals: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            let len = rng.random_range(0..=max_len);
            let lo = rng.random_range(0..=(span - len));
            (lo, lo + len)
        })
        .collect();
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let (alo, ahi) = intervals[i];
            let (blo, bhi) = intervals[j];
            if alo <= bhi && blo <= ahi {
                g.add_edge(VertexId::new(i), VertexId::new(j)).unwrap();
            }
        }
    }
    (g, intervals)
}

/// A preferential-attachment tree on `n` vertices (Barabási–Albert with
/// one edge per arrival): each new vertex attaches to an existing vertex
/// chosen with probability proportional to its current degree, yielding a
/// power-law degree distribution — a hub-heavy counterpoint to the
/// uniform [`random_tree`]. Implemented by sampling a uniform edge
/// endpoint (each vertex appears once per incident edge).
pub fn power_law_tree(n: usize, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    g.add_edge(VertexId::new(0), VertexId::new(1)).unwrap();
    // endpoints[i] lists each vertex once per incident edge, so a uniform
    // draw is a degree-proportional draw.
    let mut endpoints: Vec<usize> = vec![0, 1];
    for v in 2..n {
        let target = endpoints[rng.random_range(0..endpoints.len())];
        g.add_edge(VertexId::new(target), VertexId::new(v)).unwrap();
        endpoints.push(target);
        endpoints.push(v);
    }
    g
}

/// A convenience deterministic RNG for examples and tests.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    #[test]
    fn family_sizes() {
        assert_eq!(path_graph(5).edge_count(), 4);
        assert_eq!(cycle_graph(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(complete_graph(5).edge_count(), 10);
        assert_eq!(complete_bipartite(2, 3).edge_count(), 6);
        assert_eq!(caterpillar(3, 2).vertex_count(), 9);
        assert_eq!(ladder(4).vertex_count(), 8);
        assert_eq!(grid(3, 3).edge_count(), 12);
        assert_eq!(binary_tree(3).vertex_count(), 7);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = seeded_rng(1);
        for n in [1, 2, 5, 20] {
            let t = random_tree(n, &mut rng);
            assert!(components::is_tree(&t), "n = {n}");
        }
    }

    #[test]
    fn random_pathwidth_graph_is_connected_with_valid_bags() {
        let mut rng = seeded_rng(7);
        for k in 1..=3 {
            let (g, bags) = random_pathwidth_graph(20, k, 0.5, &mut rng);
            assert!(components::is_connected(&g), "k = {k}");
            // Every edge must live inside some bag.
            for (_, e) in g.edges() {
                assert!(
                    bags.iter().any(|b| b.contains(&e.u) && b.contains(&e.v)),
                    "edge ({}, {}) not covered",
                    e.u,
                    e.v
                );
            }
            // Bag width bound.
            assert!(bags.iter().all(|b| b.len() <= k + 1));
        }
    }

    #[test]
    fn disjoint_union_offsets_and_disconnects() {
        let g = disjoint_union(&path_graph(3), &cycle_graph(4));
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 2 + 4);
        assert!(!components::is_connected(&g));
        // b's edges land on the offset vertices, untouched by a's.
        assert!(g.has_edge(VertexId::new(3), VertexId::new(4)));
        assert!(!g.has_edge(VertexId::new(2), VertexId::new(3)));
        // Union with an empty graph is a no-op on edges.
        let same = disjoint_union(&path_graph(3), &Graph::new(0));
        assert_eq!(same.edge_count(), 2);
        assert_eq!(same.vertex_count(), 3);
    }

    #[test]
    fn random_interval_graph_edges_match_overlaps() {
        let mut rng = seeded_rng(5);
        let (g, ivs) = random_interval_graph(24, 60, 6, &mut rng);
        assert_eq!(ivs.len(), 24);
        for (i, &(alo, ahi)) in ivs.iter().enumerate() {
            assert!(alo <= ahi && ahi <= 60 && ahi - alo <= 6);
            for (j, &(blo, bhi)) in ivs.iter().enumerate().skip(i + 1) {
                let overlap = alo <= bhi && blo <= ahi;
                assert_eq!(
                    g.has_edge(VertexId::new(i), VertexId::new(j)),
                    overlap,
                    "({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn power_law_tree_is_hubbier_than_uniform() {
        let mut rng = seeded_rng(9);
        for n in [1, 2, 5, 64] {
            let t = power_law_tree(n, &mut rng);
            assert!(components::is_tree(&t), "n = {n}");
        }
        // Preferential attachment concentrates degree: over a few draws
        // the max degree beats the uniform-attachment tree's on average.
        let (mut hub_sum, mut uni_sum) = (0usize, 0usize);
        for seed in 0..8 {
            let mut r1 = seeded_rng(seed);
            let mut r2 = seeded_rng(seed);
            let hub = power_law_tree(200, &mut r1);
            let uni = random_tree(200, &mut r2);
            let max_deg = |g: &Graph| g.vertices().map(|v| g.degree(v)).max().unwrap();
            hub_sum += max_deg(&hub);
            uni_sum += max_deg(&uni);
        }
        assert!(hub_sum > uni_sum, "hub {hub_sum} vs uniform {uni_sum}");
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = seeded_rng(3);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }
}
