//! Degeneracy orderings and bounded-outdegree orientations.
//!
//! A graph is `d`-degenerate if its edges can be acyclically oriented with
//! outdegree at most `d` (Section 2.1 of the paper). Proposition 2.1 turns an
//! `f(n)`-bit edge-labeling scheme into an `O(d·f(n))`-bit vertex-labeling
//! scheme by moving each edge's label to its orientation tail; this module
//! supplies the orientations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{EdgeId, Graph, VertexId};

/// The result of the peeling procedure: an elimination ordering whose
/// back-degree is the degeneracy.
#[derive(Clone, Debug)]
pub struct DegeneracyOrdering {
    /// Vertices in peel order (each vertex had minimum degree among the
    /// not-yet-peeled vertices when removed).
    pub order: Vec<VertexId>,
    /// The degeneracy `d`: the maximum degree observed at removal time.
    pub degeneracy: usize,
    /// `rank[v]` is the position of `v` in `order`.
    pub rank: Vec<usize>,
}

/// Computes a degeneracy ordering by repeatedly peeling a minimum-degree
/// vertex (lazy-deletion heap, `O((n + m) log n)`).
pub fn degeneracy_ordering(g: &Graph) -> DegeneracyOrdering {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(VertexId::new(v))).collect();
    let mut removed = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(usize, u32)>> = deg
        .iter()
        .enumerate()
        .map(|(v, &d)| Reverse((d, v as u32)))
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    while let Some(Reverse((d, v))) = heap.pop() {
        let vi = v as usize;
        if removed[vi] || d != deg[vi] {
            continue; // stale heap entry
        }
        removed[vi] = true;
        degeneracy = degeneracy.max(d);
        order.push(VertexId(v));
        for h in g.incident(VertexId(v)) {
            let w = h.to.index();
            if !removed[w] {
                deg[w] -= 1;
                heap.push(Reverse((deg[w], w as u32)));
            }
        }
    }
    let mut rank = vec![0; n];
    for (i, v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }
    DegeneracyOrdering {
        order,
        degeneracy,
        rank,
    }
}

/// An acyclic orientation with bounded outdegree.
#[derive(Clone, Debug)]
pub struct Orientation {
    /// `tail[e]` is the vertex the edge is oriented *out of* (the vertex that
    /// will carry the edge's label under Proposition 2.1).
    pub tail: Vec<VertexId>,
    /// The maximum outdegree over all vertices.
    pub max_outdegree: usize,
}

impl Orientation {
    /// The head (target) of edge `e` in graph `g`.
    pub fn head(&self, g: &Graph, e: EdgeId) -> VertexId {
        g.edge(e).other(self.tail[e.index()])
    }

    /// The edges oriented out of `v`.
    pub fn out_edges(&self, g: &Graph, v: VertexId) -> Vec<EdgeId> {
        g.incident(v)
            .iter()
            .filter(|h| self.tail[h.edge.index()] == v)
            .map(|h| h.edge)
            .collect()
    }
}

/// Orients every edge from its earlier endpoint (in the degeneracy ordering)
/// to the later one, yielding outdegree at most the degeneracy.
pub fn degeneracy_orientation(g: &Graph) -> Orientation {
    let ord = degeneracy_ordering(g);
    let mut tail = Vec::with_capacity(g.edge_count());
    let mut outdeg = vec![0usize; g.vertex_count()];
    for (_, e) in g.edges() {
        let t = if ord.rank[e.u.index()] < ord.rank[e.v.index()] {
            e.u
        } else {
            e.v
        };
        outdeg[t.index()] += 1;
        tail.push(t);
    }
    Orientation {
        tail,
        max_outdegree: outdeg.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_is_one_degenerate() {
        let g = generators::caterpillar(5, 2);
        let ord = degeneracy_ordering(&g);
        assert_eq!(ord.degeneracy, 1);
        let o = degeneracy_orientation(&g);
        assert!(o.max_outdegree <= 1);
    }

    #[test]
    fn cycle_is_two_degenerate() {
        let g = generators::cycle_graph(7);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 2);
        assert!(degeneracy_orientation(&g).max_outdegree <= 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let g = generators::complete_graph(5);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 4);
    }

    #[test]
    fn star_center_carries_nothing() {
        // Star is 1-degenerate: leaves peel first, so each edge's tail is a
        // leaf and the hub has outdegree 0 or 1.
        let g = generators::star(9);
        let o = degeneracy_orientation(&g);
        assert!(o.max_outdegree <= 1);
    }

    #[test]
    fn orientation_covers_every_edge_once() {
        let g = generators::grid(3, 4);
        let o = degeneracy_orientation(&g);
        let mut seen = 0;
        for v in g.vertices() {
            seen += o.out_edges(&g, v).len();
        }
        assert_eq!(seen, g.edge_count());
        for (e, edge) in g.edges() {
            assert!(edge.is_incident(o.tail[e.index()]));
            assert_eq!(o.head(&g, e), edge.other(o.tail[e.index()]));
        }
    }
}
