//! Graph substrate for the `lanecert` workspace.
//!
//! This crate provides the simple undirected graph representation used by
//! every other crate in the workspace, together with the classical algorithms
//! the paper's constructions rely on:
//!
//! * [`Graph`] — an adjacency-list simple undirected graph with stable
//!   [`VertexId`]/[`EdgeId`] handles.
//! * [`CsrGraph`] / [`AdjacencyBitset`] — a flat compressed-sparse-row
//!   arena frozen from a [`Graph`] plus a dense bitset adjacency matrix,
//!   the cache-friendly layout the verification hot path streams ([`csr`]).
//! * traversal: BFS trees, shortest paths, DFS orders ([`traversal`]).
//! * connectivity: components, connectivity tests ([`components`]).
//! * [`degeneracy`] — degeneracy orderings and bounded-outdegree acyclic
//!   orientations (Proposition 2.1 of the paper moves edge labels to vertex
//!   labels along such an orientation).
//! * [`generators`] — the graph families used throughout the test suite and
//!   the experiment harness (paths, cycles, caterpillars, ladders, grids,
//!   random trees, `G(n,p)`, ...).
//! * [`minor`] — brute-force minor testing for small graphs, used as a test
//!   oracle for minor-closed properties.
//!
//! # Example
//!
//! ```
//! use lanecert_graph::{Graph, generators};
//!
//! let g = generators::cycle_graph(6);
//! assert_eq!(g.vertex_count(), 6);
//! assert_eq!(g.edge_count(), 6);
//! assert!(lanecert_graph::components::is_connected(&g));
//! ```

mod ids;
pub use ids::{EdgeId, VertexId};

mod graph;
pub use graph::{Edge, Graph, GraphError, Half};

pub mod csr;
pub use csr::{AdjacencyBitset, CsrGraph};

pub mod components;
pub mod degeneracy;
pub mod generators;
pub mod minor;
pub mod traversal;
pub mod union_find;
pub use union_find::UnionFind;
