//! Typed handles for vertices and edges.

use std::fmt;

/// A handle to a vertex of a [`Graph`](crate::Graph).
///
/// Vertex handles are dense indices `0..n`; they are *structural* indices, not
/// the `O(log n)`-bit network identifiers of the proof-labeling-scheme model
/// (those live in `lanecert::Configuration`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

/// A handle to an edge of a [`Graph`](crate::Graph).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Creates a handle from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("vertex index overflow"))
    }

    /// Returns the dense index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates a handle from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("edge index overflow"))
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}
