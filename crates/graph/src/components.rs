//! Connectivity queries: components, connectivity, forests.

use crate::{traversal, Graph, UnionFind, VertexId};

/// Returns the connected components as vertex lists (each sorted by index).
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in g.vertices() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let tree = traversal::bfs(g, s);
        for v in &tree.order {
            comp[v.index()] = count;
        }
        count += 1;
    }
    let mut out = vec![Vec::new(); count];
    for v in g.vertices() {
        out[comp[v.index()]].push(v);
    }
    out
}

/// Returns the number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).len()
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Returns `true` if the graph has no cycle.
pub fn is_forest(g: &Graph) -> bool {
    let mut uf = UnionFind::new(g.vertex_count());
    for (_, e) in g.edges() {
        if !uf.union(e.u.index(), e.v.index()) {
            return false;
        }
    }
    true
}

/// Returns `true` if the graph is a tree (connected and acyclic).
pub fn is_tree(g: &Graph) -> bool {
    is_connected(g) && is_forest(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn component_structure() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn forests_and_trees() {
        assert!(is_tree(&generators::path_graph(5)));
        assert!(is_forest(&Graph::new(3)));
        assert!(!is_forest(&generators::cycle_graph(3)));
        assert!(!is_tree(&Graph::from_edges(3, [(0, 1)]).unwrap()));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }
}
