//! A classic disjoint-set forest with path compression and union by size.

/// Disjoint-set forest over `0..n`.
///
/// # Example
///
/// ```
/// use lanecert_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.same(0, 1));
/// assert_eq!(uf.components(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Joins the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_reduce_component_count() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.components(), 3);
        uf.union(1, 3);
        assert_eq!(uf.components(), 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 4));
        assert_eq!(uf.size_of(3), 4);
    }
}
