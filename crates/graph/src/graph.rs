//! The simple undirected graph representation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{EdgeId, VertexId};

/// One direction of an edge as stored in an adjacency list.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Half {
    /// The neighbouring vertex.
    pub to: VertexId,
    /// The undirected edge this half belongs to.
    pub edge: EdgeId,
}

/// An undirected edge with its two endpoints (`u < v` is *not* guaranteed;
/// endpoints are stored in insertion order).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Returns both endpoints.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns the endpoint that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of ({}, {})", self.u, self.v)
        }
    }

    /// Returns `true` if `x` is an endpoint of this edge.
    pub fn is_incident(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// Errors returned by [`Graph`] mutation methods.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// The edge would be a self-loop, which simple graphs forbid.
    SelfLoop(VertexId),
    /// The edge already exists.
    DuplicateEdge(VertexId, VertexId),
    /// A vertex handle was out of range.
    UnknownVertex(VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
        }
    }
}

impl Error for GraphError {}

/// A simple undirected graph with dense vertex and edge indices.
///
/// Vertices are `0..n`; edges are `0..m` in insertion order. Parallel edges
/// and self-loops are rejected. The structure is append-only (no deletions),
/// which keeps all handles stable — the workspace builds *new* graphs (e.g.
/// completions) rather than mutating existing ones in place.
///
/// # Example
///
/// ```
/// use lanecert_graph::Graph;
///
/// # fn main() -> Result<(), lanecert_graph::GraphError> {
/// let mut g = Graph::new(3);
/// let e = g.add_edge(0.into(), 1.into())?;
/// assert_eq!(g.endpoints(e), (0.into(), 1.into()));
/// assert!(g.has_edge(1.into(), 0.into()));
/// assert_eq!(g.degree(2.into()), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Half>>,
    edges: Vec<Edge>,
    index: HashMap<(u32, u32), EdgeId>,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Creates a graph from an edge list over `n` vertices.
    ///
    /// # Errors
    ///
    /// Returns an error on self-loops, duplicate edges, or out-of-range
    /// endpoints.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(VertexId::new(u), VertexId::new(v))?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all vertex handles in index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adj.len()).map(VertexId::new)
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), *e))
    }

    /// Appends an isolated vertex and returns its handle.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        VertexId::new(self.adj.len() - 1)
    }

    fn key(u: VertexId, v: VertexId) -> (u32, u32) {
        if u.0 <= v.0 {
            (u.0, v.0)
        } else {
            (v.0, u.0)
        }
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`], [`GraphError::DuplicateEdge`], or
    /// [`GraphError::UnknownVertex`] when the edge is invalid.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for x in [u, v] {
            if x.index() >= self.adj.len() {
                return Err(GraphError::UnknownVertex(x));
            }
        }
        let key = Self::key(u, v);
        if self.index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { u, v });
        self.index.insert(key, id);
        self.adj[u.index()].push(Half { to: v, edge: id });
        self.adj[v.index()].push(Half { to: u, edge: id });
        Ok(id)
    }

    /// Adds the edge `{u, v}` if absent; returns the existing or new handle
    /// and whether the edge was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns an error on self-loops or out-of-range endpoints.
    pub fn ensure_edge(&mut self, u: VertexId, v: VertexId) -> Result<(EdgeId, bool), GraphError> {
        if let Some(e) = self.edge_between(u, v) {
            return Ok((e, false));
        }
        self.add_edge(u, v).map(|e| (e, true))
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.index.contains_key(&Self::key(u, v))
    }

    /// Returns the edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&Self::key(u, v)).copied()
    }

    /// Returns both endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()].endpoints()
    }

    /// Returns the [`Edge`] record of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The adjacency list of `v` (neighbour + edge handle pairs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident(&self, v: VertexId) -> &[Half] {
        &self.adj[v.index()]
    }

    /// Iterates over the neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v.index()].iter().map(|h| h.to)
    }

    /// Builds the subgraph induced by `keep`, returning the subgraph together
    /// with the map from new vertex indices to original handles.
    ///
    /// Vertices in `keep` must be distinct.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or repeated vertex.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut to_new: HashMap<VertexId, VertexId> = HashMap::with_capacity(keep.len());
        for (i, &v) in keep.iter().enumerate() {
            assert!(v.index() < self.vertex_count(), "out-of-range vertex {v}");
            let prev = to_new.insert(v, VertexId::new(i));
            assert!(prev.is_none(), "repeated vertex {v} in induced_subgraph");
        }
        let mut sub = Graph::new(keep.len());
        for (_, e) in self.edges() {
            if let (Some(&nu), Some(&nv)) = (to_new.get(&e.u), to_new.get(&e.v)) {
                sub.add_edge(nu, nv).expect("induced edges are simple");
            }
        }
        (sub, keep.to_vec())
    }

    /// Total degree sum, i.e. `2m`. Exposed for sanity checks in tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.vertex_count())
            .field("m", &self.edge_count())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert!(g.has_edge(VertexId(2), VertexId(0)));
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(VertexId(0), VertexId(0)),
            Err(GraphError::SelfLoop(VertexId(0)))
        );
    }

    #[test]
    fn rejects_duplicate_both_orders() {
        let mut g = Graph::new(2);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(1), VertexId(0)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut g = Graph::new(1);
        assert_eq!(
            g.add_edge(VertexId(0), VertexId(7)),
            Err(GraphError::UnknownVertex(VertexId(7)))
        );
    }

    #[test]
    fn ensure_edge_is_idempotent() {
        let mut g = Graph::new(2);
        let (e1, fresh1) = g.ensure_edge(VertexId(0), VertexId(1)).unwrap();
        let (e2, fresh2) = g.ensure_edge(VertexId(1), VertexId(0)).unwrap();
        assert_eq!(e1, e2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(VertexId(0)), VertexId(1));
        assert_eq!(e.other(VertexId(1)), VertexId(0));
        assert!(e.is_incident(VertexId(0)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (sub, back) = g.induced_subgraph(&[VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 1-2 and 2-3 survive
        assert_eq!(back[0], VertexId(1));
    }

    #[test]
    fn add_vertex_appends() {
        let mut g = Graph::new(0);
        let a = g.add_vertex();
        let b = g.add_vertex();
        assert_eq!((a, b), (VertexId(0), VertexId(1)));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
