//! Compressed-sparse-row (CSR) arena view of a [`Graph`], plus a dense
//! bitset adjacency matrix for constant-time membership checks.
//!
//! The builder representation ([`Graph`]) keeps one heap `Vec<Half>` per
//! vertex — convenient to grow, hostile to a verifier that streams every
//! vertex: each `incident` call chases a fresh pointer, and consecutive
//! vertices' adjacency lists land wherever the allocator put them. The
//! [`CsrGraph`] arena packs the same data into three flat arrays:
//!
//! ```text
//! offsets: [0, d0, d0+d1, ...]          (n + 1 entries, u32)
//! halves:  [v0's halves | v1's halves | ...]   (2m entries, contiguous)
//! edges:   [ (u, v); m ]                (endpoint pairs, insertion order)
//! ```
//!
//! `incident(v)` is then `&halves[offsets[v] .. offsets[v + 1]]` — a slice
//! into one contiguous allocation, so iterating vertices in index order
//! walks `halves` strictly left to right, one cache line at a time.
//!
//! Conversion preserves **observable structure exactly**: vertex order,
//! edge insertion order, and each vertex's incident-half order are
//! byte-for-byte those of the source `Graph` (property-tested in
//! `tests/csr_parity.rs`), so verdicts and label statistics computed over
//! either representation are bit-identical.

use crate::{Edge, EdgeId, Graph, Half, VertexId};

/// A compressed-sparse-row snapshot of a [`Graph`].
///
/// Immutable by construction: build the graph with the [`Graph`] API, then
/// freeze it with [`CsrGraph::from_graph`] for the verification hot path.
/// Accessors mirror the subset of the [`Graph`] API the verifiers use
/// (`vertex_count` / `edge_count` / `vertices` / `edges` / `degree` /
/// `incident` / `neighbors` / `endpoints`).
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// `n + 1` prefix sums into `halves`; `offsets[v]..offsets[v+1]` is
    /// vertex `v`'s incident slice.
    offsets: Vec<u32>,
    /// All adjacency halves, concatenated in vertex order; within one
    /// vertex, halves keep the source graph's insertion order.
    halves: Vec<Half>,
    /// Endpoint pairs in edge-insertion order (`edges[e]` is edge `e`).
    edges: Vec<Edge>,
    /// Largest degree, precomputed so hot loops can size scratch buffers
    /// once instead of growing them mid-stream.
    max_degree: usize,
}

impl CsrGraph {
    /// Freezes `g` into the flat-arena layout.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut halves = Vec::with_capacity(g.degree_sum());
        let mut max_degree = 0;
        offsets.push(0);
        for v in g.vertices() {
            let inc = g.incident(v);
            max_degree = max_degree.max(inc.len());
            halves.extend_from_slice(inc);
            offsets.push(u32::try_from(halves.len()).expect("degree-sum overflow"));
        }
        Self {
            offsets,
            halves,
            edges: g.edges().map(|(_, e)| e).collect(),
            max_degree,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Largest vertex degree (0 on the empty graph).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Iterates over all vertex handles in index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count()).map(VertexId::new)
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), *e))
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The incident halves of `v` — a slice into the shared arena.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident(&self, v: VertexId) -> &[Half] {
        &self.halves[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Iterates over the neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.incident(v).iter().map(|h| h.to)
    }

    /// Both endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()].endpoints()
    }

    /// The [`Edge`] record of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Builds the dense adjacency bitset of this graph (`n²` bits).
    pub fn adjacency_bitset(&self) -> AdjacencyBitset {
        AdjacencyBitset::from_csr(self)
    }
}

/// A dense `n × n` adjacency matrix packed one bit per pair.
///
/// `contains(u, v)` is a single word load + mask — the membership-check
/// counterpart of the CSR arena, for local-view checks that would
/// otherwise scan an adjacency slice or hash an endpoint pair. Row `u`
/// occupies bits `u * n .. (u + 1) * n` of the word array, so scanning a
/// row streams consecutive words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdjacencyBitset {
    n: usize,
    words: Vec<u64>,
}

impl AdjacencyBitset {
    /// An empty (edgeless) bitset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            words: vec![0; (n * n).div_ceil(64)],
        }
    }

    /// Builds the bitset from a CSR snapshot.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut b = Self::empty(g.vertex_count());
        for (_, e) in g.edges() {
            b.insert(e.u, e.v);
        }
        b
    }

    /// Builds the bitset straight from a builder [`Graph`].
    pub fn from_graph(g: &Graph) -> Self {
        let mut b = Self::empty(g.vertex_count());
        for (_, e) in g.edges() {
            b.insert(e.u, e.v);
        }
        b
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    fn bit(&self, u: VertexId, v: VertexId) -> usize {
        debug_assert!(u.index() < self.n && v.index() < self.n);
        u.index() * self.n + v.index()
    }

    /// Marks `{u, v}` adjacent (both directions).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an endpoint is out of range.
    pub fn insert(&mut self, u: VertexId, v: VertexId) {
        for (a, b) in [(u, v), (v, u)] {
            let bit = self.bit(a, b);
            self.words[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// `true` when `{u, v}` is an edge. Out-of-range handles are simply
    /// not adjacent (never a panic), so callers can probe speculatively.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        if u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        let bit = self.bit(u, v);
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // A small graph with non-uniform degrees and an isolated vertex.
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn csr_mirrors_builder_structure() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.vertex_count(), g.vertex_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.max_degree(), 3);
        for v in g.vertices() {
            assert_eq!(c.incident(v), g.incident(v), "{v}");
            assert_eq!(c.degree(v), g.degree(v));
            assert!(c.neighbors(v).eq(g.neighbors(v)));
        }
        for (e, edge) in g.edges() {
            assert_eq!(c.edge(e), edge);
            assert_eq!(c.endpoints(e), edge.endpoints());
        }
        assert!(c.vertices().eq(g.vertices()));
    }

    #[test]
    fn empty_graph_is_fine() {
        let c = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.max_degree(), 0);
        assert_eq!(c.vertices().count(), 0);
    }

    #[test]
    fn incident_slices_are_contiguous() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        // Adjacent vertices' slices abut in the shared arena.
        let mut walked = 0;
        for v in c.vertices() {
            let inc = c.incident(v);
            assert_eq!(
                inc.as_ptr(),
                c.halves[walked..].as_ptr(),
                "slice of {v} is not where the arena walk expects"
            );
            walked += inc.len();
        }
        assert_eq!(walked, c.halves.len());
    }

    #[test]
    fn bitset_agrees_with_has_edge() {
        let g = sample();
        let b = CsrGraph::from_graph(&g).adjacency_bitset();
        assert_eq!(b, AdjacencyBitset::from_graph(&g));
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(b.contains(u, v), g.has_edge(u, v), "{u} {v}");
            }
        }
        // Probing out of range answers "not adjacent".
        assert!(!b.contains(VertexId(99), VertexId(0)));
        assert_eq!(b.vertex_count(), 6);
    }

    #[test]
    fn bitset_crosses_word_boundaries() {
        // 9 vertices → 81 bits → more than one u64 word.
        let mut g = Graph::new(9);
        g.add_edge(VertexId(7), VertexId(8)).unwrap();
        let b = AdjacencyBitset::from_graph(&g);
        assert!(b.contains(VertexId(8), VertexId(7)));
        assert!(!b.contains(VertexId(0), VertexId(8)));
    }
}
