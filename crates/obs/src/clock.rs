//! The workspace's single blessed timing site.
//!
//! Every other crate in the workspace is barred from `Instant::now` /
//! `SystemTime::now` twice over — by the clippy `disallowed_methods`
//! list and by the `check` linter's `obs-clock` rule. All timing flows
//! through a [`Clock`] handle instead: the default monotonic clock reads
//! the OS, while [`ManualClock`] hands tests a deterministic timeline so
//! span and histogram output can be pinned byte-for-byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Nanoseconds on the process-wide monotonic timeline (first call = 0).
///
/// This function (together with [`wall_entropy_ns`]) is the one audited
/// raw-clock site in the workspace.
fn monotonic_now_ns() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    // The audited site: raw `Instant::now` is allowed only here.
    #[allow(clippy::disallowed_methods)]
    let now = std::time::Instant::now();
    let epoch = *EPOCH.get_or_init(|| now);
    now.saturating_duration_since(epoch).as_nanos() as u64
}

/// Wall-clock entropy for fingerprint nonces, as nanoseconds since the
/// Unix epoch (0 if the system clock predates it).
///
/// The sealed-algebra fingerprint in `crates/algebra` mixes this into a
/// per-instance nonce; it is hashed, never ordered, so determinism of
/// certified outputs is unaffected. This is the only sanctioned
/// `SystemTime` read in the workspace.
pub fn wall_entropy_ns() -> u128 {
    // The audited site: raw `SystemTime::now` is allowed only here.
    #[allow(clippy::disallowed_methods)]
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

/// A cheap, cloneable source of nanosecond timestamps.
///
/// The default handle reads the monotonic OS clock; a handle obtained
/// from [`ManualClock::clock`] reads a shared counter that only moves
/// when the test advances it. Engine reports, bench timing, and span
/// timestamps all go through a `Clock`, so swapping in a manual one
/// makes every timing-dependent output deterministic.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    /// `None` → monotonic OS clock; `Some` → shared manual counter.
    manual: Option<Arc<AtomicU64>>,
}

impl Clock {
    /// The monotonic OS clock (same as `Clock::default()`).
    pub fn monotonic() -> Self {
        Clock { manual: None }
    }

    /// Current time in nanoseconds on this clock's timeline.
    pub fn now_ns(&self) -> u64 {
        match &self.manual {
            Some(t) => t.load(Ordering::SeqCst),
            None => monotonic_now_ns(),
        }
    }

    /// Seconds elapsed since an earlier [`Clock::now_ns`] reading.
    pub fn seconds_since(&self, start_ns: u64) -> f64 {
        self.now_ns().saturating_sub(start_ns) as f64 / 1e9
    }

    /// `true` if this handle reads a [`ManualClock`].
    pub fn is_manual(&self) -> bool {
        self.manual.is_some()
    }

    /// Label for trace headers: `"monotonic"` or `"manual"`.
    pub fn kind(&self) -> &'static str {
        if self.is_manual() {
            "manual"
        } else {
            "monotonic"
        }
    }
}

/// A test-controlled clock: time stands still until advanced.
///
/// Hand [`ManualClock::clock`] handles to the code under test, then step
/// time explicitly; every handle observes the same timeline.
#[derive(Debug, Default)]
pub struct ManualClock {
    time: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// A [`Clock`] handle reading this manual timeline.
    pub fn clock(&self) -> Clock {
        Clock {
            manual: Some(Arc::clone(&self.time)),
        }
    }

    /// Moves time forward by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.time.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps time to an absolute nanosecond value.
    pub fn set_ns(&self, t: u64) {
        self.time.store(t, Ordering::SeqCst);
    }

    /// Current manual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.time.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let clock = Clock::monotonic();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        assert!(!clock.is_manual());
        assert_eq!(clock.kind(), "monotonic");
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let manual = ManualClock::new();
        let clock = manual.clock();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        manual.advance_ns(250);
        assert_eq!(clock.now_ns(), 250);
        manual.set_ns(1_000);
        assert_eq!(clock.now_ns(), 1_000);
        assert_eq!(clock.seconds_since(500), 0.000_000_5);
        assert!(clock.is_manual());
        assert_eq!(clock.kind(), "manual");
    }

    #[test]
    fn manual_handles_share_one_timeline() {
        let manual = ManualClock::new();
        let (a, b) = (manual.clock(), manual.clock());
        manual.advance_ns(7);
        assert_eq!(a.now_ns(), 7);
        assert_eq!(b.now_ns(), 7);
    }

    #[test]
    fn wall_entropy_is_plausible() {
        // 2020-01-01 in ns since the epoch; any sane host is past it.
        assert!(wall_entropy_ns() > 1_577_836_800_000_000_000);
    }
}
