//! `lanecert_obs`: dependency-free observability for the workspace.
//!
//! Three pieces, threaded through core, engine, and bench:
//!
//! * **Spans** — [`span!`] opens a named, optionally-fielded span whose
//!   enter/exit events land in a per-thread buffer on the active
//!   [`TraceSession`]; the drained [`TraceLog`] exports as JSONL and as
//!   collapsed stacks for flamegraph tooling ([`trace`]).
//! * **Metrics** — named monotonic counters and fixed power-of-two
//!   bucket histograms ([`metrics`]), plus the engine pool's
//!   [`PoolStats`] snapshot, summarized per run in an [`ObsReport`]
//!   ([`report`]).
//! * **Clock** — the single blessed timing site ([`clock`]): every
//!   other crate is barred from raw `Instant::now` / `SystemTime::now`
//!   (clippy `disallowed_methods` + the `check` linter's `obs-clock`
//!   rule), and [`ManualClock`] makes timing-dependent tests
//!   deterministic.
//!
//! **Cost model.** With the `enabled` feature off (the default), spans
//! and metric recordings are inlined empty functions — instrumented
//! call sites compile to nothing, so zero-alloc verify loops and bench
//! numbers are untouched. With it on but no session active, a span is
//! one relaxed atomic load. Only between [`TraceSession::begin`] and
//! [`TraceSession::end`] is anything recorded — and recording never
//! influences certified outputs, a claim the workspace pins with
//! bit-parity proptests.
//!
//! ```
//! use lanecert_obs::{span, ManualClock, TraceConfig, TraceSession};
//!
//! let clock = ManualClock::new();
//! let session = TraceSession::begin(TraceConfig::with_clock(clock.clock()));
//! {
//!     let _outer = lanecert_obs::span!("run");
//!     clock.advance_ns(10);
//!     let _inner = lanecert_obs::span!("prove", job = 3);
//!     clock.advance_ns(5);
//! }
//! let run = session.end();
//! let jsonl = run.log.to_jsonl(None);
//! assert!(jsonl.starts_with("{\"schema\":\"lanecert-trace/1\""));
//! ```

pub mod clock;
pub mod metrics;
pub mod report;
pub mod trace;

pub use clock::{wall_entropy_ns, Clock, ManualClock};
pub use metrics::{counter_add, record_ns, HistogramSummary};
pub use report::{json_escape, ObsReport, PoolStats};
pub use trace::{
    active, span, Event, EventKind, RunTrace, SpanGuard, ThreadTrace, TraceConfig, TraceLog,
    TraceSession,
};

/// `true` when this build compiled the recording machinery in (the
/// `enabled` feature). Callers can branch on this to skip preparing
/// instrumentation inputs that a no-op build would discard; the
/// recording entry points themselves are always safe to call.
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Standard span/counter/histogram names used across the workspace, so
/// producers and report readers agree on spelling.
pub mod names {
    /// Histogram: nanoseconds proving one job.
    pub const PROVE_NS: &str = "prove_ns";
    /// Histogram: nanoseconds verifying one job (whole-job task).
    pub const VERIFY_NS: &str = "verify_ns";
    /// Histogram: nanoseconds verifying one shard of a fanned-out job.
    pub const VERIFY_SHARD_NS: &str = "verify_shard_ns";
    /// Counter: encoded labels decoded during verification.
    pub const LABELS_DECODED: &str = "labels_decoded";
    /// Counter: encoded label bytes read during verification.
    pub const LABEL_BYTES_READ: &str = "label_bytes_read";
    /// Counter: branch nodes expanded by the pathwidth B&B solver.
    pub const BNB_NODES: &str = "bnb_nodes";
    /// Counter: branches pruned by the B&B incumbent bound.
    pub const BNB_PRUNES: &str = "bnb_prunes";
    /// Counter: dominated prefix re-visits answered by the B&B memo.
    pub const BNB_MEMO_HITS: &str = "bnb_memo_hits";
}

/// Opens a structured span: `span!("prove")` or
/// `span!("prove", job = idx)`. Returns a guard that closes the span
/// when dropped — bind it (`let _span = …`) so it lives to the end of
/// the scope. Compiles to nothing when the `enabled` feature is off.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name, ::core::option::Option::None)
    };
    ($name:expr, $key:ident = $value:expr) => {
        $crate::trace::span(
            $name,
            ::core::option::Option::Some((stringify!($key), $value as u64)),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Sessions are process-global; the recorder tests take this lock
    /// so parallel test threads cannot displace each other's sessions.
    static SESSIONS: Mutex<()> = Mutex::new(());

    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        SESSIONS.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn this_thread() -> String {
        std::thread::current()
            .name()
            .expect("test threads are named")
            .to_string()
    }

    /// Runs the canonical nested-span scenario on a manual clock.
    fn nested_run() -> RunTrace {
        let manual = ManualClock::new();
        let session = TraceSession::begin(TraceConfig::with_clock(manual.clock()));
        {
            let _run = span!("run");
            manual.advance_ns(10);
            {
                let _prove = span!("prove", job = 3);
                manual.advance_ns(5);
            }
            manual.advance_ns(2);
        }
        session.end()
    }

    #[test]
    fn span_nesting_is_pinned() {
        let _guard = serialize();
        let run = nested_run();
        assert_eq!(run.log.clock_kind, "manual");
        assert_eq!(run.log.threads.len(), 1);
        let events = &run.log.threads[0].events;
        let shape: Vec<(EventKind, &str, u64)> =
            events.iter().map(|e| (e.kind, e.span, e.ts_ns)).collect();
        assert_eq!(
            shape,
            vec![
                (EventKind::Enter, "run", 0),
                (EventKind::Enter, "prove", 10),
                (EventKind::Exit, "prove", 15),
                (EventKind::Exit, "run", 17),
            ]
        );
        assert_eq!(events[1].field, Some(("job", 3)));
    }

    #[test]
    fn jsonl_output_is_pinned() {
        let _guard = serialize();
        let run = nested_run();
        let t = this_thread();
        let expected = format!(
            concat!(
                "{{\"schema\":\"lanecert-trace/1\",\"clock\":\"manual\",\"threads\":1,\"events\":4}}\n",
                "{{\"thread\":\"{t}\",\"seq\":0,\"ev\":\"enter\",\"span\":\"run\",\"ts_ns\":0}}\n",
                "{{\"thread\":\"{t}\",\"seq\":1,\"ev\":\"enter\",\"span\":\"prove\",\"ts_ns\":10,\"job\":3}}\n",
                "{{\"thread\":\"{t}\",\"seq\":2,\"ev\":\"exit\",\"span\":\"prove\",\"ts_ns\":15}}\n",
                "{{\"thread\":\"{t}\",\"seq\":3,\"ev\":\"exit\",\"span\":\"run\",\"ts_ns\":17}}\n",
            ),
            t = t
        );
        assert_eq!(run.log.to_jsonl(None), expected);
    }

    #[test]
    fn jsonl_summary_line_carries_the_report() {
        let _guard = serialize();
        let run = nested_run();
        let report = ObsReport {
            wall_ns: 17,
            ..ObsReport::default()
        };
        let jsonl = run.log.to_jsonl(Some(&report));
        let last = jsonl.lines().last().unwrap();
        assert_eq!(
            last,
            "{\"summary\":{\"wall_ns\":17,\"counters\":[],\"histograms\":[],\"pool\":null}}"
        );
    }

    #[test]
    fn collapsed_stacks_are_pinned() {
        let _guard = serialize();
        let run = nested_run();
        let t = this_thread();
        // Exclusive time: `run` owns [0,10) ∪ [15,17) = 12 ns, and
        // `run;prove` owns [10,15) = 5 ns.
        let expected = format!("{t};run 12\n{t};run;prove 5\n");
        assert_eq!(run.log.to_collapsed(), expected);
    }

    #[test]
    fn metrics_drain_with_the_session() {
        let _guard = serialize();
        let manual = ManualClock::new();
        let session = TraceSession::begin(TraceConfig::with_clock(manual.clock()));
        counter_add(names::LABELS_DECODED, 4);
        counter_add(names::LABELS_DECODED, 2);
        record_ns(names::PROVE_NS, 100);
        record_ns(names::PROVE_NS, 900);
        let run = session.end();
        assert_eq!(run.counters, vec![("labels_decoded".to_string(), 6)]);
        assert_eq!(run.histograms.len(), 1);
        let h = &run.histograms[0];
        assert_eq!((h.name.as_str(), h.count, h.sum), ("prove_ns", 2, 1000));
        assert_eq!(h.buckets, vec![(128, 1), (1024, 1)]);
    }

    #[test]
    fn no_session_means_no_recording() {
        let _guard = serialize();
        assert!(!active());
        let _orphan = span!("orphan");
        counter_add("orphan", 1);
        record_ns("orphan_ns", 1);
        // A fresh session must not see any of the above.
        let session = TraceSession::begin(TraceConfig::new());
        assert!(active());
        let run = session.end();
        assert!(!active());
        assert_eq!(run.log.event_count(), 0);
        assert!(run.counters.is_empty());
        assert!(run.histograms.is_empty());
    }

    #[test]
    fn spans_record_per_thread() {
        let _guard = serialize();
        let manual = ManualClock::new();
        let session = TraceSession::begin(TraceConfig::with_clock(manual.clock()));
        {
            let _driver = span!("drive");
            std::thread::Builder::new()
                .name("obs-worker".into())
                .spawn(|| {
                    let _w = span!("work", shard = 1);
                })
                .unwrap()
                .join()
                .unwrap();
        }
        let run = session.end();
        assert_eq!(run.log.threads.len(), 2);
        // Threads are sorted by label; the named worker recorded both
        // boundaries of its span.
        let worker = run
            .log
            .threads
            .iter()
            .find(|t| t.label == "obs-worker")
            .expect("worker thread registered");
        assert_eq!(worker.events.len(), 2);
        assert_eq!(worker.events[0].field, Some(("shard", 1)));
    }

    #[test]
    fn compiled_reflects_the_feature() {
        // The self dev-dependency turns `enabled` on for unit tests
        // (read through a binding so the assert isn't on a literal).
        let compiled = COMPILED;
        assert!(compiled);
    }
}
