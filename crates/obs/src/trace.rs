//! Structured spans, the run-scoped collector, and trace export.
//!
//! Call sites open spans with [`crate::span!`]; each enter/exit lands in
//! a per-thread event buffer owned by the active [`TraceSession`]'s
//! collector. The buffer is a plain `Mutex<Vec<_>>`, but only its owner
//! thread pushes to it while the session runs — the mutex is contended
//! exactly once, at drain — so recording is uncontended in steady state
//! (the workspace-wide `unsafe_code = "forbid"` rules out a literally
//! lock-free ring). When no session is active, a span is one relaxed
//! atomic load; when the `enabled` feature is off, it compiles to
//! nothing at all.
//!
//! [`TraceSession::end`] drains every buffer into a [`TraceLog`], which
//! exports as JSONL (`lanecert-trace/1`, one event per line) and as
//! collapsed stacks (`thread;span;… ns`) for standard flamegraph
//! tooling.

use crate::clock::Clock;
use crate::metrics::HistogramSummary;
use crate::report::{json_escape, ObsReport};

/// Whether an event opens or closes a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
}

/// One span boundary, as recorded on its thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Enter or exit.
    pub kind: EventKind,
    /// Static span name (e.g. `"prove"`).
    pub span: &'static str,
    /// Optional structured field, e.g. `("job", 3)` (enter events only).
    pub field: Option<(&'static str, u64)>,
    /// Timestamp on the session clock's timeline.
    pub ts_ns: u64,
}

/// The ordered event sequence of one thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Thread name, or `anon-<k>` for unnamed threads.
    pub label: String,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// A drained run trace: every thread's events, in label order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLog {
    /// `"monotonic"` or `"manual"` — which clock stamped the events.
    pub clock_kind: &'static str,
    /// Per-thread event sequences, sorted by label.
    pub threads: Vec<ThreadTrace>,
}

impl TraceLog {
    /// Total number of recorded events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Serializes the trace as JSONL (`lanecert-trace/1`): a header
    /// line, one line per event with a per-thread `seq`, and — when
    /// `summary` is given — a final `{"summary": …}` line carrying the
    /// run's [`ObsReport`].
    pub fn to_jsonl(&self, summary: Option<&ObsReport>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"lanecert-trace/1\",\"clock\":\"{}\",\"threads\":{},\"events\":{}}}\n",
            self.clock_kind,
            self.threads.len(),
            self.event_count()
        ));
        for t in &self.threads {
            for (seq, e) in t.events.iter().enumerate() {
                let ev = match e.kind {
                    EventKind::Enter => "enter",
                    EventKind::Exit => "exit",
                };
                out.push_str(&format!(
                    "{{\"thread\":\"{}\",\"seq\":{},\"ev\":\"{}\",\"span\":\"{}\",\"ts_ns\":{}",
                    json_escape(&t.label),
                    seq,
                    ev,
                    json_escape(e.span),
                    e.ts_ns
                ));
                if let Some((key, value)) = e.field {
                    out.push_str(&format!(",\"{}\":{}", json_escape(key), value));
                }
                out.push_str("}\n");
            }
        }
        if let Some(report) = summary {
            out.push_str(&format!("{{\"summary\":{}}}\n", report.to_json()));
        }
        out
    }

    /// Renders the trace as collapsed stacks — one
    /// `thread;span;… <exclusive ns>` line per distinct stack, sorted —
    /// the input format of standard flamegraph tooling.
    pub fn to_collapsed(&self) -> String {
        let mut lines: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for t in &self.threads {
            let mut stack: Vec<&'static str> = Vec::new();
            let mut last_ts = 0u64;
            for e in &t.events {
                if !stack.is_empty() {
                    let mut key = t.label.clone();
                    for s in &stack {
                        key.push(';');
                        key.push_str(s);
                    }
                    *lines.entry(key).or_insert(0) += e.ts_ns.saturating_sub(last_ts);
                }
                match e.kind {
                    EventKind::Enter => stack.push(e.span),
                    EventKind::Exit => {
                        // A mismatched exit (span closed on another
                        // thread, or truncated buffer) is skipped rather
                        // than corrupting the stack.
                        if stack.last() == Some(&e.span) {
                            stack.pop();
                        }
                    }
                }
                last_ts = e.ts_ns;
            }
        }
        let mut out = String::new();
        for (stack, ns) in lines {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }
}

/// Configuration for a traced run: today just the clock that stamps
/// events and engine timing.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Clock used for span timestamps and report timing.
    pub clock: Clock,
}

impl TraceConfig {
    /// Tracing on the monotonic OS clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracing on the given clock (pass a [`crate::ManualClock`] handle
    /// for deterministic tests).
    pub fn with_clock(clock: Clock) -> Self {
        TraceConfig { clock }
    }
}

/// Everything a drained session yields: the span log plus counter and
/// histogram snapshots (names sorted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTrace {
    /// The span event log.
    pub log: TraceLog,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

#[cfg(feature = "enabled")]
mod recorder {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    use super::{Event, EventKind, RunTrace, ThreadTrace, TraceConfig, TraceLog};
    use crate::metrics::Histogram;

    /// Active session id (0 = none): the span fast path is this load.
    static CURRENT: AtomicU64 = AtomicU64::new(0);
    static ACTIVE: Mutex<Option<Arc<Collector>>> = Mutex::new(None);
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    pub(crate) struct Collector {
        id: u64,
        clock: crate::clock::Clock,
        buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
        counters: Mutex<BTreeMap<&'static str, u64>>,
        histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    }

    struct ThreadBuffer {
        label: String,
        events: Mutex<Vec<Event>>,
    }

    impl Collector {
        pub(crate) fn counter_add(&self, name: &'static str, delta: u64) {
            *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
        }

        pub(crate) fn record_ns(&self, name: &'static str, value: u64) {
            let h = {
                let mut map = self.histograms.lock().unwrap();
                Arc::clone(
                    map.entry(name)
                        .or_insert_with(|| Arc::new(Histogram::new())),
                )
            };
            h.record(value);
        }

        fn register_thread(&self) -> Arc<ThreadBuffer> {
            let mut buffers = self.buffers.lock().unwrap();
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("anon-{}", buffers.len()));
            let buf = Arc::new(ThreadBuffer {
                label,
                events: Mutex::new(Vec::new()),
            });
            buffers.push(Arc::clone(&buf));
            buf
        }
    }

    /// This thread's binding to the active session: (session id,
    /// collector, event buffer).
    type ThreadSlot = (u64, Arc<Collector>, Arc<ThreadBuffer>);

    thread_local! {
        /// Rebound lazily when the session changes.
        static SLOT: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
    }

    fn bind<R>(f: impl FnOnce(&Arc<Collector>, &Arc<ThreadBuffer>) -> R) -> Option<R> {
        let current = CURRENT.load(Ordering::Acquire);
        if current == 0 {
            return None;
        }
        SLOT.with(|slot| {
            let mut slot = slot.borrow_mut();
            let stale = match &*slot {
                Some((id, _, _)) => *id != current,
                None => true,
            };
            if stale {
                let collector = ACTIVE.lock().unwrap().clone()?;
                let buffer = collector.register_thread();
                *slot = Some((collector.id, collector, buffer));
            }
            let (_, c, b) = slot.as_ref().expect("slot bound above");
            Some(f(c, b))
        })
    }

    pub(crate) fn with_collector<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
        bind(|collector, _| f(collector))
    }

    /// `true` while a session is installed.
    pub fn active() -> bool {
        CURRENT.load(Ordering::Relaxed) != 0
    }

    /// Opens a span; prefer the [`crate::span!`] macro.
    pub fn span(name: &'static str, field: Option<(&'static str, u64)>) -> SpanGuard {
        let inner = bind(|collector, buffer| {
            let ts = collector.clock.now_ns();
            buffer.events.lock().unwrap().push(Event {
                kind: EventKind::Enter,
                span: name,
                field,
                ts_ns: ts,
            });
            ActiveSpan {
                clock: collector.clock.clone(),
                buffer: Arc::clone(buffer),
                span: name,
            }
        });
        SpanGuard { inner }
    }

    struct ActiveSpan {
        clock: crate::clock::Clock,
        buffer: Arc<ThreadBuffer>,
        span: &'static str,
    }

    /// Closes its span on drop.
    pub struct SpanGuard {
        inner: Option<ActiveSpan>,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(a) = self.inner.take() {
                let ts = a.clock.now_ns();
                a.buffer.events.lock().unwrap().push(Event {
                    kind: EventKind::Exit,
                    span: a.span,
                    field: None,
                    ts_ns: ts,
                });
            }
        }
    }

    /// A run-scoped recording session. Exactly one is active at a time;
    /// a later `begin` displaces an earlier session (whose spans then
    /// stop recording — its `end` still drains what it captured).
    pub struct TraceSession {
        collector: Arc<Collector>,
        config: TraceConfig,
    }

    impl TraceSession {
        /// Installs a new session as the recording target.
        pub fn begin(config: TraceConfig) -> TraceSession {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let collector = Arc::new(Collector {
                id,
                clock: config.clock.clone(),
                buffers: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            });
            *ACTIVE.lock().unwrap() = Some(Arc::clone(&collector));
            CURRENT.store(id, Ordering::Release);
            TraceSession { collector, config }
        }

        /// Uninstalls the session and drains every thread buffer.
        pub fn end(self) -> RunTrace {
            let _ =
                CURRENT.compare_exchange(self.collector.id, 0, Ordering::AcqRel, Ordering::Relaxed);
            {
                let mut active = ACTIVE.lock().unwrap();
                if active
                    .as_ref()
                    .is_some_and(|c| Arc::ptr_eq(c, &self.collector))
                {
                    *active = None;
                }
            }
            let mut threads: Vec<ThreadTrace> = self
                .collector
                .buffers
                .lock()
                .unwrap()
                .iter()
                .map(|b| ThreadTrace {
                    label: b.label.clone(),
                    events: b.events.lock().unwrap().clone(),
                })
                .collect();
            threads.sort_by(|a, b| a.label.cmp(&b.label));
            RunTrace {
                log: TraceLog {
                    clock_kind: self.config.clock.kind(),
                    threads,
                },
                counters: self
                    .collector
                    .counters
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect(),
                histograms: self
                    .collector
                    .histograms
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, h)| h.summary(k))
                    .collect(),
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod recorder {
    use super::{RunTrace, TraceConfig, TraceLog};

    /// `true` while a session is installed (always `false` in a no-op
    /// build: the `enabled` feature is off).
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// Opens a span; prefer the [`crate::span!`] macro. (No-op build.)
    #[inline(always)]
    pub fn span(_name: &'static str, _field: Option<(&'static str, u64)>) -> SpanGuard {
        SpanGuard { _private: () }
    }

    /// Closes its span on drop. (No-op build: nothing to close.)
    pub struct SpanGuard {
        _private: (),
    }

    /// A run-scoped recording session. (No-op build: records nothing,
    /// drains empty.)
    pub struct TraceSession {
        config: TraceConfig,
    }

    impl TraceSession {
        /// Installs a new session as the recording target. (No-op
        /// build: nothing is installed.)
        #[inline(always)]
        pub fn begin(config: TraceConfig) -> TraceSession {
            TraceSession { config }
        }

        /// Uninstalls the session and drains every thread buffer.
        /// (No-op build: the drain is empty.)
        pub fn end(self) -> RunTrace {
            RunTrace {
                log: TraceLog {
                    clock_kind: self.config.clock.kind(),
                    threads: Vec::new(),
                },
                counters: Vec::new(),
                histograms: Vec::new(),
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub(crate) use recorder::with_collector;
pub use recorder::{active, span, SpanGuard, TraceSession};
