//! Counters and fixed-bucket histograms.
//!
//! Both are named by `&'static str` and recorded through free functions
//! ([`counter_add`], [`record_ns`]) so call sites need no handle
//! plumbing; recordings land on the active [`crate::trace::TraceSession`]
//! collector, and are inlined no-ops when no session is active — or when
//! the `enabled` feature is off, in which case they compile to nothing.
//!
//! Histograms use fixed power-of-two buckets: bucket 0 counts the value
//! 0 and bucket `k ≥ 1` counts values in `[2^(k-1), 2^k)`. Bucketing is
//! a pure function of the value, so summaries are deterministic and the
//! unit tests pin them exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (value 0, then one per power of two).
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `k` with `2^(k-1) ≤ v < 2^k`.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// whose top value is unreachable as an exclusive bound).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 1,
        1..=63 => 1u64 << i,
        _ => u64::MAX,
    }
}

/// A concurrent fixed-bucket histogram (all-atomic, relaxed ordering:
/// totals are read only after the run's happens-before edge at drain).
/// Only the `enabled` recorder instantiates it outside tests.
#[derive(Debug)]
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn summary(&self, name: &str) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSummary {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_bound(i), n))
                })
                .collect(),
        }
    }
}

/// An immutable snapshot of one histogram, taken at session drain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `"prove_ns"`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(exclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Adds `delta` to the named monotonic counter on the active session.
#[cfg(feature = "enabled")]
pub fn counter_add(name: &'static str, delta: u64) {
    crate::trace::with_collector(|c| c.counter_add(name, delta));
}

/// Adds `delta` to the named monotonic counter on the active session.
/// (No-op build: the `enabled` feature is off.)
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// Records one nanosecond value into the named histogram on the active
/// session.
#[cfg(feature = "enabled")]
pub fn record_ns(name: &'static str, value: u64) {
    crate::trace::with_collector(|c| c.record_ns(name, value));
}

/// Records one nanosecond value into the named histogram on the active
/// session. (No-op build: the `enabled` feature is off.)
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn record_ns(_name: &'static str, _value: u64) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_power_of_two_ladder() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_summary_is_pinned() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 900, 1024] {
            h.record(v);
        }
        let s = h.summary("t");
        assert_eq!(
            s,
            HistogramSummary {
                name: "t".into(),
                count: 6,
                sum: 1929,
                min: 0,
                max: 1024,
                buckets: vec![(1, 1), (2, 2), (4, 1), (1024, 1), (2048, 1)],
            }
        );
        assert_eq!(s.mean(), 1929.0 / 6.0);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary("e");
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
