//! Run-level observability summaries: pool statistics and the
//! [`ObsReport`] attached to a traced run's `BatchReport`.

use crate::metrics::HistogramSummary;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A snapshot of the work-stealing pool's lifetime counters.
///
/// All counters are cumulative since pool construction; subtract two
/// snapshots with [`PoolStats::delta_since`] to scope them to one run.
/// High-water marks are lifetime maxima and survive the subtraction
/// unchanged (a per-run high-water mark is not recoverable from two
/// snapshots).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Tasks pushed to the shared injector (driver-side submissions).
    pub injector_pushes: u64,
    /// Tasks a worker popped from the shared injector.
    pub injector_pops: u64,
    /// Times a worker parked (found no work and slept).
    pub parks: u64,
    /// Times a parked worker was woken by a submission.
    pub unparks: u64,
    /// Tasks executed, per worker.
    pub tasks_per_worker: Vec<u64>,
    /// Deepest each worker's own deque has been, per worker.
    pub queue_hwm_per_worker: Vec<u64>,
    /// Deepest the shared injector queue has been.
    pub injector_hwm: u64,
}

impl PoolStats {
    /// Total tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// Counters accrued since `base` was snapshotted (high-water marks
    /// are carried over from `self` as lifetime maxima).
    pub fn delta_since(&self, base: &PoolStats) -> PoolStats {
        let per_worker = |now: &[u64], then: &[u64]| {
            now.iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(then.get(i).copied().unwrap_or(0)))
                .collect()
        };
        PoolStats {
            workers: self.workers,
            steals: self.steals.saturating_sub(base.steals),
            injector_pushes: self.injector_pushes.saturating_sub(base.injector_pushes),
            injector_pops: self.injector_pops.saturating_sub(base.injector_pops),
            parks: self.parks.saturating_sub(base.parks),
            unparks: self.unparks.saturating_sub(base.unparks),
            tasks_per_worker: per_worker(&self.tasks_per_worker, &base.tasks_per_worker),
            queue_hwm_per_worker: self.queue_hwm_per_worker.clone(),
            injector_hwm: self.injector_hwm,
        }
    }

    /// JSON object rendering (stable key order).
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            concat!(
                "{{\"workers\":{},\"steals\":{},\"injector_pushes\":{},",
                "\"injector_pops\":{},\"parks\":{},\"unparks\":{},",
                "\"tasks_per_worker\":{},\"queue_hwm_per_worker\":{},",
                "\"injector_hwm\":{}}}"
            ),
            self.workers,
            self.steals,
            self.injector_pushes,
            self.injector_pops,
            self.parks,
            self.unparks,
            list(&self.tasks_per_worker),
            list(&self.queue_hwm_per_worker),
            self.injector_hwm,
        )
    }
}

/// Per-run observability summary, attached to `BatchReport` (and to the
/// trace JSONL's final `summary` line) when a run is traced.
///
/// This is diagnostic data about *how* the run executed — it is
/// deliberately excluded from report equality, which compares only
/// certified outcomes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Wall-clock duration of the run on the session clock.
    pub wall_ns: u64,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots (per-stage totals live in their sums),
    /// sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Pool counters accrued during the run, if the run used the pool.
    pub pool: Option<PoolStats>,
}

impl ObsReport {
    /// Value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram snapshot, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total nanoseconds recorded into the named stage histogram —
    /// the per-stage totals the trace summary surfaces.
    pub fn stage_total_ns(&self, name: &str) -> u64 {
        self.histogram(name).map_or(0, |h| h.sum)
    }

    /// JSON object rendering (stable key order).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, value)| {
                format!("{{\"name\":\"{}\",\"value\":{}}}", json_escape(name), value)
            })
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(bound, count)| format!("[{bound},{count}]"))
                    .collect();
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"count\":{},\"sum\":{},",
                        "\"min\":{},\"max\":{},\"buckets\":[{}]}}"
                    ),
                    json_escape(&h.name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    buckets.join(",")
                )
            })
            .collect();
        let pool = self
            .pool
            .as_ref()
            .map_or("null".to_string(), PoolStats::to_json);
        format!(
            "{{\"wall_ns\":{},\"counters\":[{}],\"histograms\":[{}],\"pool\":{}}}",
            self.wall_ns,
            counters.join(","),
            histograms.join(","),
            pool
        )
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("obs: wall {:.3} ms\n", self.wall_ns as f64 / 1e6));
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name:<24} {value}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "  hist    {:<24} n={} sum={}ns mean={:.0}ns min={}ns max={}ns\n",
                h.name,
                h.count,
                h.sum,
                h.mean(),
                h.min,
                h.max
            ));
        }
        if let Some(p) = &self.pool {
            out.push_str(&format!(
                "  pool    workers={} tasks={} steals={} inj_push={} inj_pop={} parks={} unparks={} hwm={:?}\n",
                p.workers,
                p.total_tasks(),
                p.steals,
                p.injector_pushes,
                p.injector_pops,
                p.parks,
                p.unparks,
                p.queue_hwm_per_worker,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn pool_stats_delta_subtracts_counters_and_keeps_hwm() {
        let base = PoolStats {
            workers: 2,
            steals: 3,
            injector_pushes: 10,
            injector_pops: 9,
            parks: 4,
            unparks: 4,
            tasks_per_worker: vec![5, 6],
            queue_hwm_per_worker: vec![2, 2],
            injector_hwm: 4,
        };
        let now = PoolStats {
            steals: 8,
            injector_pushes: 25,
            injector_pops: 24,
            parks: 9,
            unparks: 8,
            tasks_per_worker: vec![15, 18],
            queue_hwm_per_worker: vec![3, 2],
            injector_hwm: 6,
            ..base.clone()
        };
        let d = now.delta_since(&base);
        assert_eq!(d.steals, 5);
        assert_eq!(d.injector_pushes, 15);
        assert_eq!(d.tasks_per_worker, vec![10, 12]);
        assert_eq!(d.total_tasks(), 22);
        // High-water marks are lifetime maxima, not differences.
        assert_eq!(d.queue_hwm_per_worker, vec![3, 2]);
        assert_eq!(d.injector_hwm, 6);
    }

    #[test]
    fn obs_report_json_is_pinned() {
        let report = ObsReport {
            wall_ns: 42,
            counters: vec![("labels_decoded".into(), 7)],
            histograms: vec![crate::metrics::HistogramSummary {
                name: "prove_ns".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: vec![(16, 1), (32, 1)],
            }],
            pool: None,
        };
        assert_eq!(
            report.to_json(),
            concat!(
                "{\"wall_ns\":42,",
                "\"counters\":[{\"name\":\"labels_decoded\",\"value\":7}],",
                "\"histograms\":[{\"name\":\"prove_ns\",\"count\":2,\"sum\":30,",
                "\"min\":10,\"max\":20,\"buckets\":[[16,1],[32,1]]}],",
                "\"pool\":null}"
            )
        );
        assert_eq!(report.counter("labels_decoded"), 7);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.stage_total_ns("prove_ns"), 30);
    }
}
