//! Scheduler-aware drop-ins for `std::sync` primitives.
//!
//! Each operation is a decision point for the model scheduler (see the
//! crate docs); blocking goes through the scheduler so deadlocks are
//! detected rather than hung on. The data itself lives in ordinary std
//! containers — mutual exclusion is enforced by the scheduler's
//! held-flags, so the inner `std::sync::Mutex` is never contended.

use std::ops::{Deref, DerefMut};

use crate::sched::Scheduler;

pub use std::sync::Arc;

/// Atomics whose every access is a scheduler decision point.
pub mod atomic {
    use crate::sched::Scheduler;

    pub use std::sync::atomic::Ordering;

    /// Inserts a decision point before an atomic access.
    fn yield_here() {
        let (sched, me) = Scheduler::current();
        sched.yield_point(me);
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Wraps an initial value.
                pub fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// Reads the value (a decision point).
                pub fn load(&self, o: Ordering) -> $prim {
                    yield_here();
                    self.0.load(o)
                }

                /// Writes the value (a decision point).
                pub fn store(&self, v: $prim, o: Ordering) {
                    yield_here();
                    self.0.store(v, o);
                }

                /// Swaps in `v`, returning the previous value.
                pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                    yield_here();
                    self.0.swap(v, o)
                }

                /// Adds `v`, returning the previous value.
                pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                    yield_here();
                    self.0.fetch_add(v, o)
                }

                /// Subtracts `v`, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, o: Ordering) -> $prim {
                    yield_here();
                    self.0.fetch_sub(v, o)
                }

                /// Stores `new` if the value equals `current`.
                ///
                /// # Errors
                ///
                /// Returns the actual value when it was not `current`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_here();
                    self.0.compare_exchange(current, new, ok, err)
                }
            }
        };
    }

    int_atomic!(
        /// Model-checked `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    int_atomic!(
        /// Model-checked `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    int_atomic!(
        /// Model-checked `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Model-checked `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Wraps an initial value.
        pub fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Reads the flag (a decision point).
        pub fn load(&self, o: Ordering) -> bool {
            yield_here();
            self.0.load(o)
        }

        /// Writes the flag (a decision point).
        pub fn store(&self, v: bool, o: Ordering) {
            yield_here();
            self.0.store(v, o);
        }

        /// Swaps in `v`, returning the previous flag.
        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            yield_here();
            self.0.swap(v, o)
        }
    }
}

/// Result alias matching `std::sync::Mutex::lock`; the model never
/// poisons, so every lock returns `Ok`.
pub type LockResult<T> = std::sync::LockResult<T>;

/// A mutex whose blocking is visible to the model scheduler.
///
/// Must be created inside [`crate::model`] — construction registers the
/// mutex with the current execution's scheduler.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`; registers with the current model execution.
    pub fn new(value: T) -> Self {
        let (sched, _) = Scheduler::current();
        Mutex {
            id: sched.register_mutex(),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking through the scheduler.
    ///
    /// # Errors
    ///
    /// Never errs; the signature matches `std` so call sites port
    /// unchanged (`.lock().expect(..)` and friends).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (sched, me) = Scheduler::current();
        sched.yield_point(me);
        sched.acquire_mutex(self.id, me);
        let inner = self
            .data
            .try_lock()
            .expect("loom: scheduler granted a held mutex");
        Ok(MutexGuard {
            mutex: self,
            inner: Some(inner),
        })
    }
}

/// RAII guard for [`Mutex`]; releasing is scheduler-visible.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Drops the data lock without the scheduler-level release — used by
    /// [`Condvar::wait`], which hands the release to the scheduler
    /// atomically with the wait registration.
    fn release_for_wait(mut self) -> &'a Mutex<T> {
        let mutex = self.mutex;
        self.inner.take();
        mutex
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("loom: guard already released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("loom: guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            // Release even mid-unwind (abort teardown): unlock_mutex only
            // flips scheduler flags and cannot block or panic.
            if let Some((sched, _)) = Scheduler::try_current() {
                sched.unlock_mutex(self.mutex.id);
            }
        }
    }
}

/// A condition variable whose waits and wakeups the scheduler tracks —
/// a wait no notify ever reaches is reported as a deadlock instead of
/// hanging the test.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Registers a condvar with the current model execution.
    pub fn new() -> Self {
        let (sched, _) = Scheduler::current();
        Condvar {
            id: sched.register_condvar(),
        }
    }

    /// Atomically releases `guard`'s mutex and waits to be notified,
    /// then reacquires the mutex. No spurious wakeups are modeled.
    ///
    /// # Errors
    ///
    /// Never errs; signature matches `std`.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (sched, me) = Scheduler::current();
        let mutex = guard.release_for_wait();
        sched.cond_wait(self.id, mutex.id, me);
        sched.acquire_mutex(mutex.id, me);
        let inner = mutex
            .data
            .try_lock()
            .expect("loom: scheduler granted a held mutex");
        Ok(MutexGuard {
            mutex,
            inner: Some(inner),
        })
    }

    /// Wakes one waiter (FIFO — deterministic); no-op with none waiting.
    pub fn notify_one(&self) {
        let (sched, me) = Scheduler::current();
        sched.yield_point(me);
        sched.notify(self.id, false);
    }

    /// Wakes every current waiter; no-op with none waiting.
    pub fn notify_all(&self) {
        let (sched, me) = Scheduler::current();
        sched.yield_point(me);
        sched.notify(self.id, true);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
