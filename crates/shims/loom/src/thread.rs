//! Simulated threads: each is a real OS thread, but only runs when the
//! model scheduler grants it, and finishing/joining are scheduler events.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::sched::{self, Scheduler};

/// Result slot shared between a simulated thread and its join handle.
type ResultSlot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// Handle to a simulated thread, joinable through the scheduler.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    real: Option<std::thread::JoinHandle<()>>,
    result: ResultSlot<T>,
}

impl<T> JoinHandle<T> {
    /// Blocks (scheduler-visibly) until the thread finishes.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload, like `std`. Under an aborted
    /// execution the joiner itself unwinds instead of returning.
    ///
    /// # Panics
    ///
    /// Panics if the finished thread left no result (a model bug).
    pub fn join(mut self) -> std::thread::Result<T> {
        let (sched, me) = Scheduler::current();
        sched.join_thread(self.tid, me);
        if let Some(real) = self.real.take() {
            // The scheduler already saw the thread finish; the OS thread
            // is at its tail and exits immediately.
            let _ = real.join();
        }
        self.result
            .lock()
            .expect("loom result slot poisoned")
            .take()
            .expect("loom: joined thread left no result")
    }
}

/// Spawns a simulated thread running `f`. The spawn itself is a decision
/// point, so the child may be scheduled before or after the parent
/// continues — both orders are explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = Scheduler::current();
    let tid = sched.register_thread();
    let result: ResultSlot<T> = Arc::new(StdMutex::new(None));
    let (s2, r2) = (Arc::clone(&sched), Arc::clone(&result));
    let real = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            sched::set_current(&s2, tid);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                s2.wait_first_grant(tid);
                f()
            }));
            match outcome {
                Ok(v) => {
                    *r2.lock().expect("loom result slot poisoned") = Some(Ok(v));
                }
                Err(payload) => {
                    let aborted = payload.is::<crate::sched::AbortUnwind>();
                    *r2.lock().expect("loom result slot poisoned") = Some(Err(Box::new(
                        "loom simulated thread unwound; failure re-raised from loom::model",
                    )));
                    if !aborted {
                        s2.record_panic(payload);
                    }
                }
            }
            s2.finish(tid);
        })
        .expect("failed to spawn loom thread");
    sched.yield_point(me);
    JoinHandle {
        tid,
        real: Some(real),
        result,
    }
}

/// A voluntary decision point: lets the scheduler run another thread.
pub fn yield_now() {
    let (sched, me) = Scheduler::current();
    sched.yield_point(me);
}
