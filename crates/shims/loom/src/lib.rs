//! A self-contained stand-in for the `loom` model checker.
//!
//! The build environment has no crates.io access, so the real loom crate
//! is unavailable; this facade reimplements the slice of its API that the
//! engine's `#[cfg(loom)]` pool-protocol models need — [`model`],
//! [`thread::spawn`]/[`thread::JoinHandle`], and [`sync`]'s `Mutex`,
//! `Condvar`, and atomics — on top of a deterministic cooperative
//! scheduler.
//!
//! # How it explores interleavings
//!
//! Each simulated thread is a real OS thread, but exactly one is ever
//! *granted* execution at a time. Every synchronization operation (mutex
//! acquire, condvar wait/notify, atomic access, spawn, join) is a
//! *decision point*: the scheduler picks which runnable thread proceeds.
//! [`model`] runs the closure to completion, records the choice made at
//! each decision point together with the alternatives that were runnable,
//! then backtracks depth-first: the deepest decision with an untried
//! alternative seeds the next execution, whose prefix replays
//! deterministically up to that point. Exploration is exhaustive up to a
//! *preemption bound* (switching away from a thread that could have kept
//! running counts as one preemption; forced switches, where the current
//! thread blocked, are free) — the classic result being that almost all
//! real concurrency bugs manifest within two or three preemptions.
//!
//! Blocking is scheduler-visible, so a state where no thread is runnable
//! but some are blocked is reported as a deadlock — which is exactly what
//! a lost wakeup looks like under exhaustive scheduling: some
//! interleaving parks a thread that nobody ever unparks. A panic in any
//! simulated thread (a failed assertion in the model body) aborts the
//! execution and is re-raised from [`model`] on the caller.
//!
//! # Scope
//!
//! No weak-memory modeling: atomics here are sequentially consistent
//! regardless of the `Ordering` argument. The pool's protocols hand off
//! through mutexes and condvars (and its atomics are flags read in loops),
//! so the interesting bugs — the historical sleeper-registration and
//! stale-token races — are scheduling bugs, which this scheduler covers.
//! Critical sections execute atomically between decision points; all
//! orderings of critical sections over the same locks are still explored,
//! because each acquire is a decision point.

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, Builder};

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    use crate::sync::{Condvar, Mutex};

    /// The message a model failure panics with, for assertions below.
    fn failure_message(f: impl Fn() + Send + Sync + 'static) -> String {
        let caught = catch_unwind(AssertUnwindSafe(|| crate::model(f)));
        let payload = caught.expect_err("model should have failed");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }

    #[test]
    fn explores_both_writer_orders() {
        // Two racing writers: across the exploration, both final values
        // must be observed — proof that schedules actually differ.
        let seen = StdArc::new(StdMutex::new(BTreeSet::new()));
        let seen2 = StdArc::clone(&seen);
        crate::model(move || {
            let cell = std::sync::Arc::new(Mutex::new(0u32));
            let c2 = std::sync::Arc::clone(&cell);
            let t = crate::thread::spawn(move || {
                *c2.lock().expect("model mutex") = 1;
            });
            *cell.lock().expect("model mutex") = 2;
            t.join().expect("writer thread");
            let last = *cell.lock().expect("model mutex");
            seen2.lock().expect("recorder").insert(last);
        });
        let seen = seen.lock().expect("recorder").clone();
        assert_eq!(seen, BTreeSet::from([1, 2]));
    }

    #[test]
    fn finds_lost_update_interleaving() {
        // A read-modify-write split across two lock acquisitions is the
        // textbook lost update; some schedule must end at 1, some at 2.
        let seen = StdArc::new(StdMutex::new(BTreeSet::new()));
        let seen2 = StdArc::clone(&seen);
        crate::model(move || {
            let cell = std::sync::Arc::new(Mutex::new(0u32));
            let c2 = std::sync::Arc::clone(&cell);
            let bump = |c: &Mutex<u32>| {
                let v = *c.lock().expect("model mutex");
                *c.lock().expect("model mutex") = v + 1;
            };
            let t = crate::thread::spawn(move || bump(&c2));
            bump(&cell);
            t.join().expect("bump thread");
            let last = *cell.lock().expect("model mutex");
            seen2.lock().expect("recorder").insert(last);
        });
        let seen = seen.lock().expect("recorder").clone();
        assert_eq!(seen, BTreeSet::from([1, 2]));
    }

    #[test]
    fn detects_plain_deadlock() {
        // A waiter nobody notifies: the very first execution blocks every
        // live thread and must be reported, not hung on.
        let msg = failure_message(|| {
            let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = std::sync::Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (lock, cvar) = &*p2;
                let mut ready = lock.lock().expect("model mutex");
                while !*ready {
                    ready = cvar.wait(ready).expect("model condvar");
                }
            });
            t.join().expect("waiter thread");
        });
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn finds_lost_wakeup_without_a_token() {
        // Park/unpark with a bare condvar and no token: the schedule
        // where the notify lands before the wait loses the wakeup. The
        // model must find that interleaving among the others.
        let msg = failure_message(|| {
            let pair = std::sync::Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = std::sync::Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (lock, cvar) = &*p2;
                let guard = lock.lock().expect("model mutex");
                // BUG under test: waits unconditionally, no token check.
                drop(cvar.wait(guard).expect("model condvar"));
            });
            pair.1.notify_one();
            t.join().expect("parked thread");
        });
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn token_protocol_has_no_lost_wakeup() {
        // The pool Parker's actual protocol — token under the mutex —
        // must complete under *every* schedule.
        crate::model(|| {
            let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = std::sync::Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (lock, cvar) = &*p2;
                let mut token = lock.lock().expect("model mutex");
                while !*token {
                    token = cvar.wait(token).expect("model condvar");
                }
                *token = false;
            });
            let (lock, cvar) = &*pair;
            *lock.lock().expect("model mutex") = true;
            cvar.notify_one();
            t.join().expect("parked thread");
        });
    }

    #[test]
    fn assertion_failures_surface_with_their_message() {
        let msg = failure_message(|| {
            let flag = Mutex::new(3u32);
            assert_eq!(*flag.lock().expect("model mutex"), 4, "flag mismatch");
        });
        assert!(msg.contains("flag mismatch"), "unexpected failure: {msg}");
    }
}
