//! The deterministic cooperative scheduler behind [`crate::model`].

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Preemptions allowed per execution when [`Builder::preemption_bound`]
/// is `None`. Three covers every historically-observed pool race with
/// headroom; raising it grows the schedule tree combinatorially.
const DEFAULT_PREEMPTION_BOUND: usize = 3;

/// Hard cap on decision points in one execution — a model body that
/// schedules this often is looping, not terminating.
const MAX_BRANCHES: usize = 20_000;

/// Default cap on explored executions before [`Builder::check`] gives up.
const DEFAULT_MAX_ITERATIONS: usize = 500_000;

/// Sentinel unwind payload used to tear simulated threads down when an
/// execution aborts (deadlock found, a panic elsewhere, limits hit).
/// Wrappers swallow it; only the genuine failure reaches the caller.
pub(crate) struct AbortUnwind;

/// Scheduler-visible state of one simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Eligible to be granted execution.
    Runnable,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(usize),
    /// Waiting on the condvar with this id.
    BlockedCond(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Returned (or unwound); never runnable again.
    Finished,
}

/// One recorded decision point: the runnable threads in exploration
/// order, which was chosen, and what the choice cost in preemptions.
struct Branch {
    /// Candidate threads, exploration order: the zero-cost default first.
    order: Vec<usize>,
    /// Index into `order` of the thread actually granted.
    chosen_pos: usize,
    /// Thread that was executing when the decision arose.
    cur: usize,
    /// Whether `cur` could have kept running (a switch is a preemption).
    cur_runnable: bool,
}

impl Branch {
    /// Preemption cost of granting `t` at this decision point.
    fn cost(&self, t: usize) -> usize {
        usize::from(self.cur_runnable && t != self.cur)
    }
}

/// All scheduler state, under one lock: thread statuses, the mutex and
/// condvar tables, and the exploration bookkeeping for this execution.
pub(crate) struct State {
    threads: Vec<Status>,
    /// Thread currently granted execution.
    active: usize,
    /// Forced choices for the replayed prefix of this execution.
    replay: Vec<usize>,
    branches: Vec<Branch>,
    /// Per-mutex held flag.
    mutexes: Vec<bool>,
    /// Per-condvar wait queue: `(thread, mutex to reacquire)`, FIFO.
    cond_waiters: Vec<Vec<(usize, usize)>>,
    /// When set, every thread unwinds via [`AbortUnwind`].
    abort: bool,
    /// All threads finished; the driver may inspect the outcome.
    done: bool,
    /// Model-level failure (deadlock, divergence, limits).
    failure: Option<String>,
    /// First user panic, re-raised from [`model`].
    panic_payload: Option<Box<dyn Any + Send>>,
    preemption_bound: usize,
}

/// The scheduler: shared by every simulated thread of one execution.
pub(crate) struct Scheduler {
    inner: StdMutex<State>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Binds this OS thread to `sched` as simulated thread `tid`.
pub(crate) fn set_current(sched: &Arc<Scheduler>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(sched), tid)));
}

impl Scheduler {
    fn new(replay: Vec<usize>, preemption_bound: usize) -> Self {
        Scheduler {
            inner: StdMutex::new(State {
                threads: Vec::new(),
                active: 0,
                replay,
                branches: Vec::new(),
                mutexes: Vec::new(),
                cond_waiters: Vec::new(),
                abort: false,
                done: false,
                failure: None,
                panic_payload: None,
                preemption_bound,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// The scheduler and simulated-thread id bound to this OS thread.
    ///
    /// # Panics
    ///
    /// Panics when called outside a [`model`] execution — every facade
    /// primitive requires the scheduler.
    pub(crate) fn current() -> (Arc<Scheduler>, usize) {
        Self::try_current().expect("loom primitive used outside loom::model")
    }

    /// Like [`Scheduler::current`] but `None` outside a model run; used
    /// from `Drop` impls where panicking would double-panic.
    pub(crate) fn try_current() -> Option<(Arc<Scheduler>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        self.inner.lock().expect("loom scheduler poisoned")
    }

    /// Registers a new simulated thread; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Status::Runnable);
        st.threads.len() - 1
    }

    /// Registers a new mutex; returns its id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(false);
        st.mutexes.len() - 1
    }

    /// Registers a new condvar; returns its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.cond_waiters.push(Vec::new());
        st.cond_waiters.len() - 1
    }

    /// The decision point: picks the next thread to grant. Replays the
    /// forced prefix, otherwise defaults to the cheapest choice (keep
    /// `cur` running when it can). Detects deadlock and completion.
    fn choose(&self, st: &mut State, cur: usize, cur_runnable: bool) {
        if st.abort {
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|&t| t == Status::Finished) {
                st.done = true;
            } else {
                st.failure = Some(format!(
                    "deadlock: every live thread is blocked — {:?}",
                    st.threads
                ));
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        if st.branches.len() >= MAX_BRANCHES {
            st.failure = Some(format!(
                "execution exceeded {MAX_BRANCHES} decision points; the model body must terminate"
            ));
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        let default = if cur_runnable && runnable.contains(&cur) {
            cur
        } else {
            runnable[0]
        };
        let mut order = vec![default];
        order.extend(runnable.iter().copied().filter(|&t| t != default));
        let k = st.branches.len();
        let chosen = if k < st.replay.len() {
            st.replay[k]
        } else {
            default
        };
        let Some(chosen_pos) = order.iter().position(|&t| t == chosen) else {
            st.failure = Some(
                "schedule replay diverged: the model body is not deterministic \
                 (no clocks, randomness, or real-thread timing inside loom::model)"
                    .to_string(),
            );
            st.abort = true;
            self.cv.notify_all();
            return;
        };
        st.branches.push(Branch {
            order,
            chosen_pos,
            cur,
            cur_runnable,
        });
        if k >= st.replay.len() {
            st.replay.push(chosen);
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Parks the calling OS thread until simulated thread `me` is granted
    /// execution again. Unwinds via [`AbortUnwind`] on abort.
    fn wait_granted(&self, mut st: StdMutexGuard<'_, State>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                panic_any(AbortUnwind);
            }
            if st.active == me && st.threads[me] == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).expect("loom scheduler poisoned");
        }
    }

    /// A voluntary decision point: `me` stays runnable but another thread
    /// may be granted here.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_any(AbortUnwind);
        }
        self.choose(&mut st, me, true);
        self.wait_granted(st, me);
    }

    /// Blocks `me` with `status` and grants someone else; returns once
    /// `me` has been made runnable *and* granted again.
    fn block_on(&self, mut st: StdMutexGuard<'_, State>, me: usize, status: Status) {
        st.threads[me] = status;
        self.choose(&mut st, me, false);
        self.wait_granted(st, me);
    }

    /// Acquires the shim mutex `mid`, blocking through the scheduler.
    /// The caller must already be at a decision point (or freshly
    /// granted), so no extra yield happens here.
    pub(crate) fn acquire_mutex(&self, mid: usize, me: usize) {
        loop {
            let mut st = self.lock();
            if st.abort {
                drop(st);
                panic_any(AbortUnwind);
            }
            if !st.mutexes[mid] {
                st.mutexes[mid] = true;
                return;
            }
            self.block_on(st, me, Status::BlockedMutex(mid));
        }
    }

    /// Releases the shim mutex `mid` and makes its waiters runnable. Not
    /// a decision point: the next acquire/wait/atomic op yields, and that
    /// is enough granularity to explore all critical-section orders.
    pub(crate) fn unlock_mutex(&self, mid: usize) {
        let mut st = self.lock();
        st.mutexes[mid] = false;
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedMutex(mid) {
                st.threads[t] = Status::Runnable;
            }
        }
    }

    /// Atomically registers `me` on condvar `cid`, releases mutex `mid`,
    /// and blocks until notified (and granted). The caller reacquires the
    /// mutex afterwards, exactly like a real condvar.
    pub(crate) fn cond_wait(&self, cid: usize, mid: usize, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_any(AbortUnwind);
        }
        st.cond_waiters[cid].push((me, mid));
        st.mutexes[mid] = false;
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedMutex(mid) {
                st.threads[t] = Status::Runnable;
            }
        }
        self.block_on(st, me, Status::BlockedCond(cid));
    }

    /// Wakes the first (or, with `all`, every) waiter of condvar `cid`.
    /// Waking with no waiters is a no-op — the semantics whose misuse is
    /// exactly a lost wakeup.
    pub(crate) fn notify(&self, cid: usize, all: bool) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_any(AbortUnwind);
        }
        let woken: Vec<usize> = if all {
            st.cond_waiters[cid].drain(..).map(|(t, _)| t).collect()
        } else if st.cond_waiters[cid].is_empty() {
            Vec::new()
        } else {
            vec![st.cond_waiters[cid].remove(0).0]
        };
        for t in woken {
            st.threads[t] = Status::Runnable;
        }
    }

    /// `true` once thread `tid` has finished; blocks `me` until then.
    pub(crate) fn join_thread(&self, tid: usize, me: usize) {
        loop {
            let st = self.lock();
            if st.abort {
                drop(st);
                panic_any(AbortUnwind);
            }
            if st.threads[tid] == Status::Finished {
                return;
            }
            self.block_on(st, me, Status::BlockedJoin(tid));
        }
    }

    /// Marks `me` finished, wakes its joiners, and grants the next
    /// thread (or completes the execution).
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = Status::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedJoin(me) {
                st.threads[t] = Status::Runnable;
            }
        }
        if st.abort {
            if st.threads.iter().all(|&t| t == Status::Finished) {
                st.done = true;
            }
            self.cv.notify_all();
        } else {
            self.choose(&mut st, me, false);
        }
    }

    /// Waits for the new simulated thread's first grant.
    pub(crate) fn wait_first_grant(&self, me: usize) {
        let st = self.lock();
        self.wait_granted(st, me);
    }

    /// Records the first user panic and aborts the execution.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.lock();
        if st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.abort = true;
        self.cv.notify_all();
    }
}

/// Given a completed execution, computes the replay prefix of the next
/// one: the deepest decision point with an untried alternative whose
/// preemption cost stays within the bound. `None` when the (bounded)
/// schedule tree is exhausted.
fn next_replay(st: &State) -> Option<Vec<usize>> {
    let chosens: Vec<usize> = st.branches.iter().map(|b| b.order[b.chosen_pos]).collect();
    // Cumulative preemptions spent *before* each decision point.
    let mut spent = Vec::with_capacity(st.branches.len());
    let mut acc = 0;
    for (k, b) in st.branches.iter().enumerate() {
        spent.push(acc);
        acc += b.cost(chosens[k]);
    }
    for k in (0..st.branches.len()).rev() {
        let b = &st.branches[k];
        for pos in b.chosen_pos + 1..b.order.len() {
            let alt = b.order[pos];
            if spent[k] + b.cost(alt) <= st.preemption_bound {
                let mut replay = chosens[..k].to_vec();
                replay.push(alt);
                return Some(replay);
            }
        }
    }
    None
}

/// Configures and runs an exploration; [`model`] uses the defaults.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max context switches away from a still-runnable thread per
    /// execution; `None` means the default bound (3).
    pub preemption_bound: Option<usize>,
    /// Max executions before the exploration panics as too large.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with the default preemption bound and iteration cap.
    pub fn new() -> Self {
        Builder {
            preemption_bound: None,
            max_iterations: DEFAULT_MAX_ITERATIONS,
        }
    }

    /// Explores `f` under every schedule within the preemption bound.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from any simulated thread of the
    /// failing execution; panics with a `deadlock:` message when some
    /// schedule blocks every live thread; panics if the exploration
    /// exceeds `max_iterations`.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let bound = self.preemption_bound.unwrap_or(DEFAULT_PREEMPTION_BOUND);
        let mut replay: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exploration exceeded {} executions; lower the preemption bound \
                 or shrink the model",
                self.max_iterations
            );
            let sched = Arc::new(Scheduler::new(replay.clone(), bound));
            let tid0 = sched.register_thread();
            debug_assert_eq!(tid0, 0, "thread 0 registers first");
            let (s2, f2) = (Arc::clone(&sched), Arc::clone(&f));
            let root = std::thread::Builder::new()
                .name("loom-0".into())
                .spawn(move || {
                    set_current(&s2, 0);
                    let outcome = catch_unwind(AssertUnwindSafe(|| f2()));
                    if let Err(payload) = outcome {
                        if !payload.is::<AbortUnwind>() {
                            s2.record_panic(payload);
                        }
                    }
                    s2.finish(0);
                })
                .expect("failed to spawn loom root thread");
            {
                let mut st = sched.lock();
                while !st.done {
                    st = sched.cv.wait(st).expect("loom scheduler poisoned");
                }
            }
            let _ = root.join();
            let mut st = sched.lock();
            if let Some(payload) = st.panic_payload.take() {
                drop(st);
                resume_unwind(payload);
            }
            if let Some(msg) = st.failure.take() {
                panic!("loom: {msg} (execution {iterations})");
            }
            match next_replay(&st) {
                Some(r) => replay = r,
                None => return,
            }
        }
    }
}

/// Explores every interleaving of `f` (bounded as documented on
/// [`Builder`]) and panics on the first failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
