//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible subset of `rand` 0.9: a deterministic
//! [`rngs::StdRng`] (xoshiro256**), [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension trait with `random`/`random_range`/`random_bool`.
//! All generators in the workspace are seeded, so determinism is a feature:
//! every test run sees the same stream.

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Deterministic for a given seed, which is exactly what the seeded test
    /// suites and experiment harness need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random from an RNG.
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types over which uniform ranges can be sampled.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; `hi > lo` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; `hi >= lo` must hold. Unlike the
    /// half-open form this admits the full type range (`0..=u64::MAX`).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                sample_span(rng, lo as i128, (hi as i128 - lo as i128) as u128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                sample_span(rng, lo as i128, (hi as i128 - lo as i128) as u128 + 1) as $t
            }
        }
    )*};
}

/// Uniform draw from `[lo, lo + span)` with `1 <= span <= 2^64` (so every
/// inclusive range of a type up to 64 bits wide is expressible).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: i128, span: u128) -> i128 {
    // Multiply-shift bounded draw; spans are far below 2^64 in practice so
    // the bias is negligible for test workloads. At span == 2^64 exactly
    // this degenerates to the identity on the raw 64-bit draw.
    let draw = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
    lo + draw
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform element of the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Extension methods every [`RngCore`] gets for free.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a uniform element of `range` (half-open or inclusive).
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1i32..=2);
            assert!((1..=2).contains(&y));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_admits_type_max() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = rng.random_range(0u8..=u8::MAX);
        let _ = x; // any u8 is in range by construction
        let y = rng.random_range(u64::MAX - 1..=u64::MAX);
        assert!(y >= u64::MAX - 1);
        let z = rng.random_range(i32::MIN..=i32::MAX);
        let _ = z;
        assert_eq!(rng.random_range(5usize..=5), 5);
    }

    #[test]
    fn stream_is_pinned_across_platforms_and_refactors() {
        // The exact first-16 draws of a fixed seed, hardcoded. Every
        // engine corpus, generator, and proptest case in the workspace is
        // derived from this stream, so a silent change to the seeding or
        // the xoshiro256** step would quietly reshape every "reproducible"
        // experiment. If this test fails, the RNG changed: either revert
        // the change or treat it as a breaking re-baseline of all seeded
        // corpora.
        let mut rng = StdRng::seed_from_u64(0x5eed_1ab5_c0ff_ee00);
        let draws: Vec<u64> = (0..16).map(|_| rng.random::<u64>()).collect();
        assert_eq!(
            draws,
            vec![
                0x81b9_5aa3_8aee_c909,
                0x89dd_c269_b949_6fb3,
                0xd2ea_9c1c_a2a5_acbe,
                0xe582_b9e0_cbfb_4523,
                0x83d0_b66b_44cf_f4e2,
                0x9e40_a169_c6bd_9c09,
                0x8728_f9d4_6528_3f14,
                0x2b5d_986d_e287_4231,
                0x464e_9607_2d95_ffff,
                0x28d7_5383_788a_38ae,
                0x5381_dcc2_f495_3f88,
                0xb003_a4e6_e4df_dac2,
                0x8495_63ef_52f3_f854,
                0x3506_c13f_313e_086c,
                0x4398_844b_f23a_0582,
                0x600d_332d_17bc_00ee,
            ]
        );
        // The derived draws corpora actually consume (ranges, floats) are
        // pure functions of the raw stream; pin one of each so the
        // derivation rules are covered too.
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.random_range(0..1000u64), 83);
        assert_eq!(rng.random::<f64>(), 0.3789802506626686);
        assert!(rng.random_bool(0.9));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
