//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate supplies
//! the subset of the proptest API the workspace's `tests/property_based.rs`
//! uses: [`Strategy`] with `prop_map`, [`any`], range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro with `#![proptest_config]`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a seed derived deterministically from the test name (so
//! CI is reproducible), and there is no shrinking — a failing case panics
//! immediately with the case index, which is enough to re-run it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Test-runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value, occasionally biased toward edge cases.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Bias 1-in-8 draws toward the classic integer edge cases.
                match rng.random_range(0..8u32) {
                    0 => [0 as $t, 1, <$t>::MAX][rng.random_range(0..3usize)],
                    _ => rng.random::<u64>() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<bool>()
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let SizeRange { lo, hi } = size.into();
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.lo..self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Half-open length range for collection strategies.
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Runs `test` against `config.cases` generated values of `strategy`.
///
/// Used by the [`proptest!`] macro expansion; not part of the public
/// proptest API surface.
pub fn run_proptest<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value),
) {
    // FNV-1a over the test name: a stable per-test seed without hashing
    // machinery from std (RandomState is randomized per process).
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(case) << 32));
        let value = strategy.generate(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: '{name}' failed on case {case} of {} \
                 (rng seed {:#018x}); re-run with ProptestConfig cases > {case} \
                 to reproduce",
                config.cases,
                seed ^ (u64::from(case) << 32),
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strat,)+);
            $crate::run_proptest(&__config, stringify!($name), &__strategy, |($($arg,)+)| {
                $body
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(n in 3usize..=9, flag in any::<bool>()) {
            prop_assert!((3..=9).contains(&n));
            let _ = flag;
        }

        #[test]
        fn mapped_strategy((a, b) in (0usize..5, 0usize..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn vec_lengths(xs in crate::collection::vec(any::<u64>(), 0..20)) {
            prop_assert!(xs.len() < 20);
        }
    }
}
