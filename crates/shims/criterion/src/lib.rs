//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion 0.5 API the workspace benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!`, `criterion_main!`, [`black_box`]) with a simple
//! wall-clock measurement loop: warm up briefly, then time batches until a
//! fixed measurement budget elapses and report the mean per-iteration time.

use std::fmt::Display;
use std::hint;
use std::time::Duration;

use lanecert_obs::Clock;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("family", 64)` → `family/64`.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(64)` → `64`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to the closure of `bench_*` calls.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Filled in by [`Bencher::iter`]: (total iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    /// Timing goes through [`lanecert_obs::Clock`] — the workspace's
    /// blessed monotonic source — rather than reading `Instant` here.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let clock = Clock::monotonic();
        let warm_up = self.warm_up.as_nanos() as u64;
        let measure = self.measure.as_nanos() as u64;
        // Warm-up: run until the warm-up budget elapses, measuring nothing.
        let start = clock.now_ns();
        let mut warm_iters: u64 = 0;
        while clock.now_ns().saturating_sub(start) < warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size so each batch is ~1ms, then measure batches
        // until the measurement budget elapses.
        let warm_ns = clock.now_ns().saturating_sub(start).max(1);
        let per_iter = warm_ns / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20);
        let mut iters: u64 = 0;
        let measured = clock.now_ns();
        let mut elapsed = 0u64;
        while elapsed < measure {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            elapsed = clock.now_ns().saturating_sub(measured);
        }
        self.result = Some((iters, Duration::from_nanos(elapsed)));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, elapsed)) => {
                let mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!(
                    "{}/{:<40} time: {:>12} ({} iterations)",
                    self.name,
                    id,
                    format_ns(mean_ns),
                    iters
                );
            }
            None => println!(
                "{}/{:<40} (no measurement: Bencher::iter never called)",
                self.name, id
            ),
        }
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --help`-style filter flags are accepted and
            // ignored; the shim always runs every registered benchmark.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fam", 64).to_string(), "fam/64");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("t");
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
