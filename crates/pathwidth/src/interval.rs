//! Interval representations (Definition 4.1 of the paper).

use std::error::Error;
use std::fmt;

use lanecert_graph::{Graph, VertexId};

use crate::PathDecomposition;

/// A closed integer interval `[lo, hi]`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Interval {
    /// Left endpoint `L_v`.
    pub lo: u32,
    /// Right endpoint `R_v` (inclusive, `hi ≥ lo`).
    pub hi: u32,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(hi >= lo, "empty interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Returns `true` if the intervals share a point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if `self` ends strictly before `other` begins
    /// (the `≺` order of Section 4.1).
    pub fn strictly_before(&self, other: &Interval) -> bool {
        self.hi < other.lo
    }

    /// Returns `true` if the interval contains the point `x`.
    pub fn contains(&self, x: u32) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// The smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Reasons an interval assignment fails to represent a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntervalRepError {
    /// The representation covers a different number of vertices than the
    /// graph has.
    WrongVertexCount {
        /// Number of intervals provided.
        got: usize,
        /// Number of vertices in the graph.
        expected: usize,
    },
    /// An edge's endpoints have disjoint intervals.
    DisjointEdge(VertexId, VertexId),
}

impl fmt::Display for IntervalRepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalRepError::WrongVertexCount { got, expected } => {
                write!(
                    f,
                    "representation has {got} intervals, graph has {expected} vertices"
                )
            }
            IntervalRepError::DisjointEdge(u, v) => {
                write!(f, "edge ({u}, {v}) has disjoint intervals")
            }
        }
    }
}

impl Error for IntervalRepError {}

/// An interval representation: one interval per vertex such that adjacent
/// vertices overlap. The *width* is the maximum number of intervals sharing
/// a point; a graph has pathwidth `k` iff it admits a representation of
/// width `k + 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalRep {
    intervals: Vec<Interval>,
}

impl IntervalRep {
    /// Wraps per-vertex intervals (index `i` is the interval of vertex `i`).
    pub fn new(intervals: Vec<Interval>) -> Self {
        Self { intervals }
    }

    /// The interval of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn interval(&self, v: VertexId) -> Interval {
        self.intervals[v.index()]
    }

    /// All intervals, indexed by vertex.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` if the representation is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The width: the maximum number of intervals containing a common point
    /// (0 for an empty representation). Computed by a sweep over interval
    /// endpoints.
    pub fn width(&self) -> usize {
        let mut events: Vec<(u32, i32)> = Vec::with_capacity(self.intervals.len() * 2);
        for iv in &self.intervals {
            events.push((iv.lo, 1));
            events.push((iv.hi + 1, -1));
        }
        events.sort_unstable();
        let mut cur = 0i32;
        let mut best = 0i32;
        for (_, d) in events {
            cur += d;
            best = best.max(cur);
        }
        best as usize
    }

    /// Checks that adjacent vertices overlap (Definition 4.1).
    ///
    /// # Errors
    ///
    /// Returns the first uncovered edge or a vertex-count mismatch.
    pub fn validate(&self, g: &Graph) -> Result<(), IntervalRepError> {
        if self.intervals.len() != g.vertex_count() {
            return Err(IntervalRepError::WrongVertexCount {
                got: self.intervals.len(),
                expected: g.vertex_count(),
            });
        }
        for (_, e) in g.edges() {
            if !self.interval(e.u).overlaps(&self.interval(e.v)) {
                return Err(IntervalRepError::DisjointEdge(e.u, e.v));
            }
        }
        Ok(())
    }

    /// Converts a path decomposition into its interval view: `I_v` is the
    /// (contiguous, by (P2)) range of bag indices containing `v`.
    ///
    /// # Panics
    ///
    /// Panics if some vertex of the decomposition never appears (callers
    /// should validate the decomposition first).
    pub fn from_decomposition(pd: &PathDecomposition, n: usize) -> Self {
        let mut lo = vec![u32::MAX; n];
        let mut hi = vec![0u32; n];
        for (i, bag) in pd.bags().iter().enumerate() {
            for &v in bag {
                let vi = v.index();
                lo[vi] = lo[vi].min(i as u32);
                hi[vi] = hi[vi].max(i as u32);
            }
        }
        let intervals = (0..n)
            .map(|v| {
                assert!(lo[v] != u32::MAX, "vertex v{v} missing from decomposition");
                Interval::new(lo[v], hi[v])
            })
            .collect();
        Self { intervals }
    }

    /// Converts back to a path decomposition: bag `i` holds the vertices
    /// whose interval contains `i`. Points range over
    /// `min lo ..= max hi`.
    pub fn to_decomposition(&self) -> PathDecomposition {
        if self.intervals.is_empty() {
            return PathDecomposition::new(Vec::new());
        }
        let lo = self.intervals.iter().map(|iv| iv.lo).min().unwrap();
        let hi = self.intervals.iter().map(|iv| iv.hi).max().unwrap();
        let bags = (lo..=hi)
            .map(|x| {
                self.intervals
                    .iter()
                    .enumerate()
                    .filter(|(_, iv)| iv.contains(x))
                    .map(|(v, _)| VertexId::new(v))
                    .collect()
            })
            .collect();
        PathDecomposition::new(bags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    #[test]
    fn interval_basics() {
        let a = Interval::new(0, 3);
        let b = Interval::new(3, 5);
        let c = Interval::new(4, 6);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.strictly_before(&c));
        assert!(!a.strictly_before(&b));
        assert_eq!(a.hull(&c), Interval::new(0, 6));
        assert!(b.contains(4));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn interval_rejects_inverted() {
        let _ = Interval::new(2, 1);
    }

    #[test]
    fn figure1_roundtrip() {
        // The 6-cycle representation from Figure 1: a spans everything.
        let g = generators::cycle_graph(6);
        let rep = IntervalRep::new(vec![
            Interval::new(0, 3), // a
            Interval::new(0, 0), // b
            Interval::new(0, 1), // c
            Interval::new(1, 2), // d
            Interval::new(2, 3), // e
            Interval::new(3, 3), // f
        ]);
        rep.validate(&g).unwrap();
        assert_eq!(rep.width(), 3); // pathwidth 2
        let pd = rep.to_decomposition();
        pd.validate(&g).unwrap();
        assert_eq!(pd.width(), 2);
        let back = IntervalRep::from_decomposition(&pd, 6);
        assert_eq!(back, rep);
    }

    #[test]
    fn width_of_disjoint_intervals_is_one() {
        let rep = IntervalRep::new(vec![
            Interval::new(0, 1),
            Interval::new(2, 3),
            Interval::new(4, 4),
        ]);
        assert_eq!(rep.width(), 1);
    }

    #[test]
    fn validate_catches_disjoint_edge() {
        let g = generators::path_graph(2);
        let rep = IntervalRep::new(vec![Interval::new(0, 0), Interval::new(2, 2)]);
        assert_eq!(
            rep.validate(&g),
            Err(IntervalRepError::DisjointEdge(VertexId(0), VertexId(1)))
        );
    }

    #[test]
    fn validate_catches_count_mismatch() {
        let g = generators::path_graph(3);
        let rep = IntervalRep::new(vec![Interval::new(0, 0)]);
        assert!(matches!(
            rep.validate(&g),
            Err(IntervalRepError::WrongVertexCount { .. })
        ));
    }

    #[test]
    fn empty_rep() {
        let rep = IntervalRep::new(vec![]);
        assert_eq!(rep.width(), 0);
        assert!(rep.is_empty());
        assert_eq!(rep.to_decomposition().len(), 0);
    }
}
