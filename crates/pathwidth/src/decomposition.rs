//! Path decompositions (Definition 1.1 of the paper).

use std::error::Error;
use std::fmt;

use lanecert_graph::{Graph, VertexId};

/// A path decomposition: a sequence of bags `X_1, …, X_s`.
///
/// Validity ((P1) edge coverage, (P2) convexity, plus "every vertex appears")
/// is checked by [`PathDecomposition::validate`]; construction itself does
/// not validate so that tests can build intentionally broken decompositions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathDecomposition {
    bags: Vec<Vec<VertexId>>,
}

/// Reasons a bag sequence fails to be a path decomposition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathDecompositionError {
    /// A vertex of the graph appears in no bag.
    MissingVertex(VertexId),
    /// A bag mentions a vertex outside the graph.
    ForeignVertex(VertexId),
    /// A vertex's occurrence set is not a contiguous range of bag indices
    /// (violates (P2)).
    NotContiguous(VertexId),
    /// An edge has no bag containing both endpoints (violates (P1)).
    UncoveredEdge(VertexId, VertexId),
    /// A bag repeats a vertex.
    DuplicateInBag(usize, VertexId),
    /// The decomposition has no bags but the graph has vertices.
    Empty,
}

impl fmt::Display for PathDecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PathDecompositionError::*;
        match self {
            MissingVertex(v) => write!(f, "vertex {v} appears in no bag"),
            ForeignVertex(v) => write!(f, "bag mentions unknown vertex {v}"),
            NotContiguous(v) => write!(f, "occurrences of {v} are not contiguous"),
            UncoveredEdge(u, v) => write!(f, "no bag covers edge ({u}, {v})"),
            DuplicateInBag(i, v) => write!(f, "bag {i} repeats vertex {v}"),
            Empty => write!(f, "decomposition has no bags"),
        }
    }
}

impl Error for PathDecompositionError {}

impl PathDecomposition {
    /// Wraps a bag sequence (no validation; see [`Self::validate`]).
    pub fn new(bags: Vec<Vec<VertexId>>) -> Self {
        Self { bags }
    }

    /// The bag sequence.
    pub fn bags(&self) -> &[Vec<VertexId>] {
        &self.bags
    }

    /// Number of bags.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Returns `true` if there are no bags.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// The width: `max |X_i| − 1` (`0` for an empty decomposition).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Checks (P1), (P2), full vertex coverage, and bag well-formedness
    /// against `g`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, g: &Graph) -> Result<(), PathDecompositionError> {
        use PathDecompositionError::*;
        let n = g.vertex_count();
        if self.bags.is_empty() {
            return if n == 0 { Ok(()) } else { Err(Empty) };
        }
        let mut first = vec![usize::MAX; n];
        let mut last = vec![usize::MAX; n];
        let mut count = vec![0usize; n];
        for (i, bag) in self.bags.iter().enumerate() {
            let mut seen_here: Vec<VertexId> = Vec::with_capacity(bag.len());
            for &v in bag {
                if v.index() >= n {
                    return Err(ForeignVertex(v));
                }
                if seen_here.contains(&v) {
                    return Err(DuplicateInBag(i, v));
                }
                seen_here.push(v);
                if first[v.index()] == usize::MAX {
                    first[v.index()] = i;
                }
                last[v.index()] = i;
                count[v.index()] += 1;
            }
        }
        for v in g.vertices() {
            let vi = v.index();
            if first[vi] == usize::MAX {
                return Err(MissingVertex(v));
            }
            // Contiguity: the number of occurrences must equal the span.
            if count[vi] != last[vi] - first[vi] + 1 {
                return Err(NotContiguous(v));
            }
        }
        for (_, e) in g.edges() {
            let (u, v) = (e.u.index(), e.v.index());
            let lo = first[u].max(first[v]);
            let hi = last[u].min(last[v]);
            if lo > hi {
                return Err(UncoveredEdge(e.u, e.v));
            }
        }
        Ok(())
    }

    /// Builds the decomposition induced by an elimination ordering: bag `i`
    /// contains `order[i]` plus every earlier vertex that still has a
    /// neighbour at or after position `i`. The width equals the vertex
    /// separation of the ordering, which is how the exact solver converts an
    /// optimal ordering into an optimal decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the vertices of `g`.
    pub fn from_order(g: &Graph, order: &[VertexId]) -> Self {
        let n = g.vertex_count();
        assert_eq!(order.len(), n, "order must cover every vertex");
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            assert!(pos[v.index()] == usize::MAX, "repeated vertex {v}");
            pos[v.index()] = i;
        }
        // last_needed[v] = latest position among v and its neighbours.
        let mut last_needed = vec![0usize; n];
        for v in g.vertices() {
            let mut latest = pos[v.index()];
            for w in g.neighbors(v) {
                latest = latest.max(pos[w.index()]);
            }
            last_needed[v.index()] = latest;
        }
        let bags = (0..n)
            .map(|i| {
                order[..=i]
                    .iter()
                    .copied()
                    .filter(|v| last_needed[v.index()] >= i)
                    .collect()
            })
            .collect();
        Self { bags }
    }
}

impl fmt::Display for PathDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, bag) in self.bags.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "X{}={{", i + 1)?;
            for (j, v) in bag.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The paper's Figure 1: a 6-cycle a-b-c-d-e-f with bags
    /// {a,b,c}, {a,c,d}, {a,d,e}, {a,e,f}.
    fn figure1() -> (Graph, PathDecomposition) {
        let g = generators::cycle_graph(6);
        let pd = PathDecomposition::new(vec![
            vec![v(0), v(1), v(2)],
            vec![v(0), v(2), v(3)],
            vec![v(0), v(3), v(4)],
            vec![v(0), v(4), v(5)],
        ]);
        (g, pd)
    }

    #[test]
    fn figure1_is_valid_width_two() {
        let (g, pd) = figure1();
        pd.validate(&g).unwrap();
        assert_eq!(pd.width(), 2);
    }

    #[test]
    fn detects_uncovered_edge() {
        let (g, _) = figure1();
        let pd = PathDecomposition::new(vec![
            vec![v(0), v(1), v(2)],
            vec![v(0), v(2), v(3)],
            vec![v(0), v(3), v(4)],
            vec![v(0), v(5)],
        ]);
        assert_eq!(
            pd.validate(&g),
            Err(PathDecompositionError::UncoveredEdge(v(4), v(5)))
        );
    }

    #[test]
    fn detects_noncontiguous_vertex() {
        let g = generators::path_graph(3);
        let pd = PathDecomposition::new(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(0)], // v0 reappears
        ]);
        assert_eq!(
            pd.validate(&g),
            Err(PathDecompositionError::NotContiguous(v(0)))
        );
    }

    #[test]
    fn detects_missing_and_foreign_vertices() {
        let g = generators::path_graph(2);
        let pd = PathDecomposition::new(vec![vec![v(0)]]);
        assert_eq!(
            pd.validate(&g),
            Err(PathDecompositionError::MissingVertex(v(1)))
        );
        let pd = PathDecomposition::new(vec![vec![v(0), v(1), v(9)]]);
        assert_eq!(
            pd.validate(&g),
            Err(PathDecompositionError::ForeignVertex(v(9)))
        );
    }

    #[test]
    fn detects_duplicate_in_bag() {
        let g = generators::path_graph(2);
        let pd = PathDecomposition::new(vec![vec![v(0), v(0), v(1)]]);
        assert!(matches!(
            pd.validate(&g),
            Err(PathDecompositionError::DuplicateInBag(0, _))
        ));
    }

    #[test]
    fn from_order_on_path_has_width_one() {
        let g = generators::path_graph(6);
        let order: Vec<VertexId> = g.vertices().collect();
        let pd = PathDecomposition::from_order(&g, &order);
        pd.validate(&g).unwrap();
        assert_eq!(pd.width(), 1);
    }

    #[test]
    fn from_order_matches_separation_on_star() {
        let g = generators::star(5);
        // Place the hub first: each later bag is {hub, leaf} => width 1.
        let order = vec![v(0), v(1), v(2), v(3), v(4)];
        let pd = PathDecomposition::from_order(&g, &order);
        pd.validate(&g).unwrap();
        assert_eq!(pd.width(), 1);
    }

    #[test]
    fn empty_graph_empty_decomposition() {
        let g = Graph::new(0);
        PathDecomposition::new(vec![]).validate(&g).unwrap();
    }
}
