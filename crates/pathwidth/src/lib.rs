//! Path decompositions, interval representations, and pathwidth solvers.
//!
//! This crate implements Definition 1.1 (path decompositions) and
//! Definition 4.1 (interval representations) of the paper, the conversions
//! between them, and pathwidth computation:
//!
//! * [`PathDecomposition`] — a bag sequence with validation of (P1)/(P2).
//! * [`IntervalRep`] — the per-vertex interval view; a graph has pathwidth
//!   `k` iff it has an interval representation of width `k + 1`.
//! * [`solver`] — an exact exponential solver (vertex-separation DP over
//!   subsets with ordering reconstruction), a brute-force permutation solver
//!   (test oracle), and a beam-search heuristic for larger graphs.
//! * [`bnb`] — a branch-and-bound vertex-separation search with greedy-exact
//!   extension and budgeted prefix memoization, seeded by the heuristic; the
//!   hintless prover's solver between the exact DP and refusal.
//!
//! # Example
//!
//! ```
//! use lanecert_graph::generators;
//! use lanecert_pathwidth::solver;
//!
//! let g = generators::cycle_graph(6);
//! let (pw, pd) = solver::pathwidth_exact(&g).unwrap();
//! assert_eq!(pw, 2);
//! pd.validate(&g).unwrap();
//! ```

pub mod bnb;
mod decomposition;
mod interval;
pub mod solver;

pub use decomposition::{PathDecomposition, PathDecompositionError};
pub use interval::{Interval, IntervalRep};
