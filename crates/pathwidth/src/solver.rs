//! Pathwidth solvers.
//!
//! Pathwidth equals the *vertex separation number*: the minimum over vertex
//! orderings of the maximum boundary size of a prefix (a classical result of
//! Kinnersley). The exact solver runs the Held–Karp-style DP
//!
//! ```text
//! cost(S) = min over v in S of max(cost(S \ {v}), boundary(S))
//! ```
//!
//! over all `2^n` vertex subsets, reconstructs an optimal ordering, and
//! converts it to a path decomposition via
//! [`PathDecomposition::from_order`]. A brute-force permutation solver acts
//! as a test oracle, and a beam-search heuristic covers larger graphs.

use std::error::Error;
use std::fmt;

use lanecert_graph::{degeneracy, Graph, VertexId};

use crate::PathDecomposition;

/// Largest vertex count accepted by [`pathwidth_exact`] (the DP allocates
/// `2^n` bytes).
pub const EXACT_LIMIT: usize = 24;

/// Error returned when a graph is too large for the exact solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TooLarge {
    /// Vertices in the offending graph.
    pub vertices: usize,
}

impl fmt::Display for TooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph has {} vertices; exact pathwidth is limited to {EXACT_LIMIT}",
            self.vertices
        )
    }
}

impl Error for TooLarge {}

/// The boundary size of prefix set `s`: vertices in `s` with a neighbour
/// outside `s`.
fn boundary(adj: &[u64], s: u64) -> u32 {
    let mut count = 0;
    let mut m = s;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        m &= m - 1;
        if adj[v] & !s != 0 {
            count += 1;
        }
    }
    count
}

/// Computes the exact pathwidth and an optimal path decomposition.
///
/// # Errors
///
/// Returns [`TooLarge`] if the graph has more than [`EXACT_LIMIT`] vertices.
pub fn pathwidth_exact(g: &Graph) -> Result<(usize, PathDecomposition), TooLarge> {
    let n = g.vertex_count();
    if n > EXACT_LIMIT {
        return Err(TooLarge { vertices: n });
    }
    if n == 0 {
        return Ok((0, PathDecomposition::new(Vec::new())));
    }
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            let mut m = 0u64;
            for w in g.neighbors(VertexId::new(v)) {
                m |= 1 << w.index();
            }
            m
        })
        .collect();
    let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // cost[S] = optimal max-boundary over orderings of S as a prefix.
    let mut cost = vec![u8::MAX; 1 << n];
    cost[0] = 0;
    for s in 1..=(full as usize) {
        let b = boundary(&adj, s as u64) as u8;
        let mut best = u8::MAX;
        let mut m = s as u64;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let prev = cost[s ^ (1 << v)];
            best = best.min(prev.max(b));
        }
        cost[s] = best;
    }
    let vsn = cost[full as usize] as usize;
    // Reconstruct an optimal ordering by walking back from the full set.
    let mut order = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let b = boundary(&adj, s) as u8;
        let mut m = s;
        let mut chosen = None;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            if cost[(s ^ (1 << v)) as usize].max(b) == cost[s as usize] {
                chosen = Some(v);
                break;
            }
        }
        let v = chosen.expect("DP invariant: some last vertex achieves the optimum");
        order.push(VertexId::new(v));
        s ^= 1 << v;
    }
    order.reverse();
    let pd = PathDecomposition::from_order(g, &order);
    debug_assert_eq!(pd.width(), vsn);
    Ok((vsn, pd))
}

/// Brute-force pathwidth over all vertex permutations — a test oracle for
/// graphs with at most ~8 vertices.
pub fn pathwidth_bruteforce(g: &Graph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            let mut m = 0u64;
            for w in g.neighbors(VertexId::new(v)) {
                m |= 1 << w.index();
            }
            m
        })
        .collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = n;
    permute(&mut perm, 0, &mut |p| {
        let mut s = 0u64;
        let mut worst = 0;
        for &v in p {
            s |= 1 << v;
            worst = worst.max(boundary(&adj, s));
        }
        best = best.min(worst as usize);
    });
    best
}

fn permute(xs: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    if i == xs.len() {
        f(xs);
        return;
    }
    for j in i..xs.len() {
        xs.swap(i, j);
        permute(xs, i + 1, f);
        xs.swap(i, j);
    }
}

/// A cheap pathwidth lower bound: the graph's degeneracy. Every subgraph
/// of a treewidth-`k` graph has a vertex of degree at most `k`, so
/// degeneracy ≤ treewidth ≤ pathwidth — and the ordering is computed in
/// `O(m)` by [`degeneracy::degeneracy_ordering`]. Tight on paths,
/// caterpillars, cycles, cliques, and interval graphs; loose on e.g.
/// grids and expanders.
pub fn pathwidth_lower_bound(g: &Graph) -> usize {
    if g.vertex_count() == 0 {
        return 0;
    }
    degeneracy::degeneracy_ordering(g).degeneracy
}

/// The result of [`pathwidth_heuristic`]: an upper bound on the pathwidth
/// with a witnessing decomposition, plus the cheap lower bound it was
/// compared against so callers know when the bound is already exact.
#[derive(Clone, Debug)]
pub struct HeuristicBound {
    /// Upper bound on the pathwidth (the width of `decomposition`).
    pub width: usize,
    /// The witnessing decomposition (always valid for the input graph).
    pub decomposition: PathDecomposition,
    /// The [`pathwidth_lower_bound`] of the graph.
    pub lower_bound: usize,
    /// `width == lower_bound`: the bound is exactly the pathwidth, so
    /// callers (notably [`crate::bnb::pathwidth_bnb`]) can skip
    /// branch-and-bound entirely.
    pub known_optimal: bool,
}

/// One partial ordering tracked by the beam: prefix bitset, per-vertex
/// outside-neighbour counts, and the running boundary/worst so extending
/// by a vertex costs `O(deg)` instead of a full boundary recount.
#[derive(Clone)]
struct BeamState {
    order: Vec<VertexId>,
    /// Dense prefix bitset (`n` bits in `u64` words).
    inside: Vec<u64>,
    /// Vertices adjacent to the prefix but not yet in it.
    frontier: Vec<u64>,
    /// Per-vertex count of neighbours outside the prefix.
    outcnt: Vec<u32>,
    /// Prefix vertices with at least one neighbour outside.
    boundary: u32,
    /// Maximum boundary over all prefixes of `order`.
    worst: u32,
}

#[inline]
fn bit_get(words: &[u64], v: usize) -> bool {
    words[v >> 6] & (1u64 << (v & 63)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], v: usize) {
    words[v >> 6] |= 1u64 << (v & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], v: usize) {
    words[v >> 6] &= !(1u64 << (v & 63));
}

impl BeamState {
    fn fresh(g: &Graph) -> Self {
        let n = g.vertex_count();
        let words = n.div_ceil(64);
        BeamState {
            order: Vec::with_capacity(n),
            inside: vec![0; words],
            frontier: vec![0; words],
            outcnt: (0..n).map(|v| g.degree(VertexId::new(v)) as u32).collect(),
            boundary: 0,
            worst: 0,
        }
    }

    /// Boundary of the prefix after adding `v`, in `O(deg(v))`: `v`
    /// joins the boundary iff it keeps an outside neighbour, and each
    /// prefix neighbour whose only outside neighbour was `v` leaves it.
    fn boundary_with(&self, g: &Graph, v: usize) -> u32 {
        let mut b = self.boundary + u32::from(self.outcnt[v] > 0);
        for u in g.neighbors(VertexId::new(v)) {
            if bit_get(&self.inside, u.index()) && self.outcnt[u.index()] == 1 {
                b -= 1;
            }
        }
        b
    }

    /// Appends `v` to the prefix, maintaining all incremental state.
    fn push(&mut self, g: &Graph, v: usize) {
        self.boundary = self.boundary_with(g, v);
        bit_set(&mut self.inside, v);
        bit_clear(&mut self.frontier, v);
        for u in g.neighbors(VertexId::new(v)) {
            self.outcnt[u.index()] -= 1;
            if !bit_get(&self.inside, u.index()) {
                bit_set(&mut self.frontier, u.index());
            }
        }
        self.order.push(VertexId::new(v));
        self.worst = self.worst.max(self.boundary);
    }
}

/// Per-state cap on candidate moves evaluated in one heuristic step;
/// see the comment at its use site.
const MAX_STEP_CANDIDATES: usize = 4096;

/// Beam-search upper bound: grows orderings greedily, keeping the `beam`
/// lowest-worst-boundary prefixes per step. Candidate moves are drawn
/// from the prefix frontier (every remaining vertex when the frontier is
/// empty, i.e. at the start and when a component is exhausted), each
/// evaluated in `O(deg)` from incrementally maintained outside-neighbour
/// counts — so a full run is near-linear on bounded-pathwidth graphs
/// rather than the cubic scan of the pre-B&B implementation. On graphs
/// past a few thousand vertices the beam is clamped (state cloning is
/// `O(n)` per kept candidate per step) — the search degenerates to the
/// greedy min-boundary sweep, which is what large bounded-width
/// instances want anyway.
///
/// The returned [`HeuristicBound`] reports whether the width matched
/// [`pathwidth_lower_bound`], in which case it is exactly the pathwidth.
pub fn pathwidth_heuristic(g: &Graph, beam: usize) -> HeuristicBound {
    let n = g.vertex_count();
    let lower_bound = pathwidth_lower_bound(g);
    if n == 0 {
        return HeuristicBound {
            width: 0,
            decomposition: PathDecomposition::new(Vec::new()),
            lower_bound,
            known_optimal: true,
        };
    }
    assert!(beam >= 1, "beam must be positive");
    let beam = if n > 4096 {
        1
    } else if n > 1024 {
        beam.min(2)
    } else {
        beam
    };
    let mut states = vec![BeamState::fresh(g)];
    // (new_worst, state index, vertex) — sorted, the ties break toward
    // earlier states then lower vertex ids, keeping the search a pure
    // function of the graph.
    let mut moves: Vec<(u32, u32, u32)> = Vec::new();
    for _ in 0..n {
        moves.clear();
        for (si, st) in states.iter().enumerate() {
            // Cap per-state candidate evaluations: a huge frontier (a
            // high-degree hub's neighbourhood) would otherwise make each
            // step linear in `n` and the sweep quadratic. The cap only
            // binds past `MAX_STEP_CANDIDATES` remaining candidates,
            // keeps the lowest-id ones (ordering stays deterministic),
            // and can only cost bound quality, never validity.
            let base = moves.len();
            let consider = |moves: &mut Vec<(u32, u32, u32)>, v: usize| {
                let b = st.boundary_with(g, v);
                moves.push((st.worst.max(b), si as u32, v as u32));
            };
            if st.frontier.iter().any(|&w| w != 0) {
                'scan: for (wi, &w) in st.frontier.iter().enumerate() {
                    let mut m = w;
                    while m != 0 {
                        let v = (wi << 6) + m.trailing_zeros() as usize;
                        m &= m - 1;
                        if moves.len() - base >= MAX_STEP_CANDIDATES {
                            break 'scan;
                        }
                        consider(&mut moves, v);
                    }
                }
            } else {
                // New component (or the very first step): any remaining
                // vertex can start it.
                for v in 0..n {
                    if moves.len() - base >= MAX_STEP_CANDIDATES {
                        break;
                    }
                    if !bit_get(&st.inside, v) {
                        consider(&mut moves, v);
                    }
                }
            }
        }
        moves.sort_unstable();
        let mut next: Vec<BeamState> = Vec::with_capacity(beam);
        for &(_, si, v) in moves.iter().take(beam) {
            let mut st = states[si as usize].clone();
            st.push(g, v as usize);
            next.push(st);
        }
        debug_assert!(!next.is_empty(), "some vertex always remains addable");
        states = next;
    }
    let best = states
        .into_iter()
        .min_by_key(|c| c.worst)
        .expect("frontier never empties");
    let pd = PathDecomposition::from_order(g, &best.order);
    debug_assert_eq!(pd.width(), best.worst as usize);
    let width = pd.width();
    HeuristicBound {
        width,
        decomposition: pd,
        lower_bound,
        known_optimal: width == lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;
    use rand::SeedableRng;

    #[test]
    fn known_pathwidths() {
        let cases: Vec<(Graph, usize)> = vec![
            (generators::path_graph(1), 0),
            (generators::path_graph(2), 1),
            (generators::path_graph(8), 1),
            (generators::cycle_graph(3), 2),
            (generators::cycle_graph(9), 2),
            (generators::star(7), 1),
            (generators::caterpillar(3, 2), 1),
            (generators::complete_graph(5), 4),
            (generators::complete_bipartite(2, 4), 2),
            (generators::ladder(5), 2),
            (generators::grid(3, 5), 3),
        ];
        for (g, want) in cases {
            let (pw, pd) = pathwidth_exact(&g).unwrap();
            assert_eq!(pw, want, "graph {g:?}");
            pd.validate(&g).unwrap();
            assert_eq!(pd.width(), want);
        }
    }

    #[test]
    fn exact_matches_bruteforce_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let g = generators::gnp(6, 0.4, &mut rng);
            let (pw, pd) = pathwidth_exact(&g).unwrap();
            pd.validate(&g).unwrap();
            assert_eq!(pw, pathwidth_bruteforce(&g), "trial {trial}");
        }
    }

    #[test]
    fn heuristic_never_beats_exact_and_is_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let g = generators::gnp(9, 0.3, &mut rng);
            let (pw, _) = pathwidth_exact(&g).unwrap();
            let hb = pathwidth_heuristic(&g, 16);
            hb.decomposition.validate(&g).unwrap();
            assert!(hb.width >= pw);
            assert!(hb.lower_bound <= pw, "lower bound must never exceed pw");
            if hb.known_optimal {
                assert_eq!(hb.width, pw, "known-optimal claim must be exact");
            }
        }
    }

    #[test]
    fn heuristic_finds_path_ordering() {
        let g = generators::path_graph(30);
        let hb = pathwidth_heuristic(&g, 8);
        hb.decomposition.validate(&g).unwrap();
        assert_eq!(hb.width, 1);
        assert!(
            hb.known_optimal,
            "a path's degeneracy (1) certifies the sweep as optimal"
        );
    }

    #[test]
    fn lower_bound_is_sound_and_often_tight() {
        // Sound on everything the exact solver can check…
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let g = generators::gnp(10, 0.35, &mut rng);
            let (pw, _) = pathwidth_exact(&g).unwrap();
            assert!(pathwidth_lower_bound(&g) <= pw);
        }
        // …and tight on the families the hintless ladder fast-paths.
        for (g, pw) in [
            (generators::path_graph(12), 1),
            (generators::caterpillar(5, 3), 1),
            (generators::cycle_graph(9), 2),
            (generators::complete_graph(6), 5),
        ] {
            assert_eq!(pathwidth_lower_bound(&g), pw, "{g:?}");
        }
    }

    #[test]
    fn heuristic_short_circuits_large_caterpillars() {
        // Past the beam clamp the heuristic degenerates to the greedy
        // sweep — which must still find the optimal width-1 ordering on a
        // caterpillar and certify it against the degeneracy bound.
        let g = generators::caterpillar(2000, 2);
        assert!(g.vertex_count() > 4096);
        let hb = pathwidth_heuristic(&g, 8);
        assert_eq!(hb.width, 1);
        assert!(hb.known_optimal);
    }

    #[test]
    fn random_pathwidth_generator_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for k in 1..=3 {
            let (g, _) = generators::random_pathwidth_graph(12, k, 0.6, &mut rng);
            let (pw, _) = pathwidth_exact(&g).unwrap();
            assert!(pw <= k, "generator exceeded k = {k}: pw = {pw}");
        }
    }

    #[test]
    fn rejects_large_graphs() {
        let g = generators::path_graph(EXACT_LIMIT + 1);
        assert!(pathwidth_exact(&g).is_err());
    }

    #[test]
    fn binary_tree_pathwidth_grows() {
        let (pw3, _) = pathwidth_exact(&generators::binary_tree(3)).unwrap();
        let (pw4, _) = pathwidth_exact(&generators::binary_tree(4)).unwrap();
        assert_eq!(pw3, 1);
        assert_eq!(pw4, 2);
    }
}
