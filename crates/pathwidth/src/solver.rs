//! Pathwidth solvers.
//!
//! Pathwidth equals the *vertex separation number*: the minimum over vertex
//! orderings of the maximum boundary size of a prefix (a classical result of
//! Kinnersley). The exact solver runs the Held–Karp-style DP
//!
//! ```text
//! cost(S) = min over v in S of max(cost(S \ {v}), boundary(S))
//! ```
//!
//! over all `2^n` vertex subsets, reconstructs an optimal ordering, and
//! converts it to a path decomposition via
//! [`PathDecomposition::from_order`]. A brute-force permutation solver acts
//! as a test oracle, and a beam-search heuristic covers larger graphs.

use std::error::Error;
use std::fmt;

use lanecert_graph::{Graph, VertexId};

use crate::PathDecomposition;

/// Largest vertex count accepted by [`pathwidth_exact`] (the DP allocates
/// `2^n` bytes).
pub const EXACT_LIMIT: usize = 24;

/// Error returned when a graph is too large for the exact solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TooLarge {
    /// Vertices in the offending graph.
    pub vertices: usize,
}

impl fmt::Display for TooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph has {} vertices; exact pathwidth is limited to {EXACT_LIMIT}",
            self.vertices
        )
    }
}

impl Error for TooLarge {}

/// The boundary size of prefix set `s`: vertices in `s` with a neighbour
/// outside `s`.
fn boundary(adj: &[u64], s: u64) -> u32 {
    let mut count = 0;
    let mut m = s;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        m &= m - 1;
        if adj[v] & !s != 0 {
            count += 1;
        }
    }
    count
}

/// Computes the exact pathwidth and an optimal path decomposition.
///
/// # Errors
///
/// Returns [`TooLarge`] if the graph has more than [`EXACT_LIMIT`] vertices.
pub fn pathwidth_exact(g: &Graph) -> Result<(usize, PathDecomposition), TooLarge> {
    let n = g.vertex_count();
    if n > EXACT_LIMIT {
        return Err(TooLarge { vertices: n });
    }
    if n == 0 {
        return Ok((0, PathDecomposition::new(Vec::new())));
    }
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            let mut m = 0u64;
            for w in g.neighbors(VertexId::new(v)) {
                m |= 1 << w.index();
            }
            m
        })
        .collect();
    let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // cost[S] = optimal max-boundary over orderings of S as a prefix.
    let mut cost = vec![u8::MAX; 1 << n];
    cost[0] = 0;
    for s in 1..=(full as usize) {
        let b = boundary(&adj, s as u64) as u8;
        let mut best = u8::MAX;
        let mut m = s as u64;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let prev = cost[s ^ (1 << v)];
            best = best.min(prev.max(b));
        }
        cost[s] = best;
    }
    let vsn = cost[full as usize] as usize;
    // Reconstruct an optimal ordering by walking back from the full set.
    let mut order = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let b = boundary(&adj, s) as u8;
        let mut m = s;
        let mut chosen = None;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            if cost[(s ^ (1 << v)) as usize].max(b) == cost[s as usize] {
                chosen = Some(v);
                break;
            }
        }
        let v = chosen.expect("DP invariant: some last vertex achieves the optimum");
        order.push(VertexId::new(v));
        s ^= 1 << v;
    }
    order.reverse();
    let pd = PathDecomposition::from_order(g, &order);
    debug_assert_eq!(pd.width(), vsn);
    Ok((vsn, pd))
}

/// Brute-force pathwidth over all vertex permutations — a test oracle for
/// graphs with at most ~8 vertices.
pub fn pathwidth_bruteforce(g: &Graph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            let mut m = 0u64;
            for w in g.neighbors(VertexId::new(v)) {
                m |= 1 << w.index();
            }
            m
        })
        .collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = n;
    permute(&mut perm, 0, &mut |p| {
        let mut s = 0u64;
        let mut worst = 0;
        for &v in p {
            s |= 1 << v;
            worst = worst.max(boundary(&adj, s));
        }
        best = best.min(worst as usize);
    });
    best
}

fn permute(xs: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    if i == xs.len() {
        f(xs);
        return;
    }
    for j in i..xs.len() {
        xs.swap(i, j);
        permute(xs, i + 1, f);
        xs.swap(i, j);
    }
}

/// Beam-search upper bound: grows orderings greedily, keeping the `beam`
/// lowest-boundary partial prefixes per step. Returns a valid decomposition
/// whose width is an upper bound on the pathwidth.
pub fn pathwidth_heuristic(g: &Graph, beam: usize) -> (usize, PathDecomposition) {
    let n = g.vertex_count();
    if n == 0 {
        return (0, PathDecomposition::new(Vec::new()));
    }
    assert!(beam >= 1, "beam must be positive");
    #[derive(Clone)]
    struct Cand {
        order: Vec<VertexId>,
        inside: Vec<bool>,
        worst: usize,
    }
    let boundary_of = |inside: &[bool]| -> usize {
        (0..n)
            .filter(|&v| inside[v] && g.neighbors(VertexId::new(v)).any(|w| !inside[w.index()]))
            .count()
    };
    let mut frontier = vec![Cand {
        order: Vec::new(),
        inside: vec![false; n],
        worst: 0,
    }];
    for _ in 0..n {
        let mut next: Vec<Cand> = Vec::new();
        for cand in &frontier {
            for v in 0..n {
                if cand.inside[v] {
                    continue;
                }
                let mut inside = cand.inside.clone();
                inside[v] = true;
                let b = boundary_of(&inside);
                let mut order = cand.order.clone();
                order.push(VertexId::new(v));
                next.push(Cand {
                    order,
                    inside,
                    worst: cand.worst.max(b),
                });
            }
        }
        next.sort_by_key(|c| c.worst);
        next.truncate(beam);
        frontier = next;
    }
    let best = frontier
        .into_iter()
        .min_by_key(|c| c.worst)
        .expect("frontier never empties");
    let pd = PathDecomposition::from_order(g, &best.order);
    (pd.width(), pd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;
    use rand::SeedableRng;

    #[test]
    fn known_pathwidths() {
        let cases: Vec<(Graph, usize)> = vec![
            (generators::path_graph(1), 0),
            (generators::path_graph(2), 1),
            (generators::path_graph(8), 1),
            (generators::cycle_graph(3), 2),
            (generators::cycle_graph(9), 2),
            (generators::star(7), 1),
            (generators::caterpillar(3, 2), 1),
            (generators::complete_graph(5), 4),
            (generators::complete_bipartite(2, 4), 2),
            (generators::ladder(5), 2),
            (generators::grid(3, 5), 3),
        ];
        for (g, want) in cases {
            let (pw, pd) = pathwidth_exact(&g).unwrap();
            assert_eq!(pw, want, "graph {g:?}");
            pd.validate(&g).unwrap();
            assert_eq!(pd.width(), want);
        }
    }

    #[test]
    fn exact_matches_bruteforce_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let g = generators::gnp(6, 0.4, &mut rng);
            let (pw, pd) = pathwidth_exact(&g).unwrap();
            pd.validate(&g).unwrap();
            assert_eq!(pw, pathwidth_bruteforce(&g), "trial {trial}");
        }
    }

    #[test]
    fn heuristic_never_beats_exact_and_is_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let g = generators::gnp(9, 0.3, &mut rng);
            let (pw, _) = pathwidth_exact(&g).unwrap();
            let (upper, pd) = pathwidth_heuristic(&g, 16);
            pd.validate(&g).unwrap();
            assert!(upper >= pw);
        }
    }

    #[test]
    fn heuristic_finds_path_ordering() {
        let g = generators::path_graph(30);
        let (w, pd) = pathwidth_heuristic(&g, 8);
        pd.validate(&g).unwrap();
        assert_eq!(w, 1);
    }

    #[test]
    fn random_pathwidth_generator_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for k in 1..=3 {
            let (g, _) = generators::random_pathwidth_graph(12, k, 0.6, &mut rng);
            let (pw, _) = pathwidth_exact(&g).unwrap();
            assert!(pw <= k, "generator exceeded k = {k}: pw = {pw}");
        }
    }

    #[test]
    fn rejects_large_graphs() {
        let g = generators::path_graph(EXACT_LIMIT + 1);
        assert!(pathwidth_exact(&g).is_err());
    }

    #[test]
    fn binary_tree_pathwidth_grows() {
        let (pw3, _) = pathwidth_exact(&generators::binary_tree(3)).unwrap();
        let (pw4, _) = pathwidth_exact(&generators::binary_tree(4)).unwrap();
        assert_eq!(pw3, 1);
        assert_eq!(pw4, 2);
    }
}
