//! Branch-and-bound vertex-separation solver with memoized prefixes,
//! after Coudert–Mazauric–Nisse ("Experimental evaluation of a branch
//! and bound algorithm for computing pathwidth", SEA 2014).
//!
//! Pathwidth equals the vertex separation number, so the search runs
//! over vertex orderings: a node of the tree is a *prefix* (the set of
//! vertices already ordered), and branching appends one more vertex.
//! Four ingredients keep the tree small:
//!
//! * **Greedy-exact extension** — whenever some remaining vertex `v`
//!   does not increase the prefix boundary (`∂(S ∪ {v}) ≤ ∂(S)`), it is
//!   appended for free. This is optimality-safe: each prefix vertex
//!   whose only outside neighbour is `v` compensates `v`'s own boundary
//!   entry for *every* superset of `S`, so moving `v` to the front of
//!   any completion never raises a later boundary.
//! * **Seeded upper bound** — the beam heuristic
//!   ([`pathwidth_heuristic`]) runs first; its decomposition is the
//!   incumbent, so the search only ever explores strictly-improving
//!   branches and the heuristic result doubles as the over-budget
//!   fallback. When the seed already matches the cheap lower bound
//!   ([`crate::solver::pathwidth_lower_bound`]) the search is skipped
//!   entirely.
//! * **Lower-bound pruning** — branches whose separation-so-far cannot
//!   beat the incumbent are cut, and the whole search stops once the
//!   incumbent meets the graph's degeneracy bound.
//! * **Memoized prefixes** — a table from prefix vertex-*set* to the
//!   smallest separation it has been reached with; arriving again no
//!   better is a dominated re-visit and prunes immediately. The table
//!   is budgeted (`max_prefix_length` / `max_seen_entries`, after the
//!   bounded-memoization tables of the thinness solvers) so memory
//!   stays bounded on large instances.
//!
//! Prefixes are dense bitsets over the [`CsrGraph`] arena and boundary
//! counts are maintained incrementally per vertex, so the candidate
//! evaluation in the inner loop is allocation-free (`// lint:
//! zero-alloc` checked). Budgets are counted in *work units* (one per
//! adjacency-half touched) rather than wall-clock time, keeping every
//! result a pure function of the graph and options — the purity
//! invariant the engine's determinism suite pins.
//!
//! [`bnb_root_tasks`] exposes the root branches as independent
//! subproblems for the engine's work-stealing parallel driver
//! (`lanecert_engine::par_pathwidth_bnb`); [`merge_outcomes`] folds the
//! per-task results back together deterministically (best width, ties
//! to the lowest task index), so the parallel decomposition is the same
//! at any worker count.

use std::collections::HashMap;

use lanecert_graph::{CsrGraph, Graph, VertexId};
use lanecert_obs::{counter_add, names};

use crate::solver::{pathwidth_heuristic, HeuristicBound};
use crate::PathDecomposition;

/// Default cap on the length of memoized prefixes: longer prefixes are
/// searched but not tabled (deep levels have the most sets and the
/// fewest re-visits).
pub const DEFAULT_MAX_PREFIX_LENGTH: usize = 64;

/// Default cap on the number of memo-table entries.
pub const DEFAULT_MAX_SEEN_ENTRIES: usize = 1 << 20;

/// Default work budget (adjacency halves touched) for one search.
///
/// Empirical envelope (`gnp` across densities 0.1–0.8): this budget
/// proves optimality on every random graph through ~16 vertices and on
/// structured families well past 20, but dense random graphs from ~18
/// vertices up can exhaust it — the search then reports its best upper
/// bound with `optimal: false`. Raise `max_work` when an optimality
/// proof matters more than latency.
pub const DEFAULT_MAX_WORK: u64 = 64_000_000;

/// Default beam width for the seeding heuristic.
pub const DEFAULT_BEAM: usize = 8;

/// Tuning knobs for [`pathwidth_bnb`]. The defaults are sized for
/// exactness on small-to-medium graphs; [`BnbOptions::for_auto`] scales
/// the work budget down with instance size for the hintless prover
/// path, where a missing hint must never stall a batch.
#[derive(Clone, Debug)]
pub struct BnbOptions {
    /// Memoize only prefixes of at most this many vertices
    /// ([`DEFAULT_MAX_PREFIX_LENGTH`]).
    pub max_prefix_length: usize,
    /// Stop inserting memo entries past this table size
    /// ([`DEFAULT_MAX_SEEN_ENTRIES`]); lookups continue.
    pub max_seen_entries: usize,
    /// Deterministic node/work budget ([`DEFAULT_MAX_WORK`]): one unit
    /// per adjacency half touched while evaluating candidates. When it
    /// runs out the best incumbent so far (at worst the heuristic seed)
    /// is returned with `optimal: false`.
    pub max_work: u64,
    /// Beam width handed to the seeding [`pathwidth_heuristic`]
    /// ([`DEFAULT_BEAM`]).
    pub beam: usize,
}

impl Default for BnbOptions {
    fn default() -> Self {
        Self {
            max_prefix_length: DEFAULT_MAX_PREFIX_LENGTH,
            max_seen_entries: DEFAULT_MAX_SEEN_ENTRIES,
            max_work: DEFAULT_MAX_WORK,
            beam: DEFAULT_BEAM,
        }
    }
}

impl BnbOptions {
    /// Options for the automatic hintless prover path: the work budget
    /// shrinks with `n` (per-node cost grows with it), so a hintless
    /// batch job pays a bounded, size-aware solver cost before falling
    /// back to the heuristic seed.
    pub fn for_auto(n: usize) -> Self {
        let max_work = (DEFAULT_MAX_WORK / (n as u64).max(1)).clamp(500_000, 16_000_000);
        Self {
            max_work,
            ..Self::default()
        }
    }
}

/// Search counters reported by [`pathwidth_bnb`] (and summed across
/// tasks by [`merge_outcomes`]); also exported as observability
/// counters (`bnb_nodes` / `bnb_prunes` / `bnb_memo_hits`).
#[derive(Clone, Copy, Debug, Default)]
pub struct BnbStats {
    /// Branch nodes expanded.
    pub nodes: u64,
    /// Branches cut by the incumbent bound.
    pub prunes: u64,
    /// Dominated re-visits answered by the prefix memo table.
    pub memo_hits: u64,
    /// Entries resident in the memo table at the end of the search.
    pub memo_entries: u64,
    /// Work units spent (adjacency halves touched).
    pub work: u64,
    /// Width of the heuristic seed.
    pub seed_width: usize,
    /// Whether the seed already matched the lower bound (search
    /// skipped).
    pub seed_known_optimal: bool,
}

impl BnbStats {
    fn absorb(&mut self, other: &BnbStats) {
        self.nodes += other.nodes;
        self.prunes += other.prunes;
        self.memo_hits += other.memo_hits;
        self.memo_entries += other.memo_entries;
        self.work += other.work;
    }
}

/// The result of a branch-and-bound search.
#[derive(Clone, Debug)]
pub struct BnbResult {
    /// The best width found (exact when `optimal`).
    pub width: usize,
    /// A witnessing decomposition of that width.
    pub decomposition: PathDecomposition,
    /// Whether the search was exhaustive (or the width met the lower
    /// bound) — i.e. `width` is exactly the pathwidth.
    pub optimal: bool,
    /// Search counters.
    pub stats: BnbStats,
}

/// The branch-and-bound workspace: dense prefix bitset, per-vertex
/// outside-neighbour counts, the undo stacks, the budgeted memo table,
/// and the incumbent.
struct Search<'a> {
    g: &'a CsrGraph,
    n: usize,
    lb: u32,
    opts: &'a BnbOptions,
    /// Dense prefix bitset (`n` bits in `u64` words).
    inside: Vec<u64>,
    /// Per-vertex count of neighbours outside the prefix.
    outcnt: Vec<u32>,
    /// Prefix vertices with at least one neighbour outside.
    boundary: u32,
    /// Saved boundaries, one per prefix vertex, for exact undo.
    bstack: Vec<u32>,
    order: Vec<VertexId>,
    /// Flat arena of `(new_boundary, vertex)` child candidates; each
    /// frame works on its own suffix range.
    children: Vec<(u32, u32)>,
    /// Prefix vertex-set → smallest separation it was reached with.
    memo: HashMap<Box<[u64]>, u32>,
    best_width: u32,
    best_order: Vec<VertexId>,
    improved: bool,
    work: u64,
    exhausted: bool,
    nodes: u64,
    prunes: u64,
    memo_hits: u64,
}

impl<'a> Search<'a> {
    fn new(g: &'a CsrGraph, lb: usize, ub: usize, opts: &'a BnbOptions) -> Self {
        let n = g.vertex_count();
        Search {
            g,
            n,
            lb: lb as u32,
            opts,
            inside: vec![0; n.div_ceil(64)],
            outcnt: (0..n).map(|v| g.degree(VertexId::new(v)) as u32).collect(),
            boundary: 0,
            bstack: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
            children: Vec::new(),
            memo: HashMap::new(),
            best_width: ub as u32,
            best_order: Vec::new(),
            improved: false,
            work: 0,
            exhausted: false,
            nodes: 0,
            prunes: 0,
            memo_hits: 0,
        }
    }

    /// Boundary of the prefix after appending `v` — the allocation-free
    /// inner loop of the search: `v` joins the boundary iff it keeps an
    /// outside neighbour, and each prefix neighbour whose only outside
    /// neighbour was `v` leaves it.
    #[inline]
    fn new_boundary(&self, v: usize) -> u32 {
        // lint: zero-alloc {
        let mut b = self.boundary + u32::from(self.outcnt[v] > 0);
        for h in self.g.incident(VertexId::new(v)) {
            let u = h.to.index();
            if self.inside[u >> 6] & (1u64 << (u & 63)) != 0 && self.outcnt[u] == 1 {
                b -= 1;
            }
        }
        b
        // lint: }
    }

    /// Work charged for evaluating one candidate.
    #[inline]
    fn charge(&mut self, v: usize) {
        self.work += self.g.degree(VertexId::new(v)) as u64 + 1;
    }

    fn push_vertex(&mut self, v: usize) {
        self.bstack.push(self.boundary);
        self.boundary = self.new_boundary(v);
        self.inside[v >> 6] |= 1u64 << (v & 63);
        for h in self.g.incident(VertexId::new(v)) {
            self.outcnt[h.to.index()] -= 1;
        }
        self.order.push(VertexId::new(v));
    }

    fn pop_vertex(&mut self) {
        let v = self.order.pop().expect("pop matches a push").index();
        for h in self.g.incident(VertexId::new(v)) {
            self.outcnt[h.to.index()] += 1;
        }
        self.inside[v >> 6] &= !(1u64 << (v & 63));
        self.boundary = self.bstack.pop().expect("bstack matches order");
    }

    /// Greedy-exact extension: repeatedly appends any remaining vertex
    /// that does not increase the boundary, until a full pass adds
    /// nothing. Returns the number of vertices appended (for undo).
    fn greedy_extend(&mut self) -> usize {
        let mut added = 0;
        loop {
            let mut any = false;
            for wi in 0..self.inside.len() {
                let mut m = !self.inside[wi];
                if (wi + 1) << 6 > self.n {
                    m &= (1u64 << (self.n & 63)) - 1;
                }
                while m != 0 {
                    let v = (wi << 6) + m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.charge(v);
                    if self.new_boundary(v) <= self.boundary {
                        self.push_vertex(v);
                        added += 1;
                        any = true;
                    }
                    if self.work >= self.opts.max_work {
                        self.exhausted = true;
                        return added;
                    }
                }
            }
            if !any {
                break;
            }
        }
        added
    }

    /// Enumerates, bounds, and sorts the children of the current
    /// prefix into `self.children[base..]`.
    fn collect_children(&mut self, vs: u32, base: usize) {
        for wi in 0..self.inside.len() {
            let mut m = !self.inside[wi];
            if (wi + 1) << 6 > self.n {
                m &= (1u64 << (self.n & 63)) - 1;
            }
            while m != 0 {
                let v = (wi << 6) + m.trailing_zeros() as usize;
                m &= m - 1;
                self.charge(v);
                let nb = self.new_boundary(v);
                if vs.max(nb) < self.best_width {
                    self.children.push((nb, v as u32));
                } else {
                    self.prunes += 1;
                }
            }
        }
        self.children[base..].sort_unstable();
    }

    /// One branch node: greedy-extend, check the memo, then recurse
    /// into the surviving children in increasing-separation order.
    /// `vs` is the vertex separation of the current prefix.
    fn branch(&mut self, vs: u32) {
        if self.exhausted || self.best_width <= self.lb {
            return;
        }
        self.nodes += 1;
        let added = self.greedy_extend();
        'done: {
            if self.exhausted {
                break 'done;
            }
            if self.order.len() == self.n {
                if vs < self.best_width {
                    self.best_width = vs;
                    self.best_order.clear();
                    self.best_order.extend_from_slice(&self.order);
                    self.improved = true;
                }
                break 'done;
            }
            if self.order.len() <= self.opts.max_prefix_length {
                if let Some(m) = self.memo.get_mut(&self.inside[..]) {
                    if *m <= vs {
                        self.memo_hits += 1;
                        break 'done;
                    }
                    *m = vs;
                } else if self.memo.len() < self.opts.max_seen_entries {
                    self.memo.insert(self.inside.clone().into_boxed_slice(), vs);
                }
            }
            let base = self.children.len();
            self.collect_children(vs, base);
            let mut i = base;
            while i < self.children.len() {
                let (nb, v) = self.children[i];
                let child_vs = vs.max(nb);
                if child_vs >= self.best_width {
                    // Sorted ascending: every later sibling prunes too.
                    self.prunes += (self.children.len() - i) as u64;
                    break;
                }
                self.push_vertex(v as usize);
                self.branch(child_vs);
                self.pop_vertex();
                if self.exhausted || self.best_width <= self.lb {
                    break;
                }
                i += 1;
            }
            self.children.truncate(base);
        }
        for _ in 0..added {
            self.pop_vertex();
        }
    }

    fn stats(&self, seed: &HeuristicBound) -> BnbStats {
        BnbStats {
            nodes: self.nodes,
            prunes: self.prunes,
            memo_hits: self.memo_hits,
            memo_entries: self.memo.len() as u64,
            work: self.work,
            seed_width: seed.width,
            seed_known_optimal: seed.known_optimal,
        }
    }
}

fn record_counters(stats: &BnbStats) {
    counter_add(names::BNB_NODES, stats.nodes);
    counter_add(names::BNB_PRUNES, stats.prunes);
    counter_add(names::BNB_MEMO_HITS, stats.memo_hits);
}

fn seed_result(seed: HeuristicBound, stats: BnbStats) -> BnbResult {
    BnbResult {
        width: seed.width,
        decomposition: seed.decomposition,
        optimal: seed.known_optimal,
        stats,
    }
}

/// Computes the pathwidth by branch-and-bound over vertex orderings,
/// seeded (and bounded) by the beam heuristic.
///
/// Always returns a valid decomposition: the incumbent when the search
/// improves on the seed, the heuristic seed otherwise — so the result
/// is never worse than [`pathwidth_heuristic`] alone, and `optimal`
/// reports whether it is exactly the pathwidth (search exhausted, or
/// the width met the degeneracy lower bound). Deterministic: a pure
/// function of the graph and options.
pub fn pathwidth_bnb(g: &Graph, opts: &BnbOptions) -> BnbResult {
    let _span = lanecert_obs::span!("pathwidth_bnb");
    let seed = pathwidth_heuristic(g, opts.beam);
    let mut stats = BnbStats {
        seed_width: seed.width,
        seed_known_optimal: seed.known_optimal,
        ..BnbStats::default()
    };
    if seed.known_optimal {
        record_counters(&stats);
        return seed_result(seed, stats);
    }
    let csr = CsrGraph::from_graph(g);
    let mut s = Search::new(&csr, seed.lower_bound, seed.width, opts);
    s.branch(0);
    stats = s.stats(&seed);
    record_counters(&stats);
    let optimal = !s.exhausted || s.best_width as usize == seed.lower_bound;
    let (width, decomposition) = if s.improved {
        let pd = PathDecomposition::from_order(g, &s.best_order);
        debug_assert_eq!(pd.width(), s.best_width as usize);
        (s.best_width as usize, pd)
    } else {
        (seed.width, seed.decomposition)
    };
    BnbResult {
        width,
        decomposition,
        optimal,
        stats,
    }
}

/// One independent root branch of the search, explorable in isolation:
/// the greedy-extended empty prefix plus one branch vertex.
#[derive(Clone, Debug)]
pub struct BnbTask {
    root: Vec<VertexId>,
    vs: u32,
}

/// The outcome of [`BnbTask::run`].
#[derive(Clone, Debug)]
pub struct BnbTaskOutcome {
    /// Best strictly-better-than-seed `(width, ordering)` found in the
    /// subtree, if any.
    pub best: Option<(usize, Vec<VertexId>)>,
    /// Whether the subtree was searched exhaustively within budget.
    pub complete: bool,
    /// Subtree search counters.
    pub stats: BnbStats,
}

impl BnbTask {
    /// Runs the subtree search sequentially against its own workspace
    /// and memo table, with the seed width as a fixed upper bound —
    /// tasks share nothing, so a batch of them returns the same
    /// outcomes on any schedule.
    pub fn run(&self, csr: &CsrGraph, lb: usize, ub: usize, opts: &BnbOptions) -> BnbTaskOutcome {
        let mut s = Search::new(csr, lb, ub, opts);
        let mut vs = 0u32;
        for &v in &self.root {
            s.charge(v.index());
            s.push_vertex(v.index());
            vs = vs.max(s.boundary);
        }
        debug_assert_eq!(vs, self.vs);
        s.branch(vs);
        BnbTaskOutcome {
            best: s
                .improved
                .then(|| (s.best_width as usize, std::mem::take(&mut s.best_order))),
            complete: !s.exhausted,
            stats: BnbStats {
                nodes: s.nodes,
                prunes: s.prunes,
                memo_hits: s.memo_hits,
                memo_entries: s.memo.len() as u64,
                work: s.work,
                seed_width: ub,
                seed_known_optimal: false,
            },
        }
    }
}

/// How a search would begin: either already solved without branching,
/// or the heuristic seed plus the independent root branches.
pub enum RootSplit {
    /// Solved outright (empty graph, seed matched the lower bound, or
    /// the greedy extension completed the ordering).
    Done(Box<BnbResult>),
    /// Branch: the seed incumbent and one task per surviving root
    /// child, in deterministic (separation, vertex) order.
    Branches {
        /// The heuristic seed (incumbent and upper bound for the
        /// tasks).
        seed: HeuristicBound,
        /// Independent subtrees, one per root child.
        tasks: Vec<BnbTask>,
    },
}

/// Splits the search at the root for a parallel driver: the greedy
/// prefix is shared, and each surviving root child becomes one
/// [`BnbTask`]. Semantically equivalent to [`pathwidth_bnb`] modulo
/// bound sharing (tasks do not see each other's improvements, so a
/// parallel run may expand more nodes — never a different width).
pub fn bnb_root_tasks(g: &Graph, opts: &BnbOptions) -> RootSplit {
    let seed = pathwidth_heuristic(g, opts.beam);
    let stats = BnbStats {
        seed_width: seed.width,
        seed_known_optimal: seed.known_optimal,
        ..BnbStats::default()
    };
    if seed.known_optimal {
        return RootSplit::Done(Box::new(seed_result(seed, stats)));
    }
    let csr = CsrGraph::from_graph(g);
    let mut s = Search::new(&csr, seed.lower_bound, seed.width, opts);
    s.greedy_extend();
    if s.order.len() == s.n {
        // Only edgeless graphs complete greedily from the empty prefix
        // (boundary stays 0), and those have known-optimal seeds; keep
        // the defensive path anyway.
        let pd = PathDecomposition::from_order(g, &s.order);
        let width = pd.width();
        return RootSplit::Done(Box::new(BnbResult {
            width,
            decomposition: pd,
            optimal: true,
            stats,
        }));
    }
    s.collect_children(0, 0);
    let tasks = s
        .children
        .iter()
        .map(|&(nb, v)| {
            let mut root = s.order.clone();
            root.push(VertexId::new(v as usize));
            BnbTask { root, vs: nb }
        })
        .collect();
    RootSplit::Branches { seed, tasks }
}

/// Folds per-task outcomes back into one [`BnbResult`]: the best width
/// wins, ties resolved toward the lowest task index, so the result is
/// a pure function of the graph no matter how the tasks were
/// scheduled. `outcomes` must be in [`RootSplit::Branches`] task
/// order.
pub fn merge_outcomes(g: &Graph, seed: HeuristicBound, outcomes: &[BnbTaskOutcome]) -> BnbResult {
    let mut stats = BnbStats {
        seed_width: seed.width,
        seed_known_optimal: seed.known_optimal,
        ..BnbStats::default()
    };
    let mut best: Option<(usize, &[VertexId])> = None;
    let mut complete = true;
    for o in outcomes {
        stats.absorb(&o.stats);
        complete &= o.complete;
        if let Some((w, order)) = &o.best {
            if best.map_or(*w < seed.width, |(bw, _)| *w < bw) {
                best = Some((*w, order));
            }
        }
    }
    record_counters(&stats);
    match best {
        Some((width, order)) => {
            let pd = PathDecomposition::from_order(g, order);
            debug_assert_eq!(pd.width(), width);
            BnbResult {
                width,
                decomposition: pd,
                optimal: complete || width == seed.lower_bound,
                stats,
            }
        }
        None => BnbResult {
            optimal: (complete || seed.width == seed.lower_bound) && {
                stats.seed_known_optimal |= complete;
                true
            },
            ..seed_result(seed, stats)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::pathwidth_exact;
    use lanecert_graph::generators;
    use rand::SeedableRng;

    fn assert_matches_exact(g: &Graph) {
        let (pw, _) = pathwidth_exact(g).unwrap();
        let r = pathwidth_bnb(g, &BnbOptions::default());
        r.decomposition.validate(g).unwrap();
        assert!(r.optimal, "default budget must suffice on this family");
        assert_eq!(r.width, pw, "graph {g:?}");
        assert_eq!(r.decomposition.width(), pw);
    }

    #[test]
    fn matches_exact_on_known_families() {
        for g in [
            generators::path_graph(1),
            generators::path_graph(12),
            generators::cycle_graph(3),
            generators::cycle_graph(17),
            generators::star(9),
            generators::caterpillar(5, 2),
            generators::complete_graph(7),
            generators::complete_bipartite(3, 5),
            generators::ladder(8),
            generators::grid(3, 5),
            generators::grid(4, 5),
            generators::binary_tree(4),
            Graph::new(0),
            Graph::new(5),
        ] {
            if g.vertex_count() == 0 {
                let r = pathwidth_bnb(&g, &BnbOptions::default());
                assert_eq!((r.width, r.optimal), (0, true));
                continue;
            }
            assert_matches_exact(&g);
        }
    }

    #[test]
    fn matches_exact_on_random_graphs() {
        // n ≤ 16: the band where DEFAULT_MAX_WORK provably-by-sweep
        // suffices at every density (tests/bnb_parity.rs covers the
        // 17..=EXACT_LIMIT band with upper-bound semantics).
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..40 {
            let n = 4 + trial % 13;
            let g = generators::gnp(n, 0.25, &mut rng);
            assert_matches_exact(&g);
        }
    }

    #[test]
    fn stats_report_search_effort() {
        // A grid's seed is not optimal (degeneracy 2 < pathwidth 3), so
        // the search must actually run.
        let g = generators::grid(3, 6);
        let r = pathwidth_bnb(&g, &BnbOptions::default());
        assert_eq!(r.width, 3);
        assert!(!r.stats.seed_known_optimal);
        assert!(r.stats.nodes > 0);
        assert!(r.stats.work > 0);
    }

    #[test]
    fn known_optimal_seed_skips_search() {
        let g = generators::caterpillar(40, 3);
        let r = pathwidth_bnb(&g, &BnbOptions::default());
        assert_eq!(r.width, 1);
        assert!(r.optimal);
        assert!(r.stats.seed_known_optimal);
        assert_eq!(r.stats.nodes, 0, "no branching on a certified seed");
    }

    #[test]
    fn exhausted_budget_falls_back_to_seed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::gnp(18, 0.4, &mut rng);
        let opts = BnbOptions {
            max_work: 1,
            ..BnbOptions::default()
        };
        let r = pathwidth_bnb(&g, &opts);
        assert!(!r.optimal);
        assert_eq!(r.width, r.stats.seed_width, "over budget → seed result");
        r.decomposition.validate(&g).unwrap();
    }

    #[test]
    fn split_run_merge_matches_sequential_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..10 {
            let g = generators::gnp(14, 0.3, &mut rng);
            let opts = BnbOptions::default();
            let seq = pathwidth_bnb(&g, &opts);
            let merged = match bnb_root_tasks(&g, &opts) {
                RootSplit::Done(r) => *r,
                RootSplit::Branches { seed, tasks } => {
                    let csr = CsrGraph::from_graph(&g);
                    let outcomes: Vec<BnbTaskOutcome> = tasks
                        .iter()
                        .map(|t| t.run(&csr, seed.lower_bound, seed.width, &opts))
                        .collect();
                    merge_outcomes(&g, seed, &outcomes)
                }
            };
            assert_eq!(merged.width, seq.width);
            assert!(merged.optimal && seq.optimal);
            merged.decomposition.validate(&g).unwrap();
        }
    }

    #[test]
    fn memo_budget_zero_still_exact() {
        // With the table disabled the search is slower but still exact.
        let g = generators::grid(3, 4);
        let opts = BnbOptions {
            max_seen_entries: 0,
            ..BnbOptions::default()
        };
        let r = pathwidth_bnb(&g, &opts);
        assert_eq!(r.width, 3);
        assert!(r.optimal);
        assert_eq!(r.stats.memo_entries, 0);
    }
}
