//! Loom models of the pool's riskiest protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//! `cargo test -p lanecert_engine --lib loom_model`. Each test hands a
//! bounded re-statement of one [`crate::pool`] protocol to
//! [`loom::model`], which explores every interleaving up to its
//! preemption bound — so the properties here are *proved over schedules*,
//! not sampled by stress.
//!
//! Two of the pool's historical bugs were lost wakeups in the idle
//! protocol, the kind of race that survives arbitrary amounts of stress
//! testing. The models pin both mechanically:
//!
//! * the submit/sleep race — a worker must re-check for work *after*
//!   registering as a sleeper, or a submission landing between its failed
//!   search and its registration strands the task
//!   ([`tests::missing_recheck_loses_the_submit_race`] shows the model
//!   catching the protocol without the re-check);
//! * the stale-token race — a parked-with-stale-token worker must
//!   deregister itself on wake, or its leftover sleeper entry burns a
//!   future wakeup on a busy thread while a genuinely parked worker
//!   sleeps on ([`tests::reverted_stale_sleeper_fix_is_caught`] reverts
//!   that deregistration and watches the model find the bad schedule).
//!
//! The models are *ports*, not imports: [`crate::pool`]'s types bake in
//! `std::sync`, so the protocol logic is restated here over `loom::sync`
//! with the same statement order as `worker_loop`/`Parker`/`wake_one`.
//! [`crate::pool::ChunkedDeque`] itself is pure data and is reused
//! directly. Keeping the port in lockstep with `pool.rs` is part of
//! touching the idle protocol — the module-level test list is the
//! checklist.

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Condvar, Mutex};
use std::sync::Arc;

use crate::pool::ChunkedDeque;

/// Port of [`crate::pool::Parker`]: a boolean token under a mutex plus a
/// condvar, so an unpark landing before the park is remembered.
pub struct LoomParker {
    notified: Mutex<bool>,
    cvar: Condvar,
}

impl LoomParker {
    /// A parker with no pending token.
    pub fn new() -> Self {
        LoomParker {
            notified: Mutex::new(false),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until [`LoomParker::unpark`] is (or has been) called, then
    /// consumes the token. Statement-for-statement `Parker::park`.
    pub fn park(&self) {
        let mut notified = self.notified.lock().expect("parker poisoned");
        while !*notified {
            notified = self.cvar.wait(notified).expect("parker poisoned");
        }
        *notified = false;
    }

    /// Sets the token and wakes the parked thread, if any.
    pub fn unpark(&self) {
        *self.notified.lock().expect("parker poisoned") = true;
        self.cvar.notify_one();
    }
}

impl Default for LoomParker {
    fn default() -> Self {
        Self::new()
    }
}

/// Which fixes the modeled worker loop carries. The real pool always has
/// both; turning one off re-seeds its historical bug so the tests can
/// watch the model detect it.
#[derive(Clone, Copy)]
pub struct IdleFixes {
    /// Re-check for work after registering as a sleeper (the original
    /// submit/sleep-race fix).
    pub recheck_after_register: bool,
    /// Deregister after `park` returns, covering the stale-token case
    /// (the PR 3 fix).
    pub deregister_stale: bool,
}

impl IdleFixes {
    /// The shipped protocol: both fixes on.
    pub fn shipped() -> Self {
        IdleFixes {
            recheck_after_register: true,
            deregister_stale: true,
        }
    }
}

/// The idle-protocol state, mirroring the relevant slice of
/// `PoolShared`: the injector stands in for "any visible task" (the
/// per-worker deques add nothing to the sleep/wake protocol).
pub struct IdleModel {
    injector: Mutex<ChunkedDeque<u32>>,
    sleepers: Mutex<Vec<usize>>,
    parkers: Vec<LoomParker>,
    shutdown: AtomicBool,
    completed: AtomicUsize,
    total: usize,
    all_done: LoomParker,
}

impl IdleModel {
    /// A model with `workers` workers expecting `total` tasks.
    pub fn new(workers: usize, total: usize) -> Self {
        IdleModel {
            injector: Mutex::new(ChunkedDeque::new()),
            sleepers: Mutex::new(Vec::new()),
            parkers: (0..workers).map(|_| LoomParker::new()).collect(),
            shutdown: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            total,
            all_done: LoomParker::new(),
        }
    }

    /// `spawn_task`'s external path: inject, then wake one sleeper.
    pub fn submit(&self, task: u32) {
        self.injector
            .lock()
            .expect("injector poisoned")
            .push_back(task);
        self.wake_one();
    }

    /// Statement-for-statement `PoolShared::wake_one`.
    fn wake_one(&self) {
        let popped = self.sleepers.lock().expect("sleepers poisoned").pop();
        if let Some(id) = popped {
            self.parkers[id].unpark();
        }
    }

    /// Drains a task if one is visible.
    fn find_task(&self) -> Option<u32> {
        self.injector.lock().expect("injector poisoned").pop_front()
    }

    fn run_task(&self, _task: u32) {
        if self.completed.fetch_add(1, Ordering::SeqCst) + 1 == self.total {
            self.all_done.unpark();
        }
    }

    /// The `worker_loop` idle protocol, with each historical fix
    /// individually revertible. The duplicate-registration assertion is
    /// the invariant the stale-deregistration fix maintains: a worker id
    /// listed twice means a stale entry survived, and its pop will burn
    /// a wakeup on a busy thread while a parked worker sleeps on.
    pub fn worker(&self, w: usize, fixes: IdleFixes) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(task) = self.find_task() {
                self.run_task(task);
                continue;
            }
            {
                let mut sleepers = self.sleepers.lock().expect("sleepers poisoned");
                assert!(
                    !sleepers.contains(&w),
                    "duplicate sleeper entry for worker {w}: a stale registration survived"
                );
                sleepers.push(w);
            }
            if fixes.recheck_after_register
                && (self.shutdown.load(Ordering::SeqCst)
                    || !self.injector.lock().expect("injector poisoned").is_empty())
            {
                self.sleepers
                    .lock()
                    .expect("sleepers poisoned")
                    .retain(|&s| s != w);
                continue;
            }
            self.parkers[w].park();
            if fixes.deregister_stale {
                self.sleepers
                    .lock()
                    .expect("sleepers poisoned")
                    .retain(|&s| s != w);
            }
        }
    }

    /// The driver side: submit `total` tasks, wait for the last one,
    /// then shut down exactly like `WorkStealingPool::drop` (flag, then
    /// unpark everyone).
    pub fn drive_and_shutdown(&self) {
        for t in 0..self.total {
            self.submit(t as u32);
        }
        self.all_done.park();
        self.shutdown.store(true, Ordering::SeqCst);
        for parker in &self.parkers {
            parker.unpark();
        }
    }
}

/// Runs a full scenario under the model: `workers` workers with `fixes`,
/// `total` tasks, driver on the model's root thread.
pub fn check_idle_protocol(workers: usize, total: usize, fixes: IdleFixes, bound: usize) {
    let mut builder = loom::Builder::new();
    builder.preemption_bound = Some(bound);
    builder.check(move || {
        let model = Arc::new(IdleModel::new(workers, total));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let m = Arc::clone(&model);
                loom::thread::spawn(move || m.worker(w, fixes))
            })
            .collect();
        model.drive_and_shutdown();
        for h in handles {
            h.join().expect("worker thread");
        }
        assert_eq!(
            model.completed.load(Ordering::SeqCst),
            total,
            "tasks lost in the idle protocol"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_failure(f: impl Fn() + Send + Sync + 'static) -> String {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
        let payload = caught.expect_err("the model should have found a failing schedule");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }

    #[test]
    fn parker_token_survives_every_schedule() {
        // Park/unpark in both orders, including unpark-first: the token
        // must make every schedule terminate.
        loom::model(|| {
            let parker = Arc::new(LoomParker::new());
            let p = Arc::clone(&parker);
            let t = loom::thread::spawn(move || p.park());
            parker.unpark();
            t.join().expect("parked thread");
        });
    }

    #[test]
    fn shipped_idle_protocol_delivers_every_task() {
        // One worker, two tasks, full fix set: every schedule within the
        // bound completes with both tasks run and no duplicate sleeper
        // registration. This is the mechanical re-proof of both
        // historical fixes at once.
        check_idle_protocol(1, 2, IdleFixes::shipped(), 3);
    }

    #[test]
    fn shipped_idle_protocol_holds_with_two_workers() {
        // Two workers contending over the sleeper stack; smaller bound
        // to keep the schedule tree tractable.
        check_idle_protocol(2, 2, IdleFixes::shipped(), 2);
    }

    #[test]
    fn missing_recheck_loses_the_submit_race() {
        // Historical bug #1 re-seeded: without the post-registration
        // re-check, the schedule `search fails → submit (sleepers still
        // empty, nobody to wake) → register → park` strands the task and
        // the model reports the deadlock.
        let msg = model_failure(|| {
            let model = Arc::new(IdleModel::new(1, 1));
            let m = Arc::clone(&model);
            let fixes = IdleFixes {
                recheck_after_register: false,
                deregister_stale: true,
            };
            let h = loom::thread::spawn(move || m.worker(0, fixes));
            model.drive_and_shutdown();
            h.join().expect("worker thread");
        });
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn reverted_stale_sleeper_fix_is_caught() {
        // Historical bug #2 (the PR 3 fix) re-seeded: without the
        // post-park deregistration, the schedule `register → submit
        // (wake_one pops the entry, setting a token the worker never
        // parked for) → re-check finds the task → … → next park consumes
        // the stale token` leaves the registration behind, and the next
        // idle round registers a duplicate. The model finds that
        // schedule and the invariant assertion names the bug.
        let msg = model_failure(|| {
            let model = Arc::new(IdleModel::new(1, 1));
            let m = Arc::clone(&model);
            let fixes = IdleFixes {
                recheck_after_register: true,
                deregister_stale: false,
            };
            let h = loom::thread::spawn(move || m.worker(0, fixes));
            model.drive_and_shutdown();
            h.join().expect("worker thread");
        });
        assert!(
            msg.contains("duplicate sleeper entry") || msg.contains("deadlock"),
            "unexpected failure: {msg}"
        );
    }

    #[test]
    fn chunked_deque_owner_steal_conserves_items() {
        // The owner pushes and LIFO-pops while a thief FIFO-steals, all
        // under the queue lock as in the real pool: across every
        // schedule, each pushed item is popped exactly once.
        loom::model(|| {
            let deque = Arc::new(Mutex::new(ChunkedDeque::new()));
            let d = Arc::clone(&deque);
            let thief = loom::thread::spawn(move || {
                let mut stolen = Vec::new();
                for _ in 0..2 {
                    if let Some(x) = d.lock().expect("queue poisoned").pop_front() {
                        stolen.push(x);
                    }
                }
                stolen
            });
            let mut kept = Vec::new();
            for i in 0..3u32 {
                deque.lock().expect("queue poisoned").push_back(i);
            }
            if let Some(x) = deque.lock().expect("queue poisoned").pop_back() {
                kept.push(x);
            }
            let mut stolen = thief.join().expect("thief thread");
            // Drain the remainder and check conservation.
            while let Some(x) = deque.lock().expect("queue poisoned").pop_front() {
                kept.push(x);
            }
            kept.append(&mut stolen);
            kept.sort_unstable();
            assert_eq!(kept, vec![0, 1, 2]);
        });
    }
}
