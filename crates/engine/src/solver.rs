//! Parallel driver for the branch-and-bound pathwidth solver.
//!
//! [`lanecert_pathwidth::bnb`] exposes the search's root branches as
//! independent subproblems ([`bnb_root_tasks`]); this module explores
//! them as work-stealing pool tasks. Each task runs against its own
//! workspace and memo table with the heuristic seed as a fixed upper
//! bound, so tasks share nothing and their outcomes are independent of
//! scheduling; [`merge_outcomes`] then folds them deterministically
//! (best width, ties to the lowest task index). The returned
//! decomposition is therefore a **pure function of the graph and
//! options** — identical at any worker count — which is the same purity
//! invariant the engine pins for certification reports.
//!
//! Relative to the sequential [`pathwidth_bnb`], a parallel run may
//! expand more nodes (tasks do not see each other's incumbent
//! improvements, and each task carries its own work budget), but never
//! returns a different width when the search completes.

use std::sync::Arc;

use lanecert_graph::{CsrGraph, Graph};
use lanecert_pathwidth::bnb::{
    bnb_root_tasks, merge_outcomes, pathwidth_bnb, BnbOptions, BnbResult, RootSplit,
};

use crate::pool::WorkStealingPool;

/// Below this vertex count the parallel driver runs the sequential
/// solver outright: root subtrees of small graphs finish in
/// microseconds, so fan-out overhead would dominate (the same reasoning
/// as the verify-shard cutoff).
pub const PAR_BNB_MIN_VERTICES: usize = 64;

/// Minimum number of root branches worth scattering; with fewer, the
/// sequential solver's shared incumbent does strictly less work.
pub const PAR_BNB_MIN_TASKS: usize = 2;

/// Computes the pathwidth with the branch-and-bound solver, exploring
/// independent root branches on `pool`.
///
/// Equivalent to [`pathwidth_bnb`] in width and validity, and —
/// because tasks are isolated and merged in task order — returns the
/// exact same result at any worker count. Falls back to the sequential
/// solver below [`PAR_BNB_MIN_VERTICES`] vertices or
/// [`PAR_BNB_MIN_TASKS`] root branches.
///
/// # Panics
///
/// Panics if called from a worker thread of `pool` itself (the
/// underlying [`WorkStealingPool::scatter`] would deadlock).
pub fn par_pathwidth_bnb(pool: &WorkStealingPool, g: &Graph, opts: &BnbOptions) -> BnbResult {
    let _span = lanecert_obs::span!("par_pathwidth_bnb");
    if g.vertex_count() < PAR_BNB_MIN_VERTICES {
        return pathwidth_bnb(g, opts);
    }
    match bnb_root_tasks(g, opts) {
        RootSplit::Done(r) => *r,
        RootSplit::Branches { seed, tasks } if tasks.len() >= PAR_BNB_MIN_TASKS => {
            let csr = Arc::new(CsrGraph::from_graph(g));
            let opts = Arc::new(opts.clone());
            let (lb, ub) = (seed.lower_bound, seed.width);
            let outcomes = pool.scatter(
                tasks
                    .into_iter()
                    .map(|t| {
                        let csr = Arc::clone(&csr);
                        let opts = Arc::clone(&opts);
                        move || t.run(&csr, lb, ub, &opts)
                    })
                    .collect(),
            );
            merge_outcomes(g, seed, &outcomes)
        }
        RootSplit::Branches { .. } => pathwidth_bnb(g, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;
    use lanecert_pathwidth::solver::pathwidth_exact;
    use rand::SeedableRng;

    #[test]
    fn small_graphs_take_the_sequential_path() {
        let pool = WorkStealingPool::new(2);
        let g = generators::grid(3, 5);
        let r = par_pathwidth_bnb(&pool, &g, &BnbOptions::default());
        let (pw, _) = pathwidth_exact(&g).unwrap();
        assert_eq!(r.width, pw);
        assert!(r.optimal);
    }

    /// A budget small enough that a 68-vertex search cannot stall a
    /// test, yet deterministic like any other (exhaustion is part of the
    /// pure function).
    fn test_opts() -> BnbOptions {
        BnbOptions {
            max_work: 200_000,
            ..BnbOptions::default()
        }
    }

    #[test]
    fn parallel_run_above_the_cutoff_is_valid_and_seed_bounded() {
        // 4×17 grid: 68 vertices (above the sequential cutoff), seed is
        // not known-optimal (degeneracy 2 < pathwidth 4), so root
        // branches really run on the pool. Whatever the budget leaves
        // unproved, the result is valid and never worse than the seed.
        let pool = WorkStealingPool::new(4);
        let g = generators::grid(4, 17);
        let r = par_pathwidth_bnb(&pool, &g, &test_opts());
        r.decomposition.validate(&g).unwrap();
        assert_eq!(r.width, 4);
        assert!(r.width <= r.stats.seed_width);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let opts = test_opts();
        for _ in 0..3 {
            let g = generators::gnp(70, 0.08, &mut rng);
            let results: Vec<BnbResult> = [1, 2, 8]
                .into_iter()
                .map(|w| par_pathwidth_bnb(&WorkStealingPool::new(w), &g, &opts))
                .collect();
            for r in &results[1..] {
                assert_eq!(r.width, results[0].width);
                assert_eq!(r.optimal, results[0].optimal);
                assert_eq!(
                    r.decomposition.bags(),
                    results[0].decomposition.bags(),
                    "decomposition must be a pure function of the graph"
                );
                assert_eq!(r.stats.nodes, results[0].stats.nodes);
            }
            results[0].decomposition.validate(&g).unwrap();
        }
    }
}
