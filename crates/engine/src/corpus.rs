//! Declarative, streaming corpora: families × sizes × seeds.
//!
//! A [`CorpusSpec`] names *what* to certify — graph families from
//! `lanecert_graph::generators`, instance sizes, and RNG seeds — and
//! [`CorpusSpec::jobs`] streams the cross product lazily as
//! [`BatchJob`]s: each instance is generated on demand, so a corpus of
//! thousands of configurations never sits in memory at once and the
//! engine's bounded in-flight window is the only working set.
//!
//! Families with a known decomposition ([`CorpusFamily::hints_known`])
//! attach a [`ProverHint`] carrying an interval representation that
//! witnesses their pathwidth, which is how corpora scale past the
//! automatic-derivation limit; the rest rely on the certifier's hint
//! resolution (exact solver, then heuristic fallback) or deliberately
//! exercise refusal paths (e.g. [`CorpusFamily::DisjointPaths`] streams
//! disconnected no-instances).
//!
//! Reproducibility: instances are pure functions of `(family, n, seed)`
//! on top of the workspace's pinned `StdRng` stream (regression-tested in
//! the `rand` shim), so a corpus spec is a complete, platform-independent
//! description of a workload.

use lanecert::{BatchJob, Configuration, ProverHint};
use lanecert_graph::{generators, Graph, VertexId};
use lanecert_pathwidth::{Interval, IntervalRep, PathDecomposition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A graph family the corpus pipeline can stream.
///
/// Every variant maps `(n, seed)` to one configuration; deterministic
/// families ignore the seed except for identifier assignment.
#[derive(Clone, Debug, PartialEq)]
pub enum CorpusFamily {
    /// The path `P_n` (pathwidth 1), with its trivial representation.
    Path,
    /// The cycle `C_n` (pathwidth 2), with a Figure-1-style
    /// representation. Requires `n ≥ 3`.
    Cycle,
    /// The ladder `P_{n/2} × K_2` (pathwidth 2), with a sliding-bag
    /// representation.
    Ladder,
    /// A caterpillar with `n/3` spine vertices and two legs each
    /// (pathwidth 1), with a spine-walk representation.
    Caterpillar,
    /// A random connected graph of pathwidth ≤ `k` (bag-walk
    /// construction), with the representation its generator witnesses.
    RandomPathwidth {
        /// Pathwidth bound of the generated graph.
        k: usize,
        /// Probability of each extra in-bag edge.
        density: f64,
    },
    /// A random interval graph with interval lengths ≤ `max_len` on a
    /// span of `4n`; the generating intervals are the representation.
    /// May be disconnected (a refusal-path instance).
    RandomInterval {
        /// Maximum interval length.
        max_len: u32,
    },
    /// A uniformly random tree (no supplied representation — exercises
    /// the certifier's automatic hint derivation).
    RandomTree,
    /// A preferential-attachment tree (no supplied representation;
    /// hub-heavy degrees).
    PowerLawTree,
    /// An Erdős–Rényi `G(n, p)` (no supplied representation; may be
    /// disconnected or wide — the fuzz-shaped corner of a corpus).
    Gnp {
        /// Edge probability.
        p: f64,
    },
    /// Two disjoint paths — always disconnected, so every instance is a
    /// model-level refusal. Keeps refusal accounting honest at scale.
    DisjointPaths,
}

impl CorpusFamily {
    /// The family's display name (used in job names and reports).
    pub fn name(&self) -> &'static str {
        match self {
            CorpusFamily::Path => "path",
            CorpusFamily::Cycle => "cycle",
            CorpusFamily::Ladder => "ladder",
            CorpusFamily::Caterpillar => "caterpillar",
            CorpusFamily::RandomPathwidth { .. } => "random-pathwidth",
            CorpusFamily::RandomInterval { .. } => "random-interval",
            CorpusFamily::RandomTree => "random-tree",
            CorpusFamily::PowerLawTree => "power-law-tree",
            CorpusFamily::Gnp { .. } => "gnp",
            CorpusFamily::DisjointPaths => "disjoint-paths",
        }
    }

    /// `true` when instances carry a [`ProverHint`] with a known interval
    /// representation (so the family scales past the automatic-derivation
    /// limit).
    pub fn hints_known(&self) -> bool {
        matches!(
            self,
            CorpusFamily::Path
                | CorpusFamily::Cycle
                | CorpusFamily::Ladder
                | CorpusFamily::Caterpillar
                | CorpusFamily::RandomPathwidth { .. }
                | CorpusFamily::RandomInterval { .. }
        )
    }

    /// Builds one instance: the graph and, for representation-bearing
    /// families, the interval representation witnessing its pathwidth.
    pub fn instance(&self, n: usize, seed: u64) -> (Graph, Option<IntervalRep>) {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            CorpusFamily::Path => {
                let g = generators::path_graph(n);
                let rep =
                    IntervalRep::new((0..n as u32).map(|i| Interval::new(i, i + 1)).collect());
                (g, Some(rep))
            }
            CorpusFamily::Cycle => {
                let n = n.max(3);
                let g = generators::cycle_graph(n);
                // Bags {v0, vi, v(i+1)}: every rim edge sits in its own
                // bag and the closing edge in the last one; width 2.
                let bags = (1..n - 1)
                    .map(|i| vec![VertexId::new(0), VertexId::new(i), VertexId::new(i + 1)])
                    .collect();
                (g, Some(rep_from_bags(bags, n)))
            }
            CorpusFamily::Ladder => {
                let cols = (n / 2).max(2);
                let g = generators::ladder(cols);
                // Vertex (r, c) lives at index r * cols + c; slide a pair
                // of width-3 bags across each rung: width 2.
                let at = |r: usize, c: usize| VertexId::new(r * cols + c);
                let mut bags = Vec::with_capacity(2 * cols);
                for c in 0..cols - 1 {
                    bags.push(vec![at(0, c), at(1, c), at(0, c + 1)]);
                    bags.push(vec![at(1, c), at(0, c + 1), at(1, c + 1)]);
                }
                (g, Some(rep_from_bags(bags, 2 * cols)))
            }
            CorpusFamily::Caterpillar => {
                let spine = (n / 3).max(2);
                let legs = 2;
                let g = generators::caterpillar(spine, legs);
                // Walk the spine; each spine vertex hosts one bag per leg
                // plus the bag sharing it with its successor: width 1.
                let mut bags = Vec::with_capacity(spine * (legs + 1));
                for s in 0..spine {
                    for leg in 0..legs {
                        bags.push(vec![
                            VertexId::new(s),
                            VertexId::new(spine + s * legs + leg),
                        ]);
                    }
                    if s + 1 < spine {
                        bags.push(vec![VertexId::new(s), VertexId::new(s + 1)]);
                    }
                }
                let vertices = g.vertex_count();
                (g, Some(rep_from_bags(bags, vertices)))
            }
            CorpusFamily::RandomPathwidth { k, density } => {
                let n = n.max(k + 1);
                let (g, bags) = generators::random_pathwidth_graph(n, *k, *density, &mut rng);
                (g, Some(rep_from_bags(bags, n)))
            }
            CorpusFamily::RandomInterval { max_len } => {
                let span = (4 * n.max(1)) as u32;
                let (g, intervals) =
                    generators::random_interval_graph(n, span, (*max_len).min(span), &mut rng);
                let rep = IntervalRep::new(
                    intervals
                        .into_iter()
                        .map(|(lo, hi)| Interval::new(lo, hi))
                        .collect(),
                );
                (g, Some(rep))
            }
            CorpusFamily::RandomTree => (generators::random_tree(n, &mut rng), None),
            CorpusFamily::PowerLawTree => (generators::power_law_tree(n, &mut rng), None),
            CorpusFamily::Gnp { p } => (generators::gnp(n, *p, &mut rng), None),
            CorpusFamily::DisjointPaths => {
                let n = n.max(2);
                let g = generators::disjoint_union(
                    &generators::path_graph(n / 2),
                    &generators::path_graph(n - n / 2),
                );
                (g, None)
            }
        }
    }
}

fn rep_from_bags(bags: Vec<Vec<VertexId>>, n: usize) -> IntervalRep {
    IntervalRep::from_decomposition(&PathDecomposition::new(bags), n)
}

/// A declarative corpus: the cross product `families × sizes × seeds`,
/// streamed lazily.
///
/// ```
/// use lanecert_engine::{CorpusFamily, CorpusSpec};
///
/// let spec = CorpusSpec::new()
///     .family(CorpusFamily::Path)
///     .family(CorpusFamily::Cycle)
///     .sizes([16, 64])
///     .seeds([1, 2, 3]);
/// assert_eq!(spec.len(), 2 * 2 * 3);
/// let first = spec.jobs().next().unwrap();
/// assert_eq!(first.name.as_deref(), Some("path/n16/s1"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CorpusSpec {
    families: Vec<CorpusFamily>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
}

impl CorpusSpec {
    /// An empty spec (streams nothing until families, sizes, and seeds
    /// are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one family.
    pub fn family(mut self, family: CorpusFamily) -> Self {
        self.families.push(family);
        self
    }

    /// Adds families.
    pub fn families(mut self, families: impl IntoIterator<Item = CorpusFamily>) -> Self {
        self.families.extend(families);
        self
    }

    /// Adds one instance size.
    pub fn size(mut self, n: usize) -> Self {
        self.sizes.push(n);
        self
    }

    /// Adds instance sizes.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes.extend(sizes);
        self
    }

    /// Adds one RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds RNG seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Number of jobs the spec will stream.
    pub fn len(&self) -> usize {
        self.families.len() * self.sizes.len() * self.seeds.len()
    }

    /// `true` when the spec streams no jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams the corpus as [`BatchJob`]s, one per
    /// `(family, size, seed)` triple in spec order, building each
    /// instance only when the pipeline pulls it. Jobs are named
    /// `family/nSIZE/sSEED`; identifier assignment reuses the instance
    /// seed.
    pub fn jobs(&self) -> impl Iterator<Item = BatchJob> + '_ {
        self.families.iter().flat_map(move |family| {
            self.sizes.iter().flat_map(move |&n| {
                self.seeds.iter().map(move |&seed| {
                    let (graph, rep) = family.instance(n, seed);
                    let cfg = Configuration::with_random_ids(graph, seed);
                    let mut job =
                        BatchJob::new(cfg).named(format!("{}/n{}/s{}", family.name(), n, seed));
                    if let Some(rep) = rep {
                        job = job.with_hint(ProverHint::with_representation(rep));
                    }
                    job
                })
            })
        })
    }

    /// All representation-bearing benchmark families at their default
    /// parameters — the corpus the throughput sweeps stream.
    pub fn benchmark_families() -> Vec<CorpusFamily> {
        vec![
            CorpusFamily::Path,
            CorpusFamily::Cycle,
            CorpusFamily::Ladder,
            CorpusFamily::Caterpillar,
            CorpusFamily::RandomPathwidth { k: 2, density: 0.4 },
        ]
    }
}

/// A named set of MSO₂ formulas to sweep through the compiled
/// (Courcelle front-end) scheme — the formula-level analogue of
/// [`CorpusSpec`].
///
/// [`FormulaCorpus::standard`] starts from the catalog of
/// `lanecert::compiled::standard_formulas`; [`FormulaCorpus::parse`]
/// adds runtime-supplied formulas in the s-expression syntax of
/// `lanecert_mso::sexpr`, so a workload file can sweep user formulas the
/// workspace has never seen:
///
/// ```
/// use lanecert_engine::FormulaCorpus;
///
/// let corpus = FormulaCorpus::standard()
///     .parse("has-edge", "(exists-edge e true)")
///     .unwrap();
/// assert!(corpus.names().any(|n| n == "has-edge"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FormulaCorpus {
    entries: Vec<(String, lanecert_mso::Formula)>,
}

impl FormulaCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard catalog: every formula of
    /// `lanecert::compiled::standard_formulas`, under its catalog name.
    pub fn standard() -> Self {
        let mut corpus = Self::new();
        for entry in lanecert::compiled::standard_formulas() {
            corpus = corpus.formula(entry.name, entry.formula());
        }
        corpus
    }

    /// Adds one formula under a display name.
    pub fn formula(mut self, name: impl Into<String>, formula: lanecert_mso::Formula) -> Self {
        self.entries.push((name.into(), formula));
        self
    }

    /// Parses and adds an s-expression formula (the runtime-supplied
    /// path; see `lanecert_mso::sexpr` for the syntax).
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidSpec`](lanecert::CertError) when `src` does
    /// not parse.
    pub fn parse(self, name: impl Into<String>, src: &str) -> Result<Self, lanecert::CertError> {
        let formula = lanecert_mso::sexpr::parse(src).map_err(|e| {
            lanecert::CertError::InvalidSpec(format!("formula does not parse: {e}"))
        })?;
        Ok(self.formula(name, formula))
    }

    /// Number of formulas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the corpus holds no formulas.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The display names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// The `(name, formula)` pairs, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &lanecert_mso::Formula)> {
        self.entries.iter().map(|(n, f)| (n.as_str(), f))
    }

    /// Builds one compiled certifier per formula (insertion order). Each
    /// build is reported individually — a formula whose compiled state
    /// space overruns its freeze budget yields `Err(InvalidSpec)` without
    /// sinking the rest of the sweep.
    pub fn certifiers(
        &self,
    ) -> impl Iterator<Item = (&str, Result<lanecert::Certifier, lanecert::CertError>)> {
        self.entries.iter().map(|(name, formula)| {
            let built = lanecert::Certifier::builder()
                .compiled(formula.clone())
                .build();
            (name.as_str(), built)
        })
    }

    /// A `pathwidth ≤ 1` yes-instance for the named standard formula —
    /// the graph the smoke sweeps certify it on. Formulas differ in
    /// where they hold (`max-degree-1` only on a single edge,
    /// `vertex-cover-1` on stars, the rest on paths), so the witness is
    /// per-name; unknown names get a path.
    pub fn witness(name: &str, n: usize) -> Graph {
        match name {
            "max-degree-1" => generators::path_graph(2),
            "vertex-cover-1" => generators::star(n.max(3)),
            _ => generators::path_graph(n.max(3)),
        }
    }

    /// One [`BatchJob`] per formula on its [`FormulaCorpus::witness`]
    /// graph (a hintless yes-instance; the compiled scheme's automatic
    /// decomposition covers pathwidth-1 graphs of these sizes).
    pub fn witness_jobs(&self, n: usize, seed: u64) -> impl Iterator<Item = BatchJob> + '_ {
        self.entries.iter().map(move |(name, _)| {
            let cfg = Configuration::with_random_ids(Self::witness(name, n), seed);
            BatchJob::new(cfg).named(format!("{name}/n{n}/s{seed}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representations_witness_their_graphs() {
        for family in [
            CorpusFamily::Path,
            CorpusFamily::Cycle,
            CorpusFamily::Ladder,
            CorpusFamily::Caterpillar,
            CorpusFamily::RandomPathwidth { k: 2, density: 0.5 },
            CorpusFamily::RandomInterval { max_len: 5 },
        ] {
            for n in [8usize, 33, 100] {
                let (g, rep) = family.instance(n, 7);
                let rep = rep.expect("hinted family");
                rep.validate(&g)
                    .unwrap_or_else(|e| panic!("{}/n{n}: {e}", family.name()));
                assert!(family.hints_known());
            }
        }
    }

    #[test]
    fn structured_family_widths_are_tight() {
        // The deterministic families promise constant widths
        // (`IntervalRep::width` is the bag size, pathwidth + 1).
        for (family, width) in [
            (CorpusFamily::Path, 2),
            (CorpusFamily::Cycle, 3),
            (CorpusFamily::Ladder, 3),
            (CorpusFamily::Caterpillar, 2),
        ] {
            let (_, rep) = family.instance(60, 3);
            assert_eq!(rep.unwrap().width(), width, "{}", family.name());
        }
    }

    #[test]
    fn hintless_families_build() {
        for family in [
            CorpusFamily::RandomTree,
            CorpusFamily::PowerLawTree,
            CorpusFamily::Gnp { p: 0.2 },
            CorpusFamily::DisjointPaths,
        ] {
            let (g, rep) = family.instance(20, 1);
            assert_eq!(g.vertex_count(), 20, "{}", family.name());
            assert!(rep.is_none());
            assert!(!family.hints_known());
        }
        // Disjoint paths are disconnected by construction.
        let (g, _) = CorpusFamily::DisjointPaths.instance(12, 2);
        assert!(!lanecert_graph::components::is_connected(&g));
    }

    #[test]
    fn formula_corpus_lists_parses_and_builds() {
        let corpus = FormulaCorpus::standard();
        // The whole standard catalog is present, in catalog order.
        let names: Vec<&str> = corpus.names().collect();
        assert!(names.len() >= 6, "catalog shrank: {names:?}");
        assert!(names.contains(&"connected") && names.contains(&"bipartite"));
        // Runtime-parsed formulas join the sweep; parse failures are
        // reported as InvalidSpec.
        let with_user = corpus
            .clone()
            .parse("has-edge", "(exists-edge e true)")
            .unwrap();
        assert_eq!(with_user.len(), corpus.len() + 1);
        assert!(matches!(
            FormulaCorpus::new().parse("broken", "(exists-vertex").err(),
            Some(lanecert::CertError::InvalidSpec(_))
        ));
        // Witness jobs cover every formula, named like corpus jobs.
        let jobs: Vec<_> = with_user.witness_jobs(8, 3).collect();
        assert_eq!(jobs.len(), with_user.len());
        assert_eq!(jobs[0].name.as_deref(), Some("connected/n8/s3"));
        // The cheap user formula builds and certifies its witness
        // end-to-end (the heavyweight catalog builds are exercised by the
        // engine parity suite and the release smoke sweep).
        let (name, built) = FormulaCorpus::new()
            .parse("has-edge", "(exists-edge e true)")
            .unwrap()
            .certifiers()
            .next()
            .map(|(n, b)| (n.to_string(), b))
            .unwrap();
        let certifier = built.unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = Configuration::with_random_ids(FormulaCorpus::witness(&name, 8), 1);
        assert!(certifier.run(&cfg).unwrap().accepted());
    }

    #[test]
    fn spec_streams_the_cross_product_deterministically() {
        let spec = CorpusSpec::new()
            .families([CorpusFamily::Path, CorpusFamily::Cycle])
            .sizes([6, 9])
            .seed(11)
            .seed(12);
        assert_eq!(spec.len(), 8);
        let names: Vec<String> = spec.jobs().map(|j| j.name.unwrap()).collect();
        assert_eq!(names[0], "path/n6/s11");
        assert_eq!(names[7], "cycle/n9/s12");
        assert_eq!(names.len(), 8);
        // Same spec, same stream: configurations are seed-derived.
        let a: Vec<_> = spec.jobs().map(|j| j.cfg.n()).collect();
        let b: Vec<_> = spec.jobs().map(|j| j.cfg.n()).collect();
        assert_eq!(a, b);
    }
}
