//! `lanecert-engine` — the parallel certification engine.
//!
//! The paper's verifier is embarrassingly parallel by construction: every
//! vertex accepts or rejects from its local view alone. This crate turns
//! that into throughput. It has three layers:
//!
//! * [`pool`] — a hand-rolled work-stealing executor on `std::thread`
//!   (no crates.io in the build environment): per-worker chunked deques,
//!   parker-based idle handling, and deterministic result ordering via
//!   submission-indexed slots.
//! * [`corpus`] — declarative streaming corpora: a [`CorpusSpec`]
//!   (families × sizes × seeds over the `lanecert_graph` generators)
//!   lazily streams [`BatchJob`](lanecert::BatchJob)s, attaching
//!   known-width interval representations where the family provides one.
//! * [`engine`] — the pipeline: [`Engine::run`] fans each job through
//!   prove → encode → verify, **both stages on the pool** (canonical
//!   class ids — `lanecert_algebra::FrozenAlgebra` — made proving a pure
//!   function of the job, so nothing serializes on the driver any more),
//!   sharding per-vertex verification of large configurations across
//!   workers in continuation style, and folds outcomes into the standard
//!   [`BatchReport`](lanecert::BatchReport) — **bit-identical** to the
//!   sequential [`BatchRunner`](lanecert::BatchRunner), labels and
//!   label-size statistics included, regardless of worker count or
//!   scheduling (pinned by the parity proptests).
//!
//! ```
//! use lanecert::Certifier;
//! use lanecert_algebra::{props::Connected, Algebra};
//! use lanecert_engine::{CorpusFamily, CorpusSpec, Engine};
//!
//! let engine = Engine::builder()
//!     .certifier(
//!         Certifier::builder()
//!             .property(Algebra::shared(Connected))
//!             .pathwidth(2)
//!             .build()
//!             .unwrap(),
//!     )
//!     .workers(2)
//!     .build()
//!     .unwrap();
//! let corpus = CorpusSpec::new()
//!     .family(CorpusFamily::Cycle)
//!     .sizes([16, 48])
//!     .seeds([1, 2]);
//! let report = engine.run(corpus.jobs());
//! assert!(report.batch.all_accepted());
//! println!("{}", report.throughput.summary());
//! ```

pub mod pool;
pub use pool::{ChunkedDeque, Parker, Spawner, WorkStealingPool};

#[cfg(loom)]
pub mod loom_model;

pub mod corpus;
pub use corpus::{CorpusFamily, CorpusSpec, FormulaCorpus};

pub mod solver;
pub use solver::par_pathwidth_bnb;

pub mod engine;
pub use engine::{Engine, EngineBuilder, EngineReport, Throughput};

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert::{BatchJob, BatchRunner, CertError, Certifier, Configuration};
    use lanecert_algebra::{props::Bipartite, props::Connected, Algebra};
    use lanecert_graph::generators;

    fn connected_certifier() -> Certifier {
        Certifier::builder()
            .property(Algebra::shared(Connected))
            .pathwidth(2)
            .build()
            .unwrap()
    }

    fn mixed_corpus() -> CorpusSpec {
        CorpusSpec::new()
            .families(CorpusSpec::benchmark_families())
            .family(CorpusFamily::DisjointPaths)
            .sizes([8, 20])
            .seeds([3, 9])
    }

    #[test]
    fn engine_report_matches_batch_runner_exactly() {
        let corpus = mixed_corpus();
        let sequential = BatchRunner::new(connected_certifier()).run(corpus.jobs());
        for workers in [1, 2, 5] {
            let engine = Engine::builder()
                .certifier(connected_certifier())
                .workers(workers)
                .build()
                .unwrap();
            let parallel = engine.run(corpus.jobs());
            assert_eq!(parallel.batch, sequential, "{workers} workers");
            assert_eq!(parallel.throughput.jobs, corpus.len());
            assert_eq!(parallel.throughput.workers, workers);
            // Disjoint-paths jobs refuse; the rest certify.
            assert_eq!(parallel.throughput.certified, sequential.accepted());
            assert!(parallel.throughput.vertices > 0);
            assert!(parallel.throughput.wall_seconds > 0.0);
        }
    }

    #[test]
    fn sharded_verification_is_bit_identical() {
        // Force the per-vertex shard path with a low threshold and check
        // against the inline path job by job.
        let jobs = || {
            (0..6u64).map(|s| {
                BatchJob::new(Configuration::with_random_ids(
                    generators::cycle_graph(64),
                    s,
                ))
                .named(format!("C64/{s}"))
            })
        };
        let inline = Engine::builder()
            .certifier(connected_certifier())
            .workers(1)
            .build()
            .unwrap()
            .run(jobs());
        let sharded = Engine::builder()
            .certifier(connected_certifier())
            .workers(4)
            .shard_threshold(16)
            .build()
            .unwrap()
            .run(jobs());
        assert_eq!(sharded.batch, inline.batch);
        assert!(inline.batch.all_accepted());
    }

    #[test]
    fn pool_proving_is_bit_identical_to_driver_proving() {
        // Canonical class ids made proving a pure function of the job:
        // the default pool-proving mode, the legacy driver-proving mode,
        // and the sequential BatchRunner all agree bit for bit — sizes
        // included, not just verdicts.
        let corpus = mixed_corpus();
        let sequential = BatchRunner::new(connected_certifier()).run(corpus.jobs());
        let pool = Engine::builder()
            .certifier(connected_certifier())
            .workers(4)
            .build()
            .unwrap()
            .run(corpus.jobs());
        let driver = Engine::builder()
            .certifier(connected_certifier())
            .workers(4)
            .parallel_prove(false)
            .build()
            .unwrap()
            .run(corpus.jobs());
        assert_eq!(pool.batch, sequential);
        assert_eq!(driver.batch, sequential);
        // Prove time is attributed from inside the task, so both
        // placements account it — pool mode sums worker CPU-seconds,
        // driver mode times its own loop.
        assert!(pool.throughput.prove_seconds > 0.0);
        assert!(driver.throughput.prove_seconds > 0.0);
    }

    #[test]
    fn sealed_algebras_fall_back_to_driver_proving_and_keep_parity() {
        // pathwidth 4 → max_lanes 5 → freeze arity 10 > MAX_FREEZE_ARITY:
        // the scheme rides a sealed table whose tail ids are
        // arrival-ordered, so the builder's auto default must keep the
        // prove stage on the driver — and with that placement the report
        // stays bit-identical to the sequential BatchRunner.
        let sealed = || {
            Certifier::builder()
                .property(Algebra::shared(Connected))
                .pathwidth(4)
                .build()
                .unwrap()
        };
        assert!(!sealed().scheme().canonical_labels());
        let jobs = || {
            (0..6u64).map(|s| {
                BatchJob::new(Configuration::with_random_ids(
                    generators::cycle_graph(12 + s as usize),
                    s,
                ))
            })
        };
        let sequential = BatchRunner::new(sealed()).run(jobs());
        let engine = Engine::builder()
            .certifier(sealed())
            .workers(4)
            .build()
            .unwrap();
        let parallel = engine.run(jobs());
        assert_eq!(parallel.batch, sequential);
        // Driver-prove placement shows up in the accounting.
        assert!(parallel.throughput.prove_seconds > 0.0);
    }

    #[test]
    fn traced_run_attaches_observability_and_stays_bit_identical() {
        // Tracing is a pure observer: the traced report equals the
        // untraced one (BatchReport equality compares outcomes only),
        // and the run gains a TraceLog plus an ObsReport with stage
        // histograms and pool deltas. Other tests in this binary may
        // run concurrently and record into the same session, so the
        // assertions are presence/lower bounds, never exact counts.
        let corpus = mixed_corpus();
        let builder = || {
            Engine::builder()
                .certifier(connected_certifier())
                .workers(2)
                .shard_threshold(8)
        };
        let untraced = builder().build().unwrap().run(corpus.jobs());
        assert!(untraced.trace.is_none());
        assert!(untraced.batch.obs.is_none());

        let traced = builder()
            .trace(lanecert_obs::TraceConfig::new())
            .build()
            .unwrap()
            .run(corpus.jobs());
        assert_eq!(traced.batch, untraced.batch);

        let log = traced.trace.as_ref().expect("trace log");
        assert!(log.event_count() > 0);
        assert!(!log.to_jsonl(traced.batch.obs.as_ref()).is_empty());

        let obs = traced.batch.obs.as_ref().expect("obs report");
        assert!(obs.wall_ns > 0);
        let jobs = corpus.len() as u64;
        let prove = obs.histogram(lanecert_obs::names::PROVE_NS).unwrap();
        assert!(prove.count >= jobs, "prove samples: {}", prove.count);
        assert!(obs
            .histogram(lanecert_obs::names::VERIFY_SHARD_NS)
            .is_some());
        assert!(obs.counter(lanecert_obs::names::LABELS_DECODED) > 0);
        assert!(obs.counter(lanecert_obs::names::LABEL_BYTES_READ) > 0);

        let pool = obs.pool.as_ref().expect("pool stats");
        assert_eq!(pool.workers, 2);
        assert!(pool.total_tasks() >= jobs);
    }

    #[test]
    fn empty_source_yields_empty_report() {
        let engine = Engine::builder()
            .certifier(connected_certifier())
            .workers(2)
            .build()
            .unwrap();
        let report = engine.run(std::iter::empty());
        assert!(report.batch.outcomes.is_empty());
        assert_eq!(report.throughput.jobs, 0);
        assert_eq!(report.throughput.jobs_per_sec(), 0.0);
    }

    #[test]
    fn builder_requires_a_certifier() {
        assert!(matches!(
            Engine::builder().build().err().unwrap(),
            CertError::InvalidSpec(_)
        ));
    }

    #[test]
    fn streaming_window_bounds_do_not_drop_or_reorder_jobs() {
        // Many more jobs than the window admits; names must come back in
        // submission order with nothing lost.
        let engine = Engine::builder()
            .certifier(
                Certifier::builder()
                    .property(Algebra::shared(Bipartite))
                    .pathwidth(2)
                    .build()
                    .unwrap(),
            )
            .workers(3)
            .window_per_worker(1)
            .build()
            .unwrap();
        let total = 40usize;
        let report = engine.run((0..total).map(|i| {
            // Odd cycles refuse (non-bipartite); even ones accept.
            BatchJob::new(Configuration::with_random_ids(
                generators::cycle_graph(i + 3),
                i as u64,
            ))
        }));
        assert_eq!(report.batch.outcomes.len(), total);
        for (i, outcome) in report.batch.outcomes.iter().enumerate() {
            assert_eq!(outcome.name, i.to_string());
            let odd_cycle = (i + 3) % 2 == 1;
            assert_eq!(
                matches!(outcome.result, Err(CertError::PropertyViolated)),
                odd_cycle,
                "job {i}"
            );
        }
        assert_eq!(report.batch.refused(), total / 2);
    }
}
