//! A hand-rolled work-stealing thread pool on `std::thread`.
//!
//! The build environment has no crates.io access, so the executor itself
//! is part of the subsystem: per-worker [`ChunkedDeque`]s (LIFO for the
//! owner, FIFO for thieves), an external injector queue, and
//! [`Parker`]-based idle handling (no spinning — an idle worker sleeps on
//! its own condvar until a submission unparks it).
//!
//! Scheduling is intentionally *non*-deterministic — whichever worker is
//! free takes the next task — but result collection is deterministic:
//! [`WorkStealingPool::scatter`] writes each task's output into its
//! submission-indexed slot, so callers observe input order regardless of
//! interleaving. The certification pipeline ([`crate::Engine`]) builds on
//! the same indexed-slot discipline for its job and shard results.
//!
//! Tasks must not block on other pool tasks (a blocked worker is a lost
//! execution slot, and every-worker-blocked is a deadlock). The engine
//! obeys this by running its pipeline in continuation style: a job that
//! fans out per-vertex shards never waits for them — the last shard to
//! finish assembles the report.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Number of items per segment of a [`ChunkedDeque`].
const SEGMENT_CAPACITY: usize = 32;

/// A double-ended queue of fixed-capacity segments.
///
/// Pushing allocates at most one small segment; popping never shifts
/// items. Compared to one flat growable ring this keeps each allocation
/// small and recycles memory segment-by-segment as thieves drain the
/// front — the classic chunked layout of work-stealing deques.
#[derive(Debug)]
pub struct ChunkedDeque<T> {
    segments: VecDeque<VecDeque<T>>,
    len: usize,
}

impl<T> Default for ChunkedDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ChunkedDeque<T> {
    /// An empty deque (no segments allocated yet).
    pub fn new() -> Self {
        Self {
            segments: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues at the back (the owner's end).
    pub fn push_back(&mut self, item: T) {
        let needs_segment = self
            .segments
            .back()
            .is_none_or(|s| s.len() >= SEGMENT_CAPACITY);
        if needs_segment {
            self.segments
                .push_back(VecDeque::with_capacity(SEGMENT_CAPACITY));
        }
        self.segments
            .back_mut()
            .expect("segment exists")
            .push_back(item);
        self.len += 1;
    }

    /// Dequeues from the back — the owner's LIFO end (freshly spawned
    /// subtasks run first, while their inputs are hot).
    pub fn pop_back(&mut self) -> Option<T> {
        loop {
            let seg = self.segments.back_mut()?;
            if let Some(item) = seg.pop_back() {
                self.len -= 1;
                return Some(item);
            }
            self.segments.pop_back();
        }
    }

    /// Dequeues from the front — the thieves' FIFO end (stealing the
    /// oldest work minimizes contention with the owner).
    pub fn pop_front(&mut self) -> Option<T> {
        loop {
            let seg = self.segments.front_mut()?;
            if let Some(item) = seg.pop_front() {
                self.len -= 1;
                return Some(item);
            }
            self.segments.pop_front();
        }
    }
}

/// One worker's sleep/wake switch: a boolean token under a mutex plus a
/// condvar. `unpark` before `park` is remembered (the token), so the
/// submit/sleep race cannot lose a wakeup.
#[derive(Debug, Default)]
pub struct Parker {
    notified: Mutex<bool>,
    cvar: Condvar,
}

impl Parker {
    /// Blocks until [`Parker::unpark`] is (or has been) called, then
    /// consumes the token.
    pub fn park(&self) {
        let mut notified = self.notified.lock().expect("parker poisoned");
        while !*notified {
            notified = self.cvar.wait(notified).expect("parker poisoned");
        }
        *notified = false;
    }

    /// Sets the token and wakes the parked thread, if any.
    pub fn unpark(&self) {
        *self.notified.lock().expect("parker poisoned") = true;
        self.cvar.notify_one();
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Always-on pool instrumentation: relaxed atomics bumped at the
/// scheduling decision points, snapshotted into a
/// [`lanecert_obs::PoolStats`] by [`WorkStealingPool::stats`]. The
/// counters ride the locks already taken at each site, so keeping them
/// unconditional costs a handful of uncontended atomic adds per task.
#[derive(Debug)]
struct PoolCounters {
    /// Tasks lifted from another worker's deque.
    steals: AtomicU64,
    /// Tasks pushed to the injector (submissions from outside the pool).
    injector_pushes: AtomicU64,
    /// Tasks a worker popped from the injector.
    injector_pops: AtomicU64,
    /// Park transitions (a worker went to sleep).
    parks: AtomicU64,
    /// Unpark transitions (a sleeping worker was woken by a submission).
    unparks: AtomicU64,
    /// Tasks executed, per worker.
    tasks: Vec<AtomicU64>,
    /// High-water mark of each worker's own deque depth.
    queue_hwm: Vec<AtomicU64>,
    /// High-water mark of the injector depth.
    injector_hwm: AtomicU64,
}

impl PoolCounters {
    fn new(workers: usize) -> Self {
        Self {
            steals: AtomicU64::new(0),
            injector_pushes: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            tasks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            queue_hwm: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            injector_hwm: AtomicU64::new(0),
        }
    }
}

struct PoolShared {
    /// Per-worker deques: owner pops the back, thieves pop the front.
    queues: Vec<Mutex<ChunkedDeque<Task>>>,
    /// Tasks submitted from outside the pool.
    injector: Mutex<ChunkedDeque<Task>>,
    /// One parker per worker.
    parkers: Vec<Parker>,
    /// Stack of currently-parked worker ids.
    sleepers: Mutex<Vec<usize>>,
    shutdown: AtomicBool,
    /// Scheduling counters (see [`PoolCounters`]).
    counters: PoolCounters,
}

impl PoolShared {
    fn has_visible_task(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.queues
            .iter()
            .any(|q| !q.lock().expect("queue poisoned").is_empty())
    }

    fn wake_one(&self) {
        let popped = self.sleepers.lock().expect("sleepers poisoned").pop();
        if let Some(id) = popped {
            self.counters.unparks.fetch_add(1, Ordering::Relaxed);
            self.parkers[id].unpark();
        }
    }
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static CURRENT_WORKER: std::cell::Cell<Option<(u64, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// The executor: `workers` OS threads cooperating over per-worker chunked
/// deques with work stealing, parking when idle.
///
/// ```
/// use lanecert_engine::pool::WorkStealingPool;
///
/// let pool = WorkStealingPool::new(4);
/// let squares = pool.scatter((0..32u64).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares[7], 49); // results arrive in submission order
/// ```
pub struct WorkStealingPool {
    id: u64,
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkStealingPool {
    /// Spawns `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(PoolShared {
            queues: (0..workers)
                .map(|_| Mutex::new(ChunkedDeque::new()))
                .collect(),
            injector: Mutex::new(ChunkedDeque::new()),
            parkers: (0..workers).map(|_| Parker::default()).collect(),
            sleepers: Mutex::new(Vec::with_capacity(workers)),
            shutdown: AtomicBool::new(false),
            counters: PoolCounters::new(workers),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lanecert-engine-{w}"))
                    // The theorem1 prover's hierarchy walk recurses
                    // proportionally to the chain length with multi-KiB
                    // frames (inline-stored label sequences), so the std
                    // 2 MiB worker default — and even the main thread's
                    // 8 MiB — overflow on chains around 8k vertices.
                    // 32 MiB keeps pool proving safe well past the
                    // largest bench instance.
                    .stack_size(32 * 1024 * 1024)
                    .spawn(move || worker_loop(id, w, &shared))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Self {
            id,
            shared,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot of the pool's lifetime scheduling counters. Counters
    /// are cumulative since construction; scope them to one run with
    /// [`lanecert_obs::PoolStats::delta_since`].
    pub fn stats(&self) -> lanecert_obs::PoolStats {
        let c = &self.shared.counters;
        let load = |v: &[AtomicU64]| v.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        lanecert_obs::PoolStats {
            workers: self.workers(),
            steals: c.steals.load(Ordering::Relaxed),
            injector_pushes: c.injector_pushes.load(Ordering::Relaxed),
            injector_pops: c.injector_pops.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            unparks: c.unparks.load(Ordering::Relaxed),
            tasks_per_worker: load(&c.tasks),
            queue_hwm_per_worker: load(&c.queue_hwm),
            injector_hwm: c.injector_hwm.load(Ordering::Relaxed),
        }
    }

    /// Submits a task. From a worker thread of this pool the task lands on
    /// that worker's own deque (LIFO, cache-warm); from any other thread
    /// it goes through the injector. Either way one idle worker is woken.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        spawn_task(self.id, &self.shared, Box::new(task));
    }

    /// A cheap, cloneable submission handle: pipeline continuations hold
    /// one so in-flight tasks can fan out further work without borrowing
    /// the pool itself.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            id: self.id,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs every task and returns their results **in submission order**,
    /// regardless of which workers ran what when — each result is written
    /// into its submission-indexed slot, making the output deterministic
    /// under any scheduling.
    ///
    /// Must be called from outside the pool: a worker calling `scatter`
    /// would block its own execution slot.
    ///
    /// # Panics
    ///
    /// Panics when called from one of this pool's workers. A panicking
    /// task is re-raised **on the caller** (the lowest-index panic, to
    /// stay deterministic) once the batch has drained; the workers
    /// themselves survive.
    pub fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        assert!(
            !matches!(CURRENT_WORKER.get(), Some((pool, _)) if pool == self.id),
            "scatter from a worker would deadlock; spawn continuations instead"
        );
        type Slot<T> = Option<std::thread::Result<T>>;
        // Indexed result slots plus a completed-count, under one lock.
        type Gather<T> = Arc<(Mutex<(Vec<Slot<T>>, usize)>, Condvar)>;
        let total = tasks.len();
        let gather: Gather<T> = Arc::new((
            Mutex::new(((0..total).map(|_| None).collect(), 0)),
            Condvar::new(),
        ));
        for (i, task) in tasks.into_iter().enumerate() {
            let gather = Arc::clone(&gather);
            self.spawn(move || {
                // Catch unwinds so a panicking task still fills its slot
                // (otherwise the caller would wait forever); the payload
                // is re-thrown on the caller below.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                let (lock, cvar) = &*gather;
                let mut state = lock.lock().expect("gather poisoned");
                state.0[i] = Some(result);
                state.1 += 1;
                if state.1 == total {
                    cvar.notify_all();
                }
            });
        }
        let (lock, cvar) = &*gather;
        let mut state = lock.lock().expect("gather poisoned");
        while state.1 < total {
            state = cvar.wait(state).expect("gather poisoned");
        }
        let results: Vec<std::thread::Result<T>> = state
            .0
            .iter_mut()
            .map(|s| s.take().expect("slot filled"))
            .collect();
        drop(state);
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            .collect()
    }
}

/// Submission handle returned by [`WorkStealingPool::spawner`].
///
/// Holds the pool's shared queues alive; tasks submitted after the pool
/// itself is dropped are silently discarded with them (the engine always
/// outlives its runs, so its continuations never hit that window).
#[derive(Clone)]
pub struct Spawner {
    id: u64,
    shared: Arc<PoolShared>,
}

impl Spawner {
    /// Submits a task; same routing as [`WorkStealingPool::spawn`].
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        spawn_task(self.id, &self.shared, Box::new(task));
    }
}

fn spawn_task(pool_id: u64, shared: &PoolShared, task: Task) {
    match CURRENT_WORKER.get() {
        Some((pool, w)) if pool == pool_id => {
            let depth = {
                let mut queue = shared.queues[w].lock().expect("queue poisoned");
                queue.push_back(task);
                queue.len() as u64
            };
            shared.counters.queue_hwm[w].fetch_max(depth, Ordering::Relaxed);
        }
        _ => {
            let depth = {
                let mut injector = shared.injector.lock().expect("injector poisoned");
                injector.push_back(task);
                injector.len() as u64
            };
            shared
                .counters
                .injector_pushes
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .injector_hwm
                .fetch_max(depth, Ordering::Relaxed);
        }
    }
    shared.wake_one();
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for parker in &self.shared.parkers {
            parker.unpark();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(pool_id: u64, worker: usize, shared: &PoolShared) {
    CURRENT_WORKER.set(Some((pool_id, worker)));
    let workers = shared.queues.len();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = find_task(worker, workers, shared) {
            shared.counters.tasks[worker].fetch_add(1, Ordering::Relaxed);
            // A panicking task must not take the worker thread (and its
            // execution slot) down with it; result-bearing wrappers
            // (scatter, the engine pipeline) catch and surface their own
            // panics, so a payload reaching here carries no result.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            continue;
        }
        // Register as a sleeper, then re-check: a task submitted between
        // the failed search and the registration would otherwise be
        // stranded until the next submission.
        shared
            .sleepers
            .lock()
            .expect("sleepers poisoned")
            .push(worker);
        if shared.shutdown.load(Ordering::SeqCst) || shared.has_visible_task() {
            shared
                .sleepers
                .lock()
                .expect("sleepers poisoned")
                .retain(|&s| s != worker);
            continue;
        }
        shared.counters.parks.fetch_add(1, Ordering::Relaxed);
        shared.parkers[worker].park();
        // Deregister on wake. Normally `wake_one` already popped this
        // entry (no-op); but when the park consumed a *stale* token — an
        // unpark that raced an earlier re-check-and-continue — the entry
        // is still listed, and leaving it would accumulate duplicates
        // whose pops burn wakeups on a busy thread while genuinely parked
        // workers sleep on.
        shared
            .sleepers
            .lock()
            .expect("sleepers poisoned")
            .retain(|&s| s != worker);
    }
}

fn find_task(worker: usize, workers: usize, shared: &PoolShared) -> Option<Task> {
    // Own deque first (LIFO end), then the injector, then steal the FIFO
    // end of the other workers' deques, round-robin from our right-hand
    // neighbour so thieves spread out.
    if let Some(task) = shared.queues[worker]
        .lock()
        .expect("queue poisoned")
        .pop_back()
    {
        return Some(task);
    }
    if let Some(task) = shared
        .injector
        .lock()
        .expect("injector poisoned")
        .pop_front()
    {
        shared
            .counters
            .injector_pops
            .fetch_add(1, Ordering::Relaxed);
        return Some(task);
    }
    for offset in 1..workers {
        let victim = (worker + offset) % workers;
        if let Some(task) = shared.queues[victim]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunked_deque_spans_segments() {
        let mut d = ChunkedDeque::new();
        assert!(d.is_empty());
        assert_eq!(d.pop_back(), None);
        assert_eq!(d.pop_front(), None);
        let n = SEGMENT_CAPACITY * 3 + 7;
        for i in 0..n {
            d.push_back(i);
        }
        assert_eq!(d.len(), n);
        // FIFO from the front...
        assert_eq!(d.pop_front(), Some(0));
        assert_eq!(d.pop_front(), Some(1));
        // ...LIFO from the back...
        assert_eq!(d.pop_back(), Some(n - 1));
        // ...and both ends drain to exactly the remaining items.
        let mut remaining = Vec::new();
        while let Some(x) = d.pop_front() {
            remaining.push(x);
        }
        assert_eq!(remaining, (2..n - 1).collect::<Vec<_>>());
        assert!(d.is_empty());
    }

    #[test]
    fn parker_remembers_early_unpark() {
        let p = Parker::default();
        p.unpark();
        p.park(); // returns immediately: the token was set
    }

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkStealingPool::new(4);
        // Vary task duration so completion order scrambles.
        let tasks: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * 3
                }
            })
            .collect();
        let results = pool.scatter(tasks);
        assert_eq!(results, (0..64u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn worker_spawned_subtasks_run_and_are_stealable() {
        // A task fans out subtasks from inside the pool (they land on the
        // spawning worker's own deque) and the continuation-style counter
        // sees all of them — exercised across several workers so thieves
        // get a chance to lift from the owner's FIFO end.
        let pool = Arc::new(WorkStealingPool::new(3));
        let count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let fanout = 40;
        {
            let pool2 = Arc::clone(&pool);
            let count = Arc::clone(&count);
            let done = Arc::clone(&done);
            pool.spawn(move || {
                for _ in 0..fanout {
                    let count = Arc::clone(&count);
                    let done = Arc::clone(&done);
                    pool2.spawn(move || {
                        if count.fetch_add(1, Ordering::SeqCst) + 1 == fanout {
                            let (lock, cvar) = &*done;
                            *lock.lock().unwrap() = true;
                            cvar.notify_all();
                        }
                    });
                }
            });
        }
        let (lock, cvar) = &*done;
        let mut finished = lock.lock().unwrap();
        while !*finished {
            let (next, timeout) = cvar
                .wait_timeout(finished, std::time::Duration::from_secs(10))
                .unwrap();
            finished = next;
            assert!(!timeout.timed_out(), "fan-out never completed");
        }
        assert_eq!(count.load(Ordering::SeqCst), fanout);
    }

    #[test]
    fn panicking_task_reaches_the_caller_and_spares_the_workers() {
        let pool = WorkStealingPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scatter(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("boom")),
                Box::new(|| 3),
            ]);
        }));
        assert!(caught.is_err(), "scatter must re-raise the task panic");
        // Every worker survived: the pool still runs full batches.
        assert_eq!(pool.scatter(vec![|| 7, || 8, || 9, || 10]), [7, 8, 9, 10]);
    }

    #[test]
    fn stats_count_scheduling_transitions() {
        let pool = WorkStealingPool::new(2);
        // Let both workers go idle so parks are observable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let base = pool.stats();
        assert_eq!(base.workers, 2);
        assert!(base.parks >= 2, "both idle workers parked: {base:?}");
        let n = 32u64;
        let _ = pool.scatter((0..n).map(|i| move || i).collect::<Vec<_>>());
        let run = pool.stats().delta_since(&base);
        // Driver-side submissions all route through the injector...
        assert_eq!(run.injector_pushes, n);
        // ...and every task was executed by some worker, arriving either
        // straight off the injector or via a steal of nothing (workers
        // cannot steal the injector), so the pops account for all of it.
        assert_eq!(run.injector_pops, n);
        assert_eq!(run.total_tasks(), n);
        assert_eq!(run.steals, 0);
        assert!(run.unparks >= 1, "a parked worker must have been woken");
        assert!(run.injector_hwm >= 1);
    }

    #[test]
    fn idle_pool_parks_and_wakes() {
        let pool = WorkStealingPool::new(2);
        // Let workers go idle, then submit again: parked workers must wake.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let results = pool.scatter(vec![|| 1, || 2]);
        assert_eq!(results, vec![1, 2]);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let results = pool.scatter(vec![|| 3]);
        assert_eq!(results, vec![3]);
    }
}
