//! The streaming certification pipeline on top of the work-stealing pool.
//!
//! [`Engine::run`] pulls [`BatchJob`]s from any job source (an iterator —
//! e.g. [`CorpusSpec::jobs`](crate::CorpusSpec::jobs) — is one), keeps a
//! bounded window of them in flight, and fans each job through
//! prove → encode → verify. Large configurations additionally shard their
//! per-vertex verification across workers in continuation style: one leaf
//! task per contiguous vertex range, and the *last* shard to finish
//! assembles the report, so no worker ever blocks on another (the pool's
//! no-waiting rule).
//!
//! # Stage placement and parity
//!
//! **Both stages run on the pool.** Proving used to be serialized on the
//! driver thread because the algebra's state interner assigned class ids
//! in arrival order — concurrent proving perturbed the ids that labels
//! carry on the wire, and id magnitude leaks into varint label sizes.
//! Since the canonical freeze (`lanecert_algebra::FrozenAlgebra`),
//! class ids are a pure function
//! of `(property, width)`: proving is side-effect-free, so each job's
//! prove is just another pool task and the whole pipeline scales.
//! Outcomes land in submission-indexed slots and shard verdicts in
//! range-indexed slots, so the folded [`BatchReport`] is **bit-identical**
//! to the sequential [`BatchRunner`](lanecert::BatchRunner) — labels,
//! label-size statistics, verdicts, refusals — for any worker count and
//! any scheduling. Pinned for every registered scheme family by the
//! parity proptests in `tests/engine_parity.rs`.
//!
//! `parallel_prove(false)` moves proving back onto the driver thread, in
//! job order. That is no longer needed for parity on canonical schemes —
//! it remains as the measurement baseline (the throughput sweep's
//! `driver_prove` series), and it is what the builder auto-selects for
//! the rare *sealed* algebra (a property too large to pre-enumerate,
//! whose dynamic-tail ids are still arrival-ordered — the builder asks
//! the scheme via `DynScheme::canonical_labels`, so sealed schemes keep
//! reproducible sizes by default; verdicts agree in either placement).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use lanecert::{
    BatchJob, BatchOutcome, BatchReport, CertError, Certifier, Configuration, EncodedLabeling,
    RunReport, Verdict,
};
use lanecert_obs::{names, Clock, ObsReport, TraceConfig, TraceLog, TraceSession};

use crate::pool::{Spawner, WorkStealingPool};

/// Throughput accounting for one engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Throughput {
    /// Worker threads the engine ran with.
    pub workers: usize,
    /// Jobs pulled from the source.
    pub jobs: usize,
    /// Jobs that produced a full report (accepted or rejected), as
    /// opposed to prover refusals/errors.
    pub certified: usize,
    /// Vertices verified across all certified jobs.
    pub vertices: usize,
    /// Edges labeled across all certified jobs.
    pub edges: usize,
    /// Wall-clock duration of the whole run, in seconds.
    pub wall_seconds: f64,
    /// Time spent in the prove stage, summed over whichever threads
    /// proved. Under [`EngineBuilder::parallel_prove`]`(false)` this is
    /// driver wall-clock time (and `wall_seconds - prove_seconds`
    /// bounds the verify stage's critical path from above); in the
    /// default pool-proving mode it is CPU-seconds accumulated from the
    /// workers' own prove timings, so it can legitimately exceed
    /// `wall_seconds` when proves overlap.
    pub prove_seconds: f64,
}

impl Throughput {
    /// Jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        per_second(self.jobs, self.wall_seconds)
    }

    /// Verified vertices per wall-clock second.
    pub fn vertices_per_sec(&self) -> f64 {
        per_second(self.vertices, self.wall_seconds)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} workers: {} jobs ({} certified), {} vertices in {:.3}s ({:.3}s proving) — {:.0} jobs/s, {:.0} vertices/s",
            self.workers,
            self.jobs,
            self.certified,
            self.vertices,
            self.wall_seconds,
            self.prove_seconds,
            self.jobs_per_sec(),
            self.vertices_per_sec(),
        )
    }
}

fn per_second(count: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

/// What an engine run returns: the batch outcomes (bit-identical to the
/// sequential path) plus throughput accounting — and, for traced runs,
/// the drained span log.
#[derive(Debug)]
pub struct EngineReport {
    /// Per-job outcomes folded into the standard batch report (carries
    /// the run's [`ObsReport`] when tracing was enabled).
    pub batch: BatchReport,
    /// Rate accounting for the run.
    pub throughput: Throughput,
    /// The span event log, when the engine was built with
    /// [`EngineBuilder::trace`] (empty in an obs-disabled build).
    pub trace: Option<TraceLog>,
}

/// The parallel certification engine: a work-stealing pool plus one
/// certifier, streaming jobs through prove → encode → verify.
///
/// ```
/// use lanecert_engine::{CorpusFamily, CorpusSpec, Engine};
/// use lanecert::Certifier;
/// use lanecert_algebra::{props::Connected, Algebra};
///
/// let engine = Engine::builder()
///     .certifier(
///         Certifier::builder()
///             .property(Algebra::shared(Connected))
///             .pathwidth(2)
///             .build()
///             .unwrap(),
///     )
///     .workers(2)
///     .build()
///     .unwrap();
/// let spec = CorpusSpec::new()
///     .families(CorpusSpec::benchmark_families())
///     .sizes([12, 24])
///     .seed(1);
/// let report = engine.run(spec.jobs());
/// assert!(report.batch.all_accepted());
/// assert_eq!(report.throughput.jobs, spec.len());
/// ```
pub struct Engine {
    pool: WorkStealingPool,
    certifier: Arc<Certifier>,
    shard_threshold: usize,
    window_per_worker: usize,
    parallel_prove: bool,
    /// Set by [`EngineBuilder::trace`]; every run installs a session.
    trace: Option<TraceConfig>,
    /// The trace clock when tracing, the monotonic clock otherwise —
    /// all engine timing reads this, never `Instant::now` directly.
    clock: Clock,
}

impl Engine {
    /// Starts a builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The engine's certifier.
    pub fn certifier(&self) -> &Certifier {
        &self.certifier
    }

    /// Streams `jobs` through the pipeline and folds the outcomes, in
    /// submission order, into a [`BatchReport`] bit-identical to the
    /// sequential [`BatchRunner`](lanecert::BatchRunner) run of the same
    /// jobs — at any worker count, proving and verifying both on the
    /// pool (see the module docs) — alongside [`Throughput`] accounting.
    ///
    /// The source is pulled lazily: at most `window_per_worker × workers`
    /// jobs are in flight at once, so arbitrarily long corpora stream in
    /// bounded memory.
    ///
    /// When the engine was built with [`EngineBuilder::trace`], the run
    /// installs a run-scoped [`TraceSession`]: stage spans and
    /// histograms record as the pipeline executes, and the drained
    /// [`TraceLog`] / [`ObsReport`] ride back on the report. Tracing
    /// never changes the batch outcomes — pinned bit-for-bit by the
    /// parity proptests.
    pub fn run(&self, jobs: impl IntoIterator<Item = BatchJob>) -> EngineReport {
        let session = self
            .trace
            .as_ref()
            .map(|config| TraceSession::begin(config.clone()));
        let pool_base = self.pool.stats();
        let run_span = lanecert_obs::span!("run");
        let start_ns = self.clock.now_ns();
        let window = (self.window_per_worker * self.workers()).max(1);
        let state = Arc::new(RunState {
            slots: Mutex::new(Vec::new()),
            in_flight: Mutex::new(0),
            job_done: Condvar::new(),
            prove_ns: AtomicU64::new(0),
        });

        for (index, job) in jobs.into_iter().enumerate() {
            {
                let mut in_flight = state.in_flight.lock().expect("engine state poisoned");
                while *in_flight >= window {
                    in_flight = state
                        .job_done
                        .wait(in_flight)
                        .expect("engine state poisoned");
                }
                *in_flight += 1;
            }
            state
                .slots
                .lock()
                .expect("engine state poisoned")
                .push(None);
            let task = JobTask {
                state: Arc::clone(&state),
                certifier: Arc::clone(&self.certifier),
                index,
                shards: self.shard_plan(),
                spawner: self.pool.spawner(),
                clock: self.clock.clone(),
            };
            if self.parallel_prove {
                // Default: the prove is a pool task like any other —
                // canonical class ids make it a pure function of the
                // job, so scheduling cannot perturb the labels. The
                // prove stage times itself (see [`JobTask::prove`]), so
                // worker-side prove time is attributed exactly as on
                // the driver path.
                self.pool.spawn(move || task.prove_and_verify(job));
            } else {
                // Measurement baseline / sealed-algebra mode: prove on
                // the driver, in job order; hand only the verification
                // to the pool.
                if let Some((task, cfg, labels)) = task.prove(job) {
                    task.submit_verify(cfg, labels);
                }
            }
        }

        // Drain: wait for the window to empty.
        {
            let mut in_flight = state.in_flight.lock().expect("engine state poisoned");
            while *in_flight > 0 {
                in_flight = state
                    .job_done
                    .wait(in_flight)
                    .expect("engine state poisoned");
            }
        }

        let outcomes: Vec<BatchOutcome> = state
            .slots
            .lock()
            .expect("engine state poisoned")
            .drain(..)
            .map(|slot| slot.expect("every submitted job reports"))
            .collect();
        let wall_ns = self.clock.now_ns().saturating_sub(start_ns);
        drop(run_span);
        let mut throughput = Throughput {
            workers: self.workers(),
            jobs: outcomes.len(),
            wall_seconds: wall_ns as f64 / 1e9,
            prove_seconds: state.prove_ns.load(Ordering::Relaxed) as f64 / 1e9,
            ..Throughput::default()
        };
        for outcome in &outcomes {
            if let Ok(report) = &outcome.result {
                throughput.certified += 1;
                throughput.vertices += report.verdicts.len();
                throughput.edges += report.edges;
            }
        }
        let (trace, obs) = match session {
            Some(session) => {
                let run = session.end();
                let report = ObsReport {
                    wall_ns,
                    counters: run.counters,
                    histograms: run.histograms,
                    pool: Some(self.pool.stats().delta_since(&pool_base)),
                };
                (Some(run.log), Some(report))
            }
            None => (None, None),
        };
        EngineReport {
            batch: BatchReport { outcomes, obs },
            throughput,
            trace,
        }
    }

    fn shard_plan(&self) -> ShardPlan {
        ShardPlan {
            threshold: self.shard_threshold,
            workers: self.workers(),
        }
    }
}

struct RunState {
    /// One slot per submitted job, in submission order.
    slots: Mutex<Vec<Option<BatchOutcome>>>,
    /// Jobs submitted but not yet reported.
    in_flight: Mutex<usize>,
    /// Signalled on every job completion (feeds both the window gate and
    /// the final drain).
    job_done: Condvar,
    /// Nanoseconds spent proving, accumulated by whichever thread ran
    /// each prove — driver or worker — so `prove_seconds` is reported
    /// in both placements.
    prove_ns: AtomicU64,
}

impl RunState {
    fn finish(&self, index: usize, name: String, result: Result<RunReport, CertError>) {
        self.slots.lock().expect("engine state poisoned")[index] =
            Some(BatchOutcome { name, result });
        let mut in_flight = self.in_flight.lock().expect("engine state poisoned");
        *in_flight -= 1;
        drop(in_flight);
        self.job_done.notify_all();
    }
}

#[derive(Copy, Clone)]
struct ShardPlan {
    threshold: usize,
    workers: usize,
}

impl ShardPlan {
    /// Vertices per cache-line-sized stride: shard boundaries snap to
    /// multiples of this so adjacent workers write disjoint cache lines
    /// of the verdict array and stream disjoint spans of the CSR arena
    /// instead of bouncing the boundary lines between cores.
    const STRIDE: usize = 64;

    /// Contiguous vertex ranges for a configuration of `n` vertices, or
    /// `None` when the job should verify as one task (small instance or a
    /// single worker — sharding would only pay coordination overhead).
    fn ranges(&self, n: usize) -> Option<Vec<std::ops::Range<usize>>> {
        if self.workers < 2 || n < self.threshold.max(2) {
            return None;
        }
        // Two shards per worker keeps the tail balanced without flooding
        // the queues with tiny ranges; stride alignment keeps the shard
        // boundaries off shared cache lines.
        let shards = (self.workers * 2).min(n);
        let chunk = n.div_ceil(shards);
        let chunk = if chunk >= Self::STRIDE {
            chunk.next_multiple_of(Self::STRIDE)
        } else {
            chunk
        };
        Some(
            (0..shards)
                .map(|s| (s * chunk)..((s + 1) * chunk).min(n))
                .filter(|r| !r.is_empty())
                .collect(),
        )
    }
}

/// One job's pipeline context; carries the job across stages. The name is
/// resolved at prove time, the outcome slot at `index` is reserved by the
/// driver.
struct JobTask {
    state: Arc<RunState>,
    certifier: Arc<Certifier>,
    index: usize,
    shards: ShardPlan,
    spawner: Spawner,
    clock: Clock,
}

impl JobTask {
    /// The prove stage. On refusal/error the outcome is reported and
    /// `None` returned; on success the encoded labels move on to the
    /// verify stage together with the (name-carrying) task.
    ///
    /// A panicking scheme becomes an outcome, not a hung run: the driver
    /// waits for every slot, so an unwound task would otherwise strand it
    /// (the sequential `BatchRunner` would propagate the panic; schemes
    /// are hardened against label-induced panics since the erased layer
    /// landed).
    fn prove(self, job: BatchJob) -> Option<(NamedTask, Configuration, EncodedLabeling)> {
        let BatchJob { name, cfg, hint } = job;
        let name = name.unwrap_or_else(|| self.index.to_string());
        // Borrow the certifier's default hint rather than cloning it per
        // job — this runs on the sequential prove critical path.
        let hint = hint.as_ref().unwrap_or_else(|| self.certifier.hint());
        let _span = lanecert_obs::span!("prove", job = self.index);
        let t0 = self.clock.now_ns();
        let result = no_panic(|| self.certifier.scheme().prove_encoded(&cfg, hint));
        let dt = self.clock.now_ns().saturating_sub(t0);
        self.state.prove_ns.fetch_add(dt, Ordering::Relaxed);
        lanecert_obs::record_ns(names::PROVE_NS, dt);
        match result {
            Ok(labels) => Some((NamedTask { task: self, name }, cfg, labels)),
            Err(e) => {
                self.state.finish(self.index, name, Err(e));
                None
            }
        }
    }

    /// The full pipeline on a pool worker (`parallel_prove` mode).
    fn prove_and_verify(self, job: BatchJob) {
        if let Some((task, cfg, labels)) = self.prove(job) {
            task.submit_verify(cfg, labels);
        }
    }
}

/// A job past its prove stage: name resolved, outcome still owed.
struct NamedTask {
    task: JobTask,
    name: String,
}

impl NamedTask {
    /// The verify stage: one pool task for small configurations, a
    /// continuation-style shard fan-out for large ones. Never blocks —
    /// the last shard to finish assembles and reports, which is what
    /// keeps the executor deadlock-free.
    fn submit_verify(self, cfg: Configuration, labels: EncodedLabeling) {
        let NamedTask { task, name } = self;
        match task.shards.ranges(cfg.n()) {
            None => {
                let certifier = Arc::clone(&task.certifier);
                let state = Arc::clone(&task.state);
                let index = task.index;
                let clock = task.clock.clone();
                task.spawner.spawn(move || {
                    let _span = lanecert_obs::span!("verify", job = index);
                    let t0 = clock.now_ns();
                    let result = no_panic(|| certifier.scheme().verify_encoded(&cfg, &labels));
                    lanecert_obs::record_ns(names::VERIFY_NS, clock.now_ns().saturating_sub(t0));
                    state.finish(index, name, result);
                });
            }
            Some(ranges) => {
                let gather = Arc::new(ShardGather {
                    state: Arc::clone(&task.state),
                    certifier: Arc::clone(&task.certifier),
                    cfg: Arc::new(cfg),
                    labels: Arc::new(labels),
                    index: task.index,
                    name: Mutex::new(Some(name)),
                    verdicts: Mutex::new((0..ranges.len()).map(|_| None).collect()),
                    remaining: AtomicUsize::new(ranges.len()),
                    clock: task.clock.clone(),
                });
                for (shard, range) in ranges.into_iter().enumerate() {
                    let gather = Arc::clone(&gather);
                    task.spawner
                        .spawn(move || gather.verify_shard(shard, range));
                }
            }
        }
    }
}

/// One shard's pending result slot.
type ShardSlot = Option<Result<Vec<Verdict>, CertError>>;

/// Continuation state for one sharded verification: range-indexed verdict
/// slots plus a countdown; the last shard assembles the report.
struct ShardGather {
    state: Arc<RunState>,
    certifier: Arc<Certifier>,
    cfg: Arc<Configuration>,
    labels: Arc<EncodedLabeling>,
    index: usize,
    name: Mutex<Option<String>>,
    verdicts: Mutex<Vec<ShardSlot>>,
    remaining: AtomicUsize,
    clock: Clock,
}

/// Runs `f`, mapping an unwind to [`CertError::Internal`] so pipeline
/// tasks always report an outcome.
fn no_panic<T>(f: impl FnOnce() -> Result<T, CertError>) -> Result<T, CertError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|_| {
        Err(CertError::Internal(
            "scheme panicked in the pipeline".into(),
        ))
    })
}

impl ShardGather {
    fn verify_shard(&self, shard: usize, range: std::ops::Range<usize>) {
        // The span covers the whole shard task — including, on the last
        // shard, report assembly — so collapsed stacks attribute that
        // tail work to the shard that performed it.
        let _span = lanecert_obs::span!("verify_shard", shard = shard);
        let t0 = self.clock.now_ns();
        let result = no_panic(|| {
            self.certifier
                .scheme()
                .verify_encoded_range(&self.cfg, &self.labels, range)
        });
        lanecert_obs::record_ns(
            names::VERIFY_SHARD_NS,
            self.clock.now_ns().saturating_sub(t0),
        );
        self.verdicts.lock().expect("shard state poisoned")[shard] = Some(result);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.assemble();
        }
    }

    /// Runs on whichever worker finishes last; concatenates the verdict
    /// ranges in vertex order (deterministic regardless of which worker
    /// ran which shard) and reports the job outcome.
    fn assemble(&self) {
        let shards = std::mem::take(&mut *self.verdicts.lock().expect("shard state poisoned"));
        let mut verdicts = Vec::with_capacity(self.cfg.n());
        let mut error = None;
        for slot in shards {
            match slot.expect("all shards reported") {
                Ok(vs) => verdicts.extend(vs),
                Err(e) => {
                    // Shard errors are per-job-global conditions (count
                    // mismatch, panic); keep the first in range order so
                    // the outcome is deterministic.
                    error = error.or(Some(e));
                }
            }
        }
        let result = match error {
            Some(e) => Err(e),
            None => Ok(RunReport {
                verdicts,
                max_label_bits: self.labels.max_bits(),
                total_label_bits: self.labels.total_bits(),
                edges: self.cfg.graph().edge_count(),
            }),
        };
        let name = self
            .name
            .lock()
            .expect("shard state poisoned")
            .take()
            .expect("assemble runs once");
        self.state.finish(self.index, name, result);
    }
}

/// Fluent configuration for an [`Engine`].
pub struct EngineBuilder {
    certifier: Option<Certifier>,
    workers: Option<usize>,
    shard_threshold: usize,
    window_per_worker: usize,
    parallel_prove: Option<bool>,
    heuristic_limit: Option<usize>,
    trace: Option<TraceConfig>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            certifier: None,
            workers: None,
            shard_threshold: 1024,
            window_per_worker: 4,
            parallel_prove: None,
            heuristic_limit: None,
            trace: None,
        }
    }
}

impl EngineBuilder {
    /// The certifier every job runs through (required).
    pub fn certifier(mut self, certifier: Certifier) -> Self {
        self.certifier = Some(certifier);
        self
    }

    /// Worker thread count (default: the machine's available
    /// parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Vertex count at which a job's verification is sharded across
    /// workers instead of running as one task (default 1024). Has no
    /// effect on results — only on scheduling.
    pub fn shard_threshold(mut self, vertices: usize) -> Self {
        self.shard_threshold = vertices;
        self
    }

    /// In-flight jobs per worker the streaming window admits (default 4).
    pub fn window_per_worker(mut self, jobs: usize) -> Self {
        self.window_per_worker = jobs.max(1);
        self
    }

    /// Whether the prove stage runs on the pool. The default resolves
    /// from the scheme itself: **on** whenever the scheme's labels are a
    /// pure function of the job (`DynScheme::canonical_labels` — true
    /// for every scheme except one riding a *sealed* algebra), in which
    /// case reports stay bit-identical to
    /// [`BatchRunner`](lanecert::BatchRunner); **off** for sealed
    /// algebras, whose arrival-ordered tail ids would make label sizes
    /// scheduling-dependent. Set explicitly to force either placement —
    /// `false` as a measurement baseline, `true` to trade sealed-size
    /// reproducibility for wall-clock (verdicts agree regardless).
    pub fn parallel_prove(mut self, enabled: bool) -> Self {
        self.parallel_prove = Some(enabled);
        self
    }

    /// Vertex-count ceiling for automatic decomposition derivation on
    /// hintless jobs, pushed down onto the certifier's default hint
    /// (see [`lanecert::CertifierBuilder::heuristic_limit`]; default
    /// [`lanecert::AUTO_HEURISTIC_LIMIT`]).
    pub fn heuristic_limit(mut self, limit: usize) -> Self {
        self.heuristic_limit = Some(limit);
        self
    }

    /// Enables run-scoped tracing: every [`Engine::run`] installs a
    /// [`TraceSession`] on `config`'s clock, records stage spans
    /// (`run`, `prove`, `verify`, `verify_shard`) and histograms, and
    /// returns the drained [`TraceLog`] plus an [`ObsReport`] (with
    /// per-run pool statistics) on its report. Engine timing switches
    /// onto the same clock, so a [`lanecert_obs::ManualClock`] makes
    /// the whole report deterministic. In a build without the `obs`
    /// feature the spans compile to nothing: the log comes back empty,
    /// but pool statistics (always-on counters) are still populated.
    /// Batch outcomes are bit-identical either way.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Builds the engine, spawning its workers.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidSpec`] when no certifier was supplied.
    pub fn build(self) -> Result<Engine, CertError> {
        let mut certifier = self.certifier.ok_or_else(|| {
            CertError::InvalidSpec("the engine needs a certifier (.certifier(...))".into())
        })?;
        if let Some(limit) = self.heuristic_limit {
            certifier.set_heuristic_limit(limit);
        }
        let parallel_prove = self
            .parallel_prove
            .unwrap_or_else(|| certifier.scheme().canonical_labels());
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let clock = self
            .trace
            .as_ref()
            .map(|t| t.clock.clone())
            .unwrap_or_default();
        Ok(Engine {
            pool: WorkStealingPool::new(workers),
            certifier: Arc::new(certifier),
            shard_threshold: self.shard_threshold,
            window_per_worker: self.window_per_worker,
            parallel_prove,
            trace: self.trace,
            clock,
        })
    }
}
