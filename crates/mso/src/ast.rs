//! The MSO₂ abstract syntax tree.

use std::fmt;

/// A variable identifier. Sorts are tracked at binding sites; well-sorted
/// usage is the formula author's responsibility (the evaluator panics on
/// sort confusion, which the tests exercise).
pub type Var = u32;

/// The four variable sorts of MSO₂ (Section 1.2 of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// An individual vertex.
    Vertex,
    /// An individual edge.
    Edge,
    /// A set of vertices.
    VertexSet,
    /// A set of edges.
    EdgeSet,
}

/// An MSO₂ formula over graphs (optionally with finite vertex/edge input
/// labels, which is how Theorem 1 evaluates `ϕ` on the *marked subgraph* of
/// the completion).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// `v ∈ U` for vertex `v`, vertex set `U`.
    InVSet(Var, Var),
    /// `e ∈ F` for edge `e`, edge set `F`.
    InESet(Var, Var),
    /// `inc(e, v)`: edge `e` is incident to vertex `v`.
    Inc(Var, Var),
    /// `adj(u, v)`: vertices are adjacent.
    Adj(Var, Var),
    /// Vertex equality.
    EqV(Var, Var),
    /// Edge equality.
    EqE(Var, Var),
    /// Vertex input label equals a constant (finite label alphabet).
    VLabelIs(Var, u32),
    /// Edge input label equals a constant (e.g. "marked").
    ELabelIs(Var, u32),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// Existential quantifier of the given sort.
    Exists(Sort, Var, Box<Formula>),
    /// Universal quantifier of the given sort.
    Forall(Sort, Var, Box<Formula>),
}

impl std::ops::Not for Formula {
    type Output = Formula;

    fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }
}

impl Formula {
    /// `¬self`.
    // Part of the `and`/`or`/`implies` builder family; `std::ops::Not` above
    // provides the operator form for callers who prefer `!f`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// `self → rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// `self ↔ rhs`.
    pub fn iff(self, rhs: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(rhs))
    }

    /// Conjunction over an iterator (empty = `True`).
    pub fn all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        fs.into_iter().reduce(Formula::and).unwrap_or(Formula::True)
    }

    /// Disjunction over an iterator (empty = `False`).
    pub fn any<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        fs.into_iter().reduce(Formula::or).unwrap_or(Formula::False)
    }

    /// Number of AST nodes (diagnostics).
    pub fn size(&self) -> usize {
        use Formula::*;
        match self {
            True | False | InVSet(..) | InESet(..) | Inc(..) | Adj(..) | EqV(..) | EqE(..)
            | VLabelIs(..) | ELabelIs(..) => 1,
            Not(a) => 1 + a.size(),
            And(a, b) | Or(a, b) | Implies(a, b) | Iff(a, b) => 1 + a.size() + b.size(),
            Exists(_, _, a) | Forall(_, _, a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Formula::*;
        match self {
            True => write!(f, "true"),
            False => write!(f, "false"),
            InVSet(v, s) => write!(f, "x{v} ∈ X{s}"),
            InESet(e, s) => write!(f, "y{e} ∈ Y{s}"),
            Inc(e, v) => write!(f, "inc(y{e}, x{v})"),
            Adj(u, v) => write!(f, "adj(x{u}, x{v})"),
            EqV(u, v) => write!(f, "x{u} = x{v}"),
            EqE(a, b) => write!(f, "y{a} = y{b}"),
            VLabelIs(v, c) => write!(f, "label(x{v}) = {c}"),
            ELabelIs(e, c) => write!(f, "label(y{e}) = {c}"),
            Not(a) => write!(f, "¬({a})"),
            And(a, b) => write!(f, "({a} ∧ {b})"),
            Or(a, b) => write!(f, "({a} ∨ {b})"),
            Implies(a, b) => write!(f, "({a} → {b})"),
            Iff(a, b) => write!(f, "({a} ↔ {b})"),
            Exists(s, v, a) => write!(f, "∃{} ({a})", bind(*s, *v)),
            Forall(s, v, a) => write!(f, "∀{} ({a})", bind(*s, *v)),
        }
    }
}

fn bind(s: Sort, v: Var) -> String {
    match s {
        Sort::Vertex => format!("x{v}"),
        Sort::Edge => format!("y{v}"),
        Sort::VertexSet => format!("X{v}"),
        Sort::EdgeSet => format!("Y{v}"),
    }
}

/// A fresh-variable generator for building closed formulas.
#[derive(Default, Debug)]
pub struct VarGen {
    next: Var,
}

impl VarGen {
    /// Creates a generator starting at variable 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh variable id.
    pub fn fresh(&mut self) -> Var {
        let v = self.next;
        self.next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let f = Formula::Adj(0, 1).and(Formula::EqV(0, 1).not());
        assert_eq!(f.to_string(), "(adj(x0, x1) ∧ ¬(x0 = x1))");
        assert_eq!(f.size(), 4);
        let g = Formula::Exists(Sort::VertexSet, 2, Box::new(Formula::InVSet(0, 2)));
        assert!(g.to_string().contains("∃X2"));
    }

    #[test]
    fn all_any_reduce() {
        assert_eq!(Formula::all([]), Formula::True);
        assert_eq!(Formula::any([]), Formula::False);
        let both = Formula::all([Formula::True, Formula::False]);
        assert_eq!(both.size(), 3);
    }

    #[test]
    fn vargen_is_sequential() {
        let mut g = VarGen::new();
        assert_eq!(g.fresh(), 0);
        assert_eq!(g.fresh(), 1);
    }
}
