//! Monadic second-order logic (MSO₂) on graphs.
//!
//! The paper's Theorem 1 certifies any MSO₂ property. This crate supplies
//! the *semantic ground truth* for the workspace:
//!
//! * [`Formula`] — the MSO₂ AST with vertex, edge, vertex-set, and edge-set
//!   variables, the `inc`/`adj`/membership/equality predicates, boolean
//!   connectives, and all eight quantifiers (Section 1.2 of the paper).
//! * [`eval`] — a naive exponential model checker (sets are enumerated as
//!   bitmasks), used as the oracle against which the homomorphism algebras
//!   of `lanecert-algebra` are validated.
//! * [`props`] — a library of MSO₂ formulas for the paper's headline
//!   properties (k-colourability, Hamiltonicity, perfect matching, vertex
//!   cover, …).
//! * [`compile`] — a Courcelle-style compiler lowering any closed formula
//!   to a [`lanecert_algebra::Property`], turning the hand-written scheme
//!   catalogue into an open-ended family.
//! * [`sexpr`] — an s-expression surface syntax plus the canonical
//!   renderer that gives compiled schemes their identity.
//!
//! # Example
//!
//! ```
//! use lanecert_graph::generators;
//! use lanecert_mso::{eval, props};
//!
//! let g = generators::cycle_graph(5);
//! assert!(!eval::check(&g, &props::bipartite()));
//! assert!(eval::check(&g, &props::hamiltonian_cycle()));
//! ```

mod ast;
pub use ast::{Formula, Sort, Var, VarGen};

pub mod compile;
pub mod eval;
pub mod props;
pub mod sexpr;
