//! Courcelle-style compilation of MSO₂ formulas into homomorphism
//! algebras ([`lanecert_algebra::Property`] implementations).
//!
//! [`compile`] lowers a **closed** [`Formula`] to a [`CompiledProperty`]
//! whose automaton states are satisfying-assignment summaries of the
//! formula restricted to the live interface, built by structural
//! recursion on the AST:
//!
//! * atomic predicates become small hand-minimised leaf automata that
//!   track only what future operations can still change (terminal
//!   `True`/`False` collapses keep the reachable space small);
//! * boolean connectives become product automata over their operands;
//! * quantifiers become *run sets* — one run per choice of the bound
//!   variable's decoration, deduplicated and canonically sorted so the
//!   state is a pure value (powerset projection).
//!
//! Each quantifier occurrence gets a dense bit index; an operation's
//! decoration (which runs place an individual variable on the new
//! vertex/edge, which runs put it in a set) travels down the recursion
//! as a `u64` mask, so formulas are limited to [`MAX_QUANTIFIERS`]
//! quantifier occurrences.
//!
//! # Semantics
//!
//! The compiled property evaluates the formula on the **marked
//! subgraph** (the workspace-wide algebra convention: unmarked edges are
//! completion-only structure). Edge quantifiers range over marked edges,
//! `adj`/`inc` see marked edges only, and vertex labels are read from
//! `add_vertex` (the certification pipeline always passes label `0`,
//! matching the unlabeled [`crate::eval::check`] oracle; edge labels are
//! uniformly `0` for the same reason). On the pipeline's op sequences —
//! where every real edge is marked — this coincides with evaluating the
//! formula on the real graph, which is exactly what the differential
//! tests pin.
//!
//! States are congruences: two equal states accept identically under any
//! continuation (validated against the brute-force trace mirror and the
//! naive evaluator in this module's tests and `tests/compile_parity.rs`).

use std::fmt;

use lanecert_algebra::{glue_order, Property, Slot};

use crate::{Formula, Sort, Var};

/// Maximum number of quantifier *occurrences* a compilable formula may
/// contain (decorations travel as a `u64` bitmask).
pub const MAX_QUANTIFIERS: usize = 64;

/// Why a formula could not be compiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A variable is used without an enclosing quantifier binding it.
    UnboundVariable(Var),
    /// A variable is used at a sort other than the one it was bound at.
    SortMismatch {
        /// The offending variable.
        var: Var,
        /// The sort the enclosing quantifier bound it at.
        bound: Sort,
        /// The sort the predicate uses it at.
        used: Sort,
    },
    /// More than [`MAX_QUANTIFIERS`] quantifier occurrences.
    TooManyQuantifiers {
        /// The number of quantifier occurrences found.
        count: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnboundVariable(v) => write!(f, "unbound variable {v} (formula not closed)"),
            Self::SortMismatch { var, bound, used } => {
                write!(f, "variable {var} bound as {bound:?} but used as {used:?}")
            }
            Self::TooManyQuantifiers { count } => {
                write!(
                    f,
                    "{count} quantifier occurrences exceed the limit of {MAX_QUANTIFIERS}"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Binary boolean connective of a compiled [`Node::Bin`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum BinOp {
    And,
    Or,
    Implies,
    Iff,
}

/// The compiled plan: the formula with every variable occurrence
/// resolved to the dense bit index of its binding quantifier.
#[derive(Clone, Debug)]
enum Node {
    Const(bool),
    InVSet {
        v: u8,
        set: u8,
    },
    InESet {
        e: u8,
        set: u8,
    },
    Inc {
        e: u8,
        v: u8,
    },
    Adj {
        u: u8,
        v: u8,
    },
    EqV {
        u: u8,
        v: u8,
    },
    EqE {
        a: u8,
        b: u8,
    },
    VLabelIs {
        v: u8,
        label: u32,
    },
    ELabelIs {
        e: u8,
        label: u32,
    },
    Not(Box<Node>),
    Bin(BinOp, Box<Node>, Box<Node>),
    Quant {
        sort: Sort,
        forall: bool,
        bit: u8,
        body: Box<Node>,
    },
}

/// Where an individual (vertex) variable currently lives.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum Place {
    /// Not placed yet in this run.
    Unplaced,
    /// Placed on the vertex at this live slot.
    At(u8),
    /// Placed on a vertex that has since been forgotten.
    Inside,
}

impl Place {
    /// Slot renumbering after `drop` disappears (glue/forget).
    fn shift_down(self, drop: usize) -> Self {
        match self {
            Self::At(s) if usize::from(s) > drop => Self::At(s - 1),
            other => other,
        }
    }

    fn swap(self, a: usize, b: usize) -> Self {
        match self {
            Self::At(s) if usize::from(s) == a => Self::At(b as u8),
            Self::At(s) if usize::from(s) == b => Self::At(a as u8),
            other => other,
        }
    }

    fn shift_up(self, by: usize) -> Self {
        match self {
            Self::At(s) => Self::At(s + by as u8),
            other => other,
        }
    }
}

/// A set of live slots as a bitmask (slots ≥ 64 are untracked; the
/// freeze arity cap and every pipeline interface stay far below that).
type SlotSet = u64;

fn bit(s: usize) -> SlotSet {
    if s < 64 {
        1u64 << s
    } else {
        0
    }
}

fn has(set: SlotSet, s: usize) -> bool {
    set & bit(s) != 0
}

/// Removes slot `drop` from a slot set and shifts higher slots down.
fn set_shift_down(set: SlotSet, drop: usize) -> SlotSet {
    if drop >= 64 {
        return set;
    }
    let low = set & (bit(drop) - 1);
    let high = (set >> (drop + 1)) << drop;
    low | high
}

fn set_swap(set: SlotSet, a: usize, b: usize) -> SlotSet {
    let (ba, bb) = (has(set, a), has(set, b));
    let mut out = set & !(bit(a) | bit(b));
    if ba {
        out |= bit(b);
    }
    if bb {
        out |= bit(a);
    }
    out
}

/// Three-valued leaf state for predicates whose verdict is fixed the
/// moment their variable is placed (`∈`-membership, label tests).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum Tri {
    Undecided,
    Yes,
    No,
}

impl Tri {
    fn of(b: bool) -> Self {
        if b {
            Self::Yes
        } else {
            Self::No
        }
    }

    fn union(self, other: Self) -> Self {
        match (self, other) {
            (Self::Undecided, x) => x,
            (x, _) => x,
        }
    }
}

/// Leaf automaton for `x = y` over vertex variables.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum EqVState {
    True,
    False,
    Pending { u: Place, v: Place },
}

/// Leaf automaton for `a = b` over edge variables (edges are created
/// once and never merge, so five states suffice).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum EqEState {
    Neither,
    AOnly,
    BOnly,
    True,
    False,
}

/// Leaf automaton for `adj(u, v)`: terminal `True` once a marked edge
/// connects the two vertices, otherwise the placements plus the live
/// slots currently adjacent to each (adjacency can still arise by
/// gluing a live slot into a recorded neighbour).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum AdjState {
    True,
    False,
    Pending {
        u: Place,
        v: Place,
        u_adj: SlotSet,
        v_adj: SlotSet,
    },
}

/// Leaf automaton for `inc(e, v)`: the vertex placement plus the edge's
/// still-live endpoint slots (`ends` is `None` while the edge variable
/// is unplaced).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum IncState {
    True,
    False,
    Pending { v: Place, ends: Option<SlotSet> },
}

/// Per-run decoration data of one quantifier run.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum RunData {
    /// Vertex/edge variable: has this run placed it yet?
    Individual { placed: bool },
    /// Vertex-set variable: membership of each live slot's vertex
    /// (needed to reject glue of vertices the run decorated
    /// inconsistently).
    VSet { bits: SlotSet },
    /// Edge-set variable: edges never merge, so no consistency data.
    ESet,
}

/// One decoration choice of a quantifier: the choice data plus the body
/// state under that choice.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
struct Run {
    data: RunData,
    body: CState,
}

/// A compiled automaton state: one node per formula node ([`Node::Not`]
/// shares its operand's state).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum CState {
    Tri(Tri),
    EqV(EqVState),
    EqE(EqEState),
    Adj(AdjState),
    Inc(IncState),
    Pair(Box<(CState, CState)>),
    Runs(Vec<Run>),
    /// The node's verdict is fixed under every further operation and
    /// under union with any co-state (see
    /// [`CompiledProperty::normalize`]).
    Done(bool),
}

/// The state type of a [`CompiledProperty`]: the current interface
/// arity, the marked adjacency matrix over live slots (`adj[s]` = slots
/// whose vertex is marked-adjacent to slot `s`'s vertex — graph
/// structure, identical across runs, needed so a glue can hand the
/// merged vertex's full neighbour set to the `adj` leaves), and the
/// recursive per-node automaton state.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CompiledState {
    arity: u8,
    adj: Vec<SlotSet>,
    root: CState,
}

/// A structural operation as seen by the per-node transition functions
/// (`add_edge` is pre-filtered: unmarked edges never reach the
/// recursion).
#[derive(Copy, Clone, Debug)]
enum Op {
    AddVertex {
        label: u32,
        slot: usize,
    },
    AddEdge {
        a: usize,
        b: usize,
    },
    /// `row` is the merged vertex's marked-neighbour set *after* the
    /// merge and slot shift — a variable glued into the pair inherits
    /// it wholesale (its own incremental mask misses the other side's
    /// edges).
    Glue {
        keep: usize,
        drop: usize,
        row: SlotSet,
    },
    Forget {
        slot: usize,
    },
    Swap {
        a: usize,
        b: usize,
    },
}

/// An MSO₂ formula compiled to a homomorphism algebra over terminal
/// graphs. Build with [`compile`]; use via
/// [`lanecert_algebra::Algebra::shared`] like any other property.
pub struct CompiledProperty {
    plan: Node,
    name: String,
    enumerable: bool,
}

impl CompiledProperty {
    /// Opts the property out of the freeze pass's exhaustive enumeration
    /// (it will run sealed). Useful for differential tests of formulas
    /// whose reachable state space overruns the freeze budgets.
    #[must_use]
    pub fn sealed(mut self) -> Self {
        self.enumerable = false;
        self
    }
}

/// Compiles a closed, well-sorted formula.
///
/// # Errors
///
/// [`CompileError`] on open formulas, sort mismatches, or more than
/// [`MAX_QUANTIFIERS`] quantifier occurrences.
pub fn compile(formula: &Formula) -> Result<CompiledProperty, CompileError> {
    let mut scopes: Vec<(Var, Sort, u8)> = Vec::new();
    let mut next_bit = 0usize;
    let plan = lower(formula, &mut scopes, &mut next_bit)?;
    Ok(CompiledProperty {
        plan,
        name: format!("compiled{}", crate::sexpr::canonical(formula)),
        enumerable: true,
    })
}

fn resolve(scopes: &[(Var, Sort, u8)], var: Var, used: Sort) -> Result<u8, CompileError> {
    let (_, bound, idx) = scopes
        .iter()
        .rev()
        .find(|(v, _, _)| *v == var)
        .ok_or(CompileError::UnboundVariable(var))?;
    if *bound != used {
        return Err(CompileError::SortMismatch {
            var,
            bound: *bound,
            used,
        });
    }
    Ok(*idx)
}

fn lower(
    f: &Formula,
    scopes: &mut Vec<(Var, Sort, u8)>,
    next_bit: &mut usize,
) -> Result<Node, CompileError> {
    use Formula as F;
    Ok(match f {
        F::True => Node::Const(true),
        F::False => Node::Const(false),
        F::InVSet(v, s) => Node::InVSet {
            v: resolve(scopes, *v, Sort::Vertex)?,
            set: resolve(scopes, *s, Sort::VertexSet)?,
        },
        F::InESet(e, s) => Node::InESet {
            e: resolve(scopes, *e, Sort::Edge)?,
            set: resolve(scopes, *s, Sort::EdgeSet)?,
        },
        F::Inc(e, v) => Node::Inc {
            e: resolve(scopes, *e, Sort::Edge)?,
            v: resolve(scopes, *v, Sort::Vertex)?,
        },
        F::Adj(u, v) => Node::Adj {
            u: resolve(scopes, *u, Sort::Vertex)?,
            v: resolve(scopes, *v, Sort::Vertex)?,
        },
        F::EqV(u, v) => Node::EqV {
            u: resolve(scopes, *u, Sort::Vertex)?,
            v: resolve(scopes, *v, Sort::Vertex)?,
        },
        F::EqE(a, b) => Node::EqE {
            a: resolve(scopes, *a, Sort::Edge)?,
            b: resolve(scopes, *b, Sort::Edge)?,
        },
        F::VLabelIs(v, c) => Node::VLabelIs {
            v: resolve(scopes, *v, Sort::Vertex)?,
            label: *c,
        },
        F::ELabelIs(e, c) => Node::ELabelIs {
            e: resolve(scopes, *e, Sort::Edge)?,
            label: *c,
        },
        F::Not(a) => Node::Not(Box::new(lower(a, scopes, next_bit)?)),
        F::And(a, b) => bin(BinOp::And, a, b, scopes, next_bit)?,
        F::Or(a, b) => bin(BinOp::Or, a, b, scopes, next_bit)?,
        F::Implies(a, b) => bin(BinOp::Implies, a, b, scopes, next_bit)?,
        F::Iff(a, b) => bin(BinOp::Iff, a, b, scopes, next_bit)?,
        F::Exists(sort, var, body) => quant(*sort, *var, body, false, scopes, next_bit)?,
        F::Forall(sort, var, body) => quant(*sort, *var, body, true, scopes, next_bit)?,
    })
}

fn bin(
    op: BinOp,
    a: &Formula,
    b: &Formula,
    scopes: &mut Vec<(Var, Sort, u8)>,
    next_bit: &mut usize,
) -> Result<Node, CompileError> {
    let a = lower(a, scopes, next_bit)?;
    let b = lower(b, scopes, next_bit)?;
    Ok(Node::Bin(op, Box::new(a), Box::new(b)))
}

fn quant(
    sort: Sort,
    var: Var,
    body: &Formula,
    forall: bool,
    scopes: &mut Vec<(Var, Sort, u8)>,
    next_bit: &mut usize,
) -> Result<Node, CompileError> {
    if *next_bit >= MAX_QUANTIFIERS {
        return Err(CompileError::TooManyQuantifiers {
            count: *next_bit + 1,
        });
    }
    let bit = *next_bit as u8;
    *next_bit += 1;
    scopes.push((var, sort, bit));
    let body = lower(body, scopes, next_bit);
    scopes.pop();
    Ok(Node::Quant {
        sort,
        forall,
        bit,
        body: Box::new(body?),
    })
}

fn deco_has(deco: u64, idx: u8) -> bool {
    deco & (1u64 << idx) != 0
}

impl CompiledProperty {
    /// The initial (empty-graph) state of one plan node.
    fn init(node: &Node) -> CState {
        let raw = Self::init_raw(node);
        Self::normalize(node, raw)
    }

    fn init_raw(node: &Node) -> CState {
        match node {
            Node::Const(b) => CState::Done(*b),
            Node::InVSet { .. }
            | Node::InESet { .. }
            | Node::VLabelIs { .. }
            | Node::ELabelIs { .. } => CState::Tri(Tri::Undecided),
            Node::EqV { .. } => CState::EqV(EqVState::Pending {
                u: Place::Unplaced,
                v: Place::Unplaced,
            }),
            Node::EqE { .. } => CState::EqE(EqEState::Neither),
            Node::Adj { .. } => CState::Adj(AdjState::Pending {
                u: Place::Unplaced,
                v: Place::Unplaced,
                u_adj: 0,
                v_adj: 0,
            }),
            Node::Inc { .. } => CState::Inc(IncState::Pending {
                v: Place::Unplaced,
                ends: None,
            }),
            Node::Not(a) => Self::init(a),
            Node::Bin(_, a, b) => CState::Pair(Box::new((Self::init(a), Self::init(b)))),
            Node::Quant { sort, body, .. } => CState::Runs(vec![Run {
                data: RunData::initial(*sort),
                body: Self::init(body),
            }]),
        }
    }

    /// One structural operation applied to one node's state under the
    /// enclosing decoration mask. Total and deterministic for every
    /// well-formed `(node, state)` pair.
    fn step(node: &Node, s: &CState, op: Op, deco: u64) -> CState {
        if let CState::Done(b) = s {
            return CState::Done(*b);
        }
        let raw = Self::step_raw(node, s, op, deco);
        Self::normalize(node, raw)
    }

    fn step_raw(node: &Node, s: &CState, op: Op, deco: u64) -> CState {
        match (node, s) {
            (Node::InVSet { v, set }, CState::Tri(t)) => CState::Tri(match op {
                Op::AddVertex { .. } if *t == Tri::Undecided && deco_has(deco, *v) => {
                    Tri::of(deco_has(deco, *set))
                }
                _ => *t,
            }),
            (Node::InESet { e, set }, CState::Tri(t)) => CState::Tri(match op {
                Op::AddEdge { .. } if *t == Tri::Undecided && deco_has(deco, *e) => {
                    Tri::of(deco_has(deco, *set))
                }
                _ => *t,
            }),
            (Node::VLabelIs { v, label }, CState::Tri(t)) => CState::Tri(match op {
                Op::AddVertex { label: l, .. } if *t == Tri::Undecided && deco_has(deco, *v) => {
                    Tri::of(l == *label)
                }
                _ => *t,
            }),
            // Pipeline edges are uniformly unlabeled (label 0), so the
            // verdict is fixed by the target label the moment the edge
            // variable lands on a marked edge.
            (Node::ELabelIs { e, label }, CState::Tri(t)) => CState::Tri(match op {
                Op::AddEdge { .. } if *t == Tri::Undecided && deco_has(deco, *e) => {
                    Tri::of(*label == 0)
                }
                _ => *t,
            }),
            (Node::EqV { u, v }, CState::EqV(st)) => CState::EqV(step_eqv(*st, op, deco, *u, *v)),
            (Node::EqE { a, b }, CState::EqE(st)) => CState::EqE(step_eqe(*st, op, deco, *a, *b)),
            (Node::Adj { u, v }, CState::Adj(st)) => CState::Adj(step_adj(*st, op, deco, *u, *v)),
            (Node::Inc { e, v }, CState::Inc(st)) => CState::Inc(step_inc(*st, op, deco, *e, *v)),
            (Node::Not(a), _) => Self::step(a, s, op, deco),
            (Node::Bin(_, a, b), CState::Pair(p)) => CState::Pair(Box::new((
                Self::step(a, &p.0, op, deco),
                Self::step(b, &p.1, op, deco),
            ))),
            (
                Node::Quant {
                    sort, bit, body, ..
                },
                CState::Runs(runs),
            ) => CState::Runs(step_runs(runs, *sort, *bit, body, op, deco)),
            _ => panic!("compiled state does not match its plan node"),
        }
    }

    /// Disjoint union of two states of the same node (`shift` = arity of
    /// the left operand; right-operand slots are renumbered up by it).
    fn union_state(node: &Node, s1: &CState, s2: &CState, shift: usize) -> CState {
        // A decided verdict absorbs (two contradictory decided sides
        // cannot arise: each side's verdict quantifies over all
        // extensions, including their common union).
        if let CState::Done(b) = s1 {
            return CState::Done(*b);
        }
        if let CState::Done(b) = s2 {
            return CState::Done(*b);
        }
        let raw = Self::union_raw(node, s1, s2, shift);
        Self::normalize(node, raw)
    }

    fn union_raw(node: &Node, s1: &CState, s2: &CState, shift: usize) -> CState {
        match (node, s1, s2) {
            (
                Node::InVSet { .. }
                | Node::InESet { .. }
                | Node::VLabelIs { .. }
                | Node::ELabelIs { .. },
                CState::Tri(a),
                CState::Tri(b),
            ) => CState::Tri(a.union(*b)),
            (Node::EqV { .. }, CState::EqV(a), CState::EqV(b)) => {
                CState::EqV(union_eqv(*a, *b, shift))
            }
            (Node::EqE { .. }, CState::EqE(a), CState::EqE(b)) => CState::EqE(union_eqe(*a, *b)),
            (Node::Adj { .. }, CState::Adj(a), CState::Adj(b)) => {
                CState::Adj(union_adj(*a, *b, shift))
            }
            (Node::Inc { .. }, CState::Inc(a), CState::Inc(b)) => {
                CState::Inc(union_inc(*a, *b, shift))
            }
            (Node::Not(n), _, _) => Self::union_state(n, s1, s2, shift),
            (Node::Bin(_, na, nb), CState::Pair(p1), CState::Pair(p2)) => CState::Pair(Box::new((
                Self::union_state(na, &p1.0, &p2.0, shift),
                Self::union_state(nb, &p1.1, &p2.1, shift),
            ))),
            (Node::Quant { body, .. }, CState::Runs(r1), CState::Runs(r2)) => {
                let mut out = Vec::with_capacity(r1.len() * r2.len());
                for a in r1 {
                    for b in r2 {
                        let Some(data) = a.data.union(&b.data, shift) else {
                            continue;
                        };
                        out.push(Run {
                            data,
                            body: Self::union_state(body, &a.body, &b.body, shift),
                        });
                    }
                }
                CState::Runs(canonical_runs(out))
            }
            _ => panic!("compiled state does not match its plan node"),
        }
    }

    /// Acceptance of the summarized (decorated) graph at one node.
    fn accept_state(node: &Node, s: &CState) -> bool {
        match (node, s) {
            (
                Node::InVSet { .. }
                | Node::InESet { .. }
                | Node::VLabelIs { .. }
                | Node::ELabelIs { .. },
                CState::Tri(t),
            ) => *t == Tri::Yes,
            (Node::EqV { .. }, CState::EqV(st)) => *st == EqVState::True,
            (Node::EqE { .. }, CState::EqE(st)) => *st == EqEState::True,
            (Node::Adj { .. }, CState::Adj(st)) => *st == AdjState::True,
            (Node::Inc { .. }, CState::Inc(st)) => *st == IncState::True,
            (Node::Not(a), _) => !Self::accept_state(a, s),
            (Node::Bin(op, a, b), CState::Pair(p)) => {
                let (x, y) = (Self::accept_state(a, &p.0), Self::accept_state(b, &p.1));
                match op {
                    BinOp::And => x && y,
                    BinOp::Or => x || y,
                    BinOp::Implies => !x || y,
                    BinOp::Iff => x == y,
                }
            }
            (
                Node::Quant {
                    sort, forall, body, ..
                },
                CState::Runs(runs),
            ) => {
                // Individual quantifiers range over *placed* runs only
                // (an unplaced run is the no-candidate branch); set
                // quantifiers range over every run.
                let relevant = runs.iter().filter(|r| match (&r.data, sort) {
                    (RunData::Individual { placed }, _) => *placed,
                    _ => true,
                });
                let mut accepts = relevant.map(|r| Self::accept_state(body, &r.body));
                if *forall {
                    accepts.all(|a| a)
                } else {
                    accepts.any(|a| a)
                }
            }
            (_, CState::Done(b)) => *b,
            _ => panic!("compiled state does not match its plan node"),
        }
    }

    /// The node's verdict when it is already fixed (`Not` unwraps to its
    /// child, whose state it shares).
    fn decided(node: &Node, s: &CState) -> Option<bool> {
        match (node, s) {
            (Node::Not(a), _) => Self::decided(a, s).map(|b| !b),
            (_, CState::Done(b)) => Some(*b),
            _ => None,
        }
    }

    /// Collapses a state whose verdict is fixed in *every completion* of
    /// the current partial graph to [`CState::Done`]. `Done` is then
    /// absorbing under all operations — including union, because every
    /// completion of `union(s, t)` is in particular a completion of `s`
    /// (the other side's structure is just part of the extension).
    ///
    /// The collapse is sound by structural induction: a leaf decides only
    /// once its variables are resolved and its verdict witnessed or
    /// foreclosed; products short-circuit; for quantifiers, a *counting*
    /// run (placed individual, or any set run) with a decided body of the
    /// witnessing polarity (`∃`: true, `∀`: false) is a standing
    /// witness/counterexample in every completion and decides the node,
    /// while runs of the neutral polarity can never affect acceptance
    /// again — their forks (future candidate choices) inherit the decided
    /// body — and are dropped; an emptied run set is itself decided. This
    /// collapse is what keeps compiled state spaces small enough for the
    /// freeze pass.
    fn normalize(node: &Node, s: CState) -> CState {
        match (node, &s) {
            // A `Not` node shares its child's (already normalized) state.
            (Node::Not(_), _) => s,
            (_, CState::Tri(Tri::Yes))
            | (_, CState::EqV(EqVState::True))
            | (_, CState::EqE(EqEState::True))
            | (_, CState::Adj(AdjState::True))
            | (_, CState::Inc(IncState::True)) => CState::Done(true),
            (_, CState::Tri(Tri::No))
            | (_, CState::EqV(EqVState::False))
            | (_, CState::EqE(EqEState::False))
            | (_, CState::Adj(AdjState::False))
            | (_, CState::Inc(IncState::False)) => CState::Done(false),
            (Node::Bin(op, na, nb), CState::Pair(p)) => {
                let l = Self::decided(na, &p.0);
                let r = Self::decided(nb, &p.1);
                match (op, l, r) {
                    (BinOp::And, Some(a), Some(b)) => CState::Done(a && b),
                    (BinOp::Or, Some(a), Some(b)) => CState::Done(a || b),
                    (BinOp::Implies, Some(a), Some(b)) => CState::Done(!a || b),
                    (BinOp::Iff, Some(a), Some(b)) => CState::Done(a == b),
                    (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => {
                        CState::Done(false)
                    }
                    (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => CState::Done(true),
                    (BinOp::Implies, Some(false), _) | (BinOp::Implies, _, Some(true)) => {
                        CState::Done(true)
                    }
                    _ => s,
                }
            }
            (
                Node::Quant {
                    sort: _,
                    forall,
                    body,
                    ..
                },
                CState::Runs(runs),
            ) => {
                let witness = !*forall;
                let mut kept = Vec::with_capacity(runs.len());
                for r in runs {
                    let counts = match &r.data {
                        RunData::Individual { placed } => *placed,
                        _ => true,
                    };
                    match Self::decided(body, &r.body) {
                        Some(b) if b == witness && counts => return CState::Done(witness),
                        // Neutral polarity: the run, its forks, and its
                        // union pairings can never affect acceptance.
                        Some(b) if b != witness => {}
                        // Undecided, or an unplaced run of witnessing
                        // polarity (future forks place it).
                        _ => kept.push(r.clone()),
                    }
                }
                if kept.is_empty() {
                    // Every run was neutral: `∃` has no candidate left,
                    // `∀` no counterexample source.
                    CState::Done(*forall)
                } else if kept.len() == runs.len() {
                    s
                } else {
                    CState::Runs(kept)
                }
            }
            _ => s,
        }
    }
}

impl RunData {
    fn initial(sort: Sort) -> Self {
        match sort {
            Sort::Vertex | Sort::Edge => Self::Individual { placed: false },
            Sort::VertexSet => Self::VSet { bits: 0 },
            Sort::EdgeSet => Self::ESet,
        }
    }

    /// Combines the decoration data of two runs being unioned; `None`
    /// when the pair is inconsistent (an individual variable placed on
    /// both sides).
    fn union(&self, other: &Self, shift: usize) -> Option<Self> {
        match (self, other) {
            (Self::Individual { placed: a }, Self::Individual { placed: b }) => {
                if *a && *b {
                    None
                } else {
                    Some(Self::Individual { placed: *a || *b })
                }
            }
            (Self::VSet { bits: a }, Self::VSet { bits: b }) => Some(Self::VSet {
                bits: a | if shift < 64 { b << shift } else { 0 },
            }),
            (Self::ESet, Self::ESet) => Some(Self::ESet),
            _ => panic!("mismatched run data in union"),
        }
    }
}

/// Sorts and deduplicates a run set (the canonical powerset value).
fn canonical_runs(mut runs: Vec<Run>) -> Vec<Run> {
    runs.sort_unstable();
    runs.dedup();
    runs
}

/// One quantifier node's transition: fork runs on the ops that decorate
/// this variable's sort, filter runs whose decoration a glue
/// contradicts, and keep the set canonical.
fn step_runs(runs: &[Run], sort: Sort, qbit: u8, body: &Node, op: Op, deco: u64) -> Vec<Run> {
    let mut out = Vec::with_capacity(runs.len() * 2);
    let bitmask = 1u64 << qbit;
    for run in runs {
        match (&run.data, op, sort) {
            (RunData::Individual { placed }, Op::AddVertex { .. }, Sort::Vertex)
            | (RunData::Individual { placed }, Op::AddEdge { .. }, Sort::Edge) => {
                out.push(Run {
                    data: run.data.clone(),
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
                if !placed {
                    out.push(Run {
                        data: RunData::Individual { placed: true },
                        body: CompiledProperty::step(body, &run.body, op, deco | bitmask),
                    });
                }
            }
            (RunData::VSet { bits }, Op::AddVertex { slot, .. }, Sort::VertexSet) => {
                out.push(Run {
                    data: RunData::VSet { bits: *bits },
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
                out.push(Run {
                    data: RunData::VSet {
                        bits: bits | bit(slot),
                    },
                    body: CompiledProperty::step(body, &run.body, op, deco | bitmask),
                });
            }
            (RunData::ESet, Op::AddEdge { .. }, Sort::EdgeSet) => {
                out.push(Run {
                    data: RunData::ESet,
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
                out.push(Run {
                    data: RunData::ESet,
                    body: CompiledProperty::step(body, &run.body, op, deco | bitmask),
                });
            }
            (RunData::VSet { bits }, Op::Glue { keep, drop, .. }, _) => {
                if has(*bits, keep) != has(*bits, drop) {
                    // This run decorated the two vertices inconsistently;
                    // no decoration of the glued graph corresponds to it.
                    continue;
                }
                out.push(Run {
                    data: RunData::VSet {
                        bits: set_shift_down(*bits, drop),
                    },
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
            }
            (RunData::VSet { bits }, Op::Forget { slot }, _) => {
                out.push(Run {
                    data: RunData::VSet {
                        bits: set_shift_down(*bits, slot),
                    },
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
            }
            (RunData::VSet { bits }, Op::Swap { a, b }, _) => {
                out.push(Run {
                    data: RunData::VSet {
                        bits: set_swap(*bits, a, b),
                    },
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
            }
            _ => {
                out.push(Run {
                    data: run.data.clone(),
                    body: CompiledProperty::step(body, &run.body, op, deco),
                });
            }
        }
    }
    canonical_runs(out)
}

fn step_eqv(st: EqVState, op: Op, deco: u64, ub: u8, vb: u8) -> EqVState {
    let EqVState::Pending { u, v } = st else {
        return st;
    };
    match op {
        Op::AddVertex { slot, .. } => {
            let pu = deco_has(deco, ub) && u == Place::Unplaced;
            let pv = deco_has(deco, vb) && v == Place::Unplaced;
            if pu && pv {
                return EqVState::True;
            }
            let u = if pu { Place::At(slot as u8) } else { u };
            let v = if pv { Place::At(slot as u8) } else { v };
            EqVState::Pending { u, v }
        }
        Op::AddEdge { .. } => st,
        Op::Glue { keep, drop, .. } => {
            let at = |p: Place, s: usize| p == Place::At(s as u8);
            if (at(u, keep) && at(v, drop)) || (at(u, drop) && at(v, keep)) {
                return EqVState::True;
            }
            EqVState::Pending {
                u: glue_place(u, keep, drop),
                v: glue_place(v, keep, drop),
            }
        }
        Op::Forget { slot } => {
            if u == Place::At(slot as u8) || v == Place::At(slot as u8) {
                // The forgotten vertex can never be glued with anything,
                // so the two variables can never coincide.
                EqVState::False
            } else {
                EqVState::Pending {
                    u: u.shift_down(slot),
                    v: v.shift_down(slot),
                }
            }
        }
        Op::Swap { a, b } => EqVState::Pending {
            u: u.swap(a, b),
            v: v.swap(a, b),
        },
    }
}

fn glue_place(p: Place, keep: usize, drop: usize) -> Place {
    if p == Place::At(drop as u8) {
        Place::At(keep as u8).shift_down(drop)
    } else {
        p.shift_down(drop)
    }
}

fn union_eqv(a: EqVState, b: EqVState, shift: usize) -> EqVState {
    match (a, b) {
        (EqVState::False, _) | (_, EqVState::False) => EqVState::False,
        (EqVState::True, _) | (_, EqVState::True) => EqVState::True,
        (EqVState::Pending { u: u1, v: v1 }, EqVState::Pending { u: u2, v: v2 }) => {
            EqVState::Pending {
                u: merge_place(u1, u2, shift),
                v: merge_place(v1, v2, shift),
            }
        }
    }
}

/// An individual variable is placed on at most one side of a union
/// (inconsistent pairs are dropped by the quantifier); the combined
/// placement is whichever side has it, right-side slots shifted up.
fn merge_place(left: Place, right: Place, shift: usize) -> Place {
    match (left, right) {
        (Place::Unplaced, r) => r.shift_up(shift),
        (l, _) => l,
    }
}

fn step_eqe(st: EqEState, op: Op, deco: u64, ab: u8, bb: u8) -> EqEState {
    let Op::AddEdge { .. } = op else {
        return st;
    };
    let pa = deco_has(deco, ab);
    let pb = deco_has(deco, bb);
    match st {
        EqEState::Neither => match (pa, pb) {
            (true, true) => EqEState::True,
            (true, false) => EqEState::AOnly,
            (false, true) => EqEState::BOnly,
            (false, false) => EqEState::Neither,
        },
        EqEState::AOnly if pb => EqEState::False,
        EqEState::BOnly if pa => EqEState::False,
        other => other,
    }
}

fn union_eqe(a: EqEState, b: EqEState) -> EqEState {
    use EqEState::*;
    match (a, b) {
        (False, _) | (_, False) => False,
        (True, _) | (_, True) => True,
        (Neither, x) | (x, Neither) => x,
        (AOnly, BOnly) | (BOnly, AOnly) => False,
        (AOnly, AOnly) | (BOnly, BOnly) => a,
    }
}

/// Collapses an `adj` pending state whose verdict can no longer change:
/// a forgotten vertex gets no new edges, so once it is adjacent to no
/// live slot — in particular once both endpoints are internal — no
/// future placement or merge can connect it to the other endpoint.
fn pending_or_false_adj(u: Place, v: Place, u_adj: SlotSet, v_adj: SlotSet) -> AdjState {
    let u_stuck = u == Place::Inside && u_adj == 0;
    let v_stuck = v == Place::Inside && v_adj == 0;
    let both_inside = u == Place::Inside && v == Place::Inside;
    if both_inside || u_stuck || v_stuck {
        return AdjState::False;
    }
    AdjState::Pending { u, v, u_adj, v_adj }
}

fn step_adj(st: AdjState, op: Op, deco: u64, ub: u8, vb: u8) -> AdjState {
    let AdjState::Pending { u, v, u_adj, v_adj } = st else {
        return st;
    };
    let at = |p: Place, s: usize| p == Place::At(s as u8);
    match op {
        Op::AddVertex { slot, .. } => {
            let pu = deco_has(deco, ub) && u == Place::Unplaced;
            let pv = deco_has(deco, vb) && v == Place::Unplaced;
            if pu && pv {
                // Both variables on the same (simple-graph) vertex:
                // adj(x, x) never holds.
                return AdjState::False;
            }
            AdjState::Pending {
                u: if pu { Place::At(slot as u8) } else { u },
                v: if pv { Place::At(slot as u8) } else { v },
                u_adj,
                v_adj,
            }
        }
        Op::AddEdge { a, b } => {
            if (at(u, a) && at(v, b)) || (at(u, b) && at(v, a)) {
                return AdjState::True;
            }
            let mut u_adj = u_adj;
            let mut v_adj = v_adj;
            if at(u, a) {
                u_adj |= bit(b);
            }
            if at(u, b) {
                u_adj |= bit(a);
            }
            if at(v, a) {
                v_adj |= bit(b);
            }
            if at(v, b) {
                v_adj |= bit(a);
            }
            AdjState::Pending { u, v, u_adj, v_adj }
        }
        Op::Glue { keep, drop, row } => {
            let at_merge = |p: Place| at(p, keep) || at(p, drop);
            if at_merge(u) && at_merge(v) {
                // Merged into one vertex: never self-adjacent.
                return AdjState::False;
            }
            let merge = |adj: SlotSet| {
                let mut a = adj;
                if has(a, drop) {
                    a |= bit(keep);
                }
                set_shift_down(a, drop)
            };
            // A variable sitting on the glued pair inherits the merged
            // vertex's full neighbour set; anyone else just remaps.
            let u_adj = if at_merge(u) { row } else { merge(u_adj) };
            let v_adj = if at_merge(v) { row } else { merge(v_adj) };
            let u = glue_place(u, keep, drop);
            let v = glue_place(v, keep, drop);
            if let Place::At(s) = u {
                if has(v_adj, usize::from(s)) {
                    return AdjState::True;
                }
            }
            if let Place::At(t) = v {
                if has(u_adj, usize::from(t)) {
                    return AdjState::True;
                }
            }
            pending_or_false_adj(u, v, u_adj, v_adj)
        }
        Op::Forget { slot } => {
            let u = if at(u, slot) {
                Place::Inside
            } else {
                u.shift_down(slot)
            };
            let v = if at(v, slot) {
                Place::Inside
            } else {
                v.shift_down(slot)
            };
            pending_or_false_adj(
                u,
                v,
                set_shift_down(u_adj, slot),
                set_shift_down(v_adj, slot),
            )
        }
        Op::Swap { a, b } => AdjState::Pending {
            u: u.swap(a, b),
            v: v.swap(a, b),
            u_adj: set_swap(u_adj, a, b),
            v_adj: set_swap(v_adj, a, b),
        },
    }
}

fn union_adj(a: AdjState, b: AdjState, shift: usize) -> AdjState {
    match (a, b) {
        (AdjState::False, _) | (_, AdjState::False) => AdjState::False,
        (AdjState::True, _) | (_, AdjState::True) => AdjState::True,
        (
            AdjState::Pending {
                u: u1,
                v: v1,
                u_adj: ua1,
                v_adj: va1,
            },
            AdjState::Pending {
                u: u2,
                v: v2,
                u_adj: ua2,
                v_adj: va2,
            },
        ) => {
            let up = |s: SlotSet| if shift < 64 { s << shift } else { 0 };
            pending_or_false_adj(
                merge_place(u1, u2, shift),
                merge_place(v1, v2, shift),
                ua1 | up(ua2),
                va1 | up(va2),
            )
        }
    }
}

fn step_inc(st: IncState, op: Op, deco: u64, eb: u8, vb: u8) -> IncState {
    let IncState::Pending { v, ends } = st else {
        return st;
    };
    let at = |p: Place, s: usize| p == Place::At(s as u8);
    match op {
        Op::AddVertex { slot, .. } => {
            if deco_has(deco, vb) && v == Place::Unplaced {
                // A fresh vertex is not an endpoint of an existing edge.
                IncState::Pending {
                    v: Place::At(slot as u8),
                    ends,
                }
            } else {
                IncState::Pending { v, ends }
            }
        }
        Op::AddEdge { a, b } => {
            if deco_has(deco, eb) && ends.is_none() {
                if at(v, a) || at(v, b) {
                    return IncState::True;
                }
                if v == Place::Inside {
                    // The edge's endpoints are live slots; a forgotten
                    // vertex is neither, and never will be.
                    return IncState::False;
                }
                return IncState::Pending {
                    v,
                    ends: Some(bit(a) | bit(b)),
                };
            }
            IncState::Pending { v, ends }
        }
        Op::Glue { keep, drop, .. } => {
            if let Some(e) = ends {
                let hit = (at(v, keep) && has(e, drop)) || (at(v, drop) && has(e, keep));
                if hit {
                    return IncState::True;
                }
                let mut e2 = e;
                if has(e2, drop) {
                    e2 |= bit(keep);
                }
                let e2 = set_shift_down(e2, drop);
                pending_or_false(glue_place(v, keep, drop), Some(e2))
            } else {
                pending_or_false(glue_place(v, keep, drop), None)
            }
        }
        Op::Forget { slot } => {
            let v2 = if at(v, slot) {
                Place::Inside
            } else {
                v.shift_down(slot)
            };
            let ends2 = ends.map(|e| set_shift_down(e, slot));
            pending_or_false(v2, ends2)
        }
        Op::Swap { a, b } => IncState::Pending {
            v: v.swap(a, b),
            ends: ends.map(|e| set_swap(e, a, b)),
        },
    }
}

/// Collapses an `inc` pending state whose verdict can no longer change.
fn pending_or_false(v: Place, ends: Option<SlotSet>) -> IncState {
    match (v, ends) {
        // Vertex fixed internally: live endpoints can only merge with
        // live slots, a future edge placement lands on live slots.
        (Place::Inside, _) => IncState::False,
        // Edge placed but every endpoint retired: the vertex (current or
        // future) can never coincide with one.
        (_, Some(0)) => IncState::False,
        _ => IncState::Pending { v, ends },
    }
}

fn union_inc(a: IncState, b: IncState, shift: usize) -> IncState {
    match (a, b) {
        (IncState::False, _) | (_, IncState::False) => IncState::False,
        (IncState::True, _) | (_, IncState::True) => IncState::True,
        (IncState::Pending { v: v1, ends: e1 }, IncState::Pending { v: v2, ends: e2 }) => {
            let up = |s: SlotSet| if shift < 64 { s << shift } else { 0 };
            let ends = match (e1, e2) {
                (Some(e), _) => Some(e),
                (None, Some(e)) => Some(up(e)),
                (None, None) => None,
            };
            pending_or_false(merge_place(v1, v2, shift), ends)
        }
    }
}

impl Property for CompiledProperty {
    type State = CompiledState;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn empty(&self) -> CompiledState {
        CompiledState {
            arity: 0,
            adj: Vec::new(),
            root: Self::init(&self.plan),
        }
    }

    fn add_vertex(&self, s: &CompiledState, label: u32) -> CompiledState {
        let op = Op::AddVertex {
            label,
            slot: usize::from(s.arity),
        };
        let mut adj = s.adj.clone();
        adj.push(0);
        CompiledState {
            arity: s.arity + 1,
            adj,
            root: Self::step(&self.plan, &s.root, op, 0),
        }
    }

    fn add_edge(&self, s: &CompiledState, a: Slot, b: Slot, marked: bool) -> CompiledState {
        if !marked {
            // Completion-only structure: invisible to the property.
            return s.clone();
        }
        let mut adj = s.adj.clone();
        adj[a] |= bit(b);
        adj[b] |= bit(a);
        CompiledState {
            arity: s.arity,
            adj,
            root: Self::step(&self.plan, &s.root, Op::AddEdge { a, b }, 0),
        }
    }

    fn glue(&self, s: &CompiledState, a: Slot, b: Slot) -> CompiledState {
        let (keep, drop) = glue_order(a, b);
        let mut adj = s.adj.clone();
        let merged = (adj[keep] | adj[drop]) & !(bit(keep) | bit(drop));
        adj[keep] = merged;
        adj.remove(drop);
        for r in adj.iter_mut() {
            if has(*r, drop) {
                *r |= bit(keep);
            }
            *r = set_shift_down(*r, drop);
        }
        let row = adj[keep];
        CompiledState {
            arity: s.arity.saturating_sub(1),
            adj,
            root: Self::step(&self.plan, &s.root, Op::Glue { keep, drop, row }, 0),
        }
    }

    fn forget(&self, s: &CompiledState, a: Slot) -> CompiledState {
        let mut adj = s.adj.clone();
        adj.remove(a);
        for r in adj.iter_mut() {
            *r = set_shift_down(*r, a);
        }
        CompiledState {
            arity: s.arity.saturating_sub(1),
            adj,
            root: Self::step(&self.plan, &s.root, Op::Forget { slot: a }, 0),
        }
    }

    fn union(&self, s1: &CompiledState, s2: &CompiledState) -> CompiledState {
        let shift = usize::from(s1.arity);
        let mut adj = s1.adj.clone();
        adj.extend(
            s2.adj
                .iter()
                .map(|r| if shift < 64 { r << shift } else { 0 }),
        );
        CompiledState {
            arity: s1.arity + s2.arity,
            adj,
            root: Self::union_state(&self.plan, &s1.root, &s2.root, shift),
        }
    }

    fn swap(&self, s: &CompiledState, a: Slot, b: Slot) -> CompiledState {
        let mut adj = s.adj.clone();
        adj.swap(a, b);
        for r in adj.iter_mut() {
            *r = set_swap(*r, a, b);
        }
        CompiledState {
            arity: s.arity,
            adj,
            root: Self::step(&self.plan, &s.root, Op::Swap { a, b }, 0),
        }
    }

    fn accept(&self, s: &CompiledState) -> bool {
        Self::accept_state(&self.plan, &s.root)
    }

    fn enumerable(&self) -> bool {
        self.enumerable
    }
}

impl fmt::Debug for CompiledProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProperty")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, props};
    use lanecert_algebra::mirror::{self, Mirror, Program, TraceStep};
    use lanecert_algebra::Algebra;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn alg(f: &Formula) -> Algebra {
        Algebra::new(compile(f).expect("formula compiles"))
    }

    /// Trace-size budgets for the generator. `cap` bounds *live* slots
    /// (run sets grow as 2^arity per vertex-set quantifier); `vmax` and
    /// `emax` bound *cumulative* vertices and marked edges (edge-set
    /// quantifier run sets grow with every marked edge until dedup
    /// collapses them, so dev-profile tests need both knobs).
    #[derive(Copy, Clone)]
    struct Budget {
        cap: usize,
        vmax: usize,
        emax: usize,
    }

    /// Random op-trace generator honouring a [`Budget`] (the stock
    /// mirror generator's 12-slot traces are too wide for nested-set
    /// formulas in dev profile).
    fn gen_steps(
        rng: &mut StdRng,
        m: &mut Mirror,
        count: usize,
        cap: usize,
        budget: &mut Budget,
        out: &mut Vec<TraceStep>,
    ) {
        for _ in 0..count {
            let k = m.slot_count();
            let step = match rng.random_range(0..12u32) {
                0..=3 => {
                    if k >= cap || budget.vmax == 0 {
                        continue;
                    }
                    budget.vmax -= 1;
                    TraceStep::Vertex(0)
                }
                4..=8 => {
                    if k < 2 {
                        continue;
                    }
                    let a = rng.random_range(0..k);
                    let b = rng.random_range(0..k);
                    if a == b || m.same_vertex(a, b) {
                        continue;
                    }
                    let marked = rng.random_range(0..6u32) != 0;
                    if marked && (budget.emax == 0 || m.marked_adjacent(a, b)) {
                        continue;
                    }
                    if marked {
                        budget.emax -= 1;
                    }
                    TraceStep::Edge(a, b, marked)
                }
                9..=10 => {
                    if k < 3 {
                        continue;
                    }
                    let a = rng.random_range(0..k);
                    let b = rng.random_range(0..k);
                    if a == b
                        || m.same_vertex(a, b)
                        || m.marked_adjacent(a, b)
                        || m.share_marked_neighbor(a, b)
                    {
                        continue;
                    }
                    TraceStep::Glue(a, b)
                }
                _ => {
                    if k < 2 {
                        continue;
                    }
                    TraceStep::Forget(rng.random_range(0..k))
                }
            };
            m.apply(step);
            out.push(step);
        }
    }

    fn random_capped_program(rng: &mut StdRng, mut budget: Budget, count: usize) -> Program {
        let segs = if rng.random_range(0..3u32) == 0 { 2 } else { 1 };
        let cap = budget.cap;
        let mut prog = Program::default();
        let mut combined = Mirror::default();
        for _ in 0..segs {
            let mut m = Mirror::default();
            let mut steps = Vec::new();
            gen_steps(rng, &mut m, count / segs, cap, &mut budget, &mut steps);
            combined.union(&m);
            prog.segments.push(steps);
        }
        gen_steps(
            rng,
            &mut combined,
            count / 2,
            cap + 1,
            &mut budget,
            &mut prog.tail,
        );
        prog
    }

    /// Differentially checks one compiled formula against the naive
    /// evaluator on random primitive-op traces (glue/forget/union
    /// included), via the trace mirror.
    fn check(f: &Formula, seed: u64, trials: usize, budget: Budget) {
        let a = alg(f);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..trials {
            let prog = random_capped_program(&mut rng, budget, 32);
            let got = a.accept(&mirror::run_program(&a, &prog));
            let mut m = mirror::mirror_program(&prog);
            let g = m.marked_graph();
            let want = eval::check(&g, f);
            assert_eq!(
                got,
                want,
                "{}: trial {t} disagrees (graph n={} m={}): {prog:?}",
                a.name(),
                g.vertex_count(),
                g.edge_count()
            );
        }
    }

    #[test]
    fn compile_rejects_open_and_ill_sorted_formulas() {
        assert_eq!(
            compile(&Formula::Adj(0, 1)).err(),
            Some(CompileError::UnboundVariable(0))
        );
        // x bound as a vertex but used as an edge.
        let f = Formula::Exists(Sort::Vertex, 0, Box::new(Formula::ELabelIs(0, 0)));
        assert_eq!(
            compile(&f).err(),
            Some(CompileError::SortMismatch {
                var: 0,
                bound: Sort::Vertex,
                used: Sort::Edge
            })
        );
    }

    #[test]
    fn compile_rejects_too_many_quantifiers() {
        let mut f = Formula::True;
        for v in 0..=MAX_QUANTIFIERS as Var {
            f = Formula::Exists(Sort::Vertex, v, Box::new(f));
        }
        assert!(matches!(
            compile(&f),
            Err(CompileError::TooManyQuantifiers { .. })
        ));
    }

    #[test]
    fn adjacent_pair_accepts_exactly_on_an_edge() {
        // ∃u ∃v adj(u, v)
        let f = Formula::Exists(
            Sort::Vertex,
            0,
            Box::new(Formula::Exists(
                Sort::Vertex,
                1,
                Box::new(Formula::Adj(0, 1)),
            )),
        );
        let a = alg(&f);
        let mut s = a.empty();
        assert!(!a.accept(&s));
        s = a.add_vertex(s, 0);
        s = a.add_vertex(s, 0);
        assert!(!a.accept(&s));
        let with_unmarked = a.add_edge(s.clone(), 0, 1, false);
        assert!(!a.accept(&with_unmarked), "unmarked edges are invisible");
        s = a.add_edge(s, 0, 1, true);
        assert!(a.accept(&s));
    }

    #[test]
    fn verdict_survives_forgetting_endpoints() {
        let f = Formula::Exists(
            Sort::Vertex,
            0,
            Box::new(Formula::Exists(
                Sort::Vertex,
                1,
                Box::new(Formula::Adj(0, 1)),
            )),
        );
        let a = alg(&f);
        let prog = Program {
            segments: vec![vec![
                TraceStep::Vertex(0),
                TraceStep::Vertex(0),
                TraceStep::Edge(0, 1, true),
                TraceStep::Forget(0),
                TraceStep::Forget(0),
            ]],
            tail: vec![],
        };
        assert!(a.accept(&mirror::run_program(&a, &prog)));
    }

    #[test]
    fn glue_makes_adjacency_across_union() {
        // Two disjoint marked edges; gluing an endpoint of each yields a
        // path of three — still satisfies ∃u∃v adj(u,v), and satisfies
        // connectivity only after the glue.
        let conn = props::connected();
        let a = alg(&conn);
        let seg = vec![
            TraceStep::Vertex(0),
            TraceStep::Vertex(0),
            TraceStep::Edge(0, 1, true),
        ];
        let split = Program {
            segments: vec![seg.clone(), seg.clone()],
            tail: vec![],
        };
        assert!(!a.accept(&mirror::run_program(&a, &split)));
        let joined = Program {
            segments: vec![seg.clone(), seg],
            tail: vec![TraceStep::Glue(1, 2)],
        };
        assert!(a.accept(&mirror::run_program(&a, &joined)));
    }

    #[test]
    fn labels_reach_the_vertex_label_leaf() {
        // ∀v label(v) = 0 holds on unlabeled traces; = 7 fails once any
        // vertex exists.
        let all0 = Formula::Forall(Sort::Vertex, 0, Box::new(Formula::VLabelIs(0, 0)));
        let all7 = Formula::Forall(Sort::Vertex, 0, Box::new(Formula::VLabelIs(0, 7)));
        let (a0, a7) = (alg(&all0), alg(&all7));
        let mut s0 = a0.empty();
        let mut s7 = a7.empty();
        assert!(a0.accept(&s0), "vacuously true on the empty graph");
        assert!(a7.accept(&s7), "vacuously true on the empty graph");
        s0 = a0.add_vertex(s0, 0);
        s7 = a7.add_vertex(s7, 0);
        assert!(a0.accept(&s0));
        assert!(!a7.accept(&s7));
    }

    #[test]
    fn differential_first_order_formulas() {
        let b = Budget {
            cap: 6,
            vmax: 12,
            emax: 20,
        };
        check(&props::triangle_free(), 11, 40, b);
        check(&props::max_degree_at_most(2), 12, 40, b);
        check(&props::dominating_set_at_most(2), 13, 40, b);
        check(&props::vertex_cover_at_most(2), 14, 40, b);
        check(&props::independent_set_at_least(3), 15, 40, b);
    }

    #[test]
    fn differential_set_quantifier_formulas() {
        let b = Budget {
            cap: 4,
            vmax: 8,
            emax: 9,
        };
        check(&props::bipartite(), 21, 16, b);
        check(&props::connected(), 22, 16, b);
        check(&props::acyclic(), 23, 12, b);
        check(
            &props::colorable(2),
            24,
            8,
            Budget {
                cap: 3,
                vmax: 6,
                emax: 7,
            },
        );
    }

    #[test]
    fn differential_matching_and_hamiltonicity() {
        let b = Budget {
            cap: 4,
            vmax: 6,
            emax: 8,
        };
        check(&props::perfect_matching(), 31, 8, b);
        check(&props::hamiltonian_cycle(), 32, 6, b);
    }

    #[test]
    fn compiled_name_is_alpha_invariant() {
        let f1 = props::bipartite();
        // Same formula with shifted variable numbers.
        let g = Formula::Exists(
            Sort::VertexSet,
            40,
            Box::new(Formula::Forall(
                Sort::Vertex,
                41,
                Box::new(Formula::Forall(
                    Sort::Vertex,
                    42,
                    Box::new(
                        Formula::Adj(41, 42)
                            .implies(Formula::InVSet(41, 40).iff(Formula::InVSet(42, 40)).not()),
                    ),
                )),
            )),
        );
        assert_eq!(compile(&f1).unwrap().name(), compile(&g).unwrap().name());
    }
}
