//! A small s-expression surface syntax for [`Formula`], plus the
//! canonical renderer used to fingerprint compiled schemes.
//!
//! # Grammar
//!
//! ```text
//! f ::= true | false
//!     | (not f) | (and f f ...) | (or f f ...) | (implies f f) | (iff f f)
//!     | (exists-vertex x f) | (forall-vertex x f)
//!     | (exists-edge   x f) | (forall-edge   x f)
//!     | (exists-vset   X f) | (forall-vset   X f)
//!     | (exists-eset   Y f) | (forall-eset   Y f)
//!     | (in x X)            -- vertex∈vertex-set or edge∈edge-set
//!     | (inc e v)           -- edge e is incident to vertex v
//!     | (adj u v)           -- vertices u, v joined by an edge
//!     | (= a b)             -- same vertex / same edge (sorts must agree)
//!     | (vlabel v c) | (elabel e c)
//! ```
//!
//! `and`/`or` are n-ary (folded right-associatively). Identifiers are
//! arbitrary non-parenthesis tokens, scoped lexically with shadowing;
//! sorts are attached at the binder and inferred at use sites.
//!
//! [`canonical`] renders a formula with variables renumbered in binder
//! pre-order (`v0`, `e1`, `X2`, `Y3`, … prefixed by sort), so two
//! α-equivalent formulas print identically: the printed form is the
//! compiled scheme's identity, and `canonical(parse(canonical(f))) ==
//! canonical(f)`.

use std::fmt;

use crate::{Formula, Sort, Var};

/// Why an s-expression failed to parse into a closed, well-sorted
/// formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formula parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Open,
    Close,
    Atom(String),
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut atom = String::new();
    for c in src.chars() {
        match c {
            '(' | ')' => {
                if !atom.is_empty() {
                    out.push(Token::Atom(std::mem::take(&mut atom)));
                }
                out.push(if c == '(' { Token::Open } else { Token::Close });
            }
            c if c.is_whitespace() => {
                if !atom.is_empty() {
                    out.push(Token::Atom(std::mem::take(&mut atom)));
                }
            }
            c => atom.push(c),
        }
    }
    if !atom.is_empty() {
        out.push(Token::Atom(atom));
    }
    out
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    /// Lexical scope: innermost binding of each name wins.
    scope: Vec<(String, Sort, Var)>,
    next_var: Var,
}

impl<'a> Parser<'a> {
    fn next(&mut self) -> Result<&'a Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| ParseError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn atom(&mut self) -> Result<&'a str, ParseError> {
        match self.next()? {
            Token::Atom(s) => Ok(s),
            t => Err(ParseError::new(format!(
                "expected an identifier, found {t:?}"
            ))),
        }
    }

    fn close(&mut self) -> Result<(), ParseError> {
        match self.next()? {
            Token::Close => Ok(()),
            t => Err(ParseError::new(format!("expected ')', found {t:?}"))),
        }
    }

    fn lookup(&self, name: &str) -> Result<(Sort, Var), ParseError> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, v)| (*s, *v))
            .ok_or_else(|| ParseError::new(format!("unbound identifier '{name}'")))
    }

    fn var_of(&mut self, sort: Sort) -> Result<Var, ParseError> {
        let name = self.atom()?;
        let (bound, var) = self.lookup(name)?;
        if bound != sort {
            return Err(ParseError::new(format!(
                "'{name}' is bound as {bound:?} but used as {sort:?}"
            )));
        }
        Ok(var)
    }

    fn label(&mut self) -> Result<u32, ParseError> {
        let raw = self.atom()?;
        raw.parse()
            .map_err(|_| ParseError::new(format!("expected a label constant, found '{raw}'")))
    }

    fn binder(&mut self, sort: Sort, forall: bool) -> Result<Formula, ParseError> {
        let name = self.atom()?.to_string();
        let var = self.next_var;
        self.next_var += 1;
        self.scope.push((name, sort, var));
        let body = self.formula();
        self.scope.pop();
        let body = Box::new(body?);
        self.close()?;
        Ok(if forall {
            Formula::Forall(sort, var, body)
        } else {
            Formula::Exists(sort, var, body)
        })
    }

    /// Folds `(op a b c)` as `op(a, op(b, c))`.
    fn nary(
        &mut self,
        make: fn(Box<Formula>, Box<Formula>) -> Formula,
    ) -> Result<Formula, ParseError> {
        let mut parts = Vec::new();
        while !matches!(self.tokens.get(self.pos), Some(Token::Close)) {
            parts.push(self.formula()?);
        }
        self.close()?;
        let mut iter = parts.into_iter().rev();
        let last = iter
            .next()
            .ok_or_else(|| ParseError::new("and/or needs at least one operand"))?;
        Ok(iter.fold(last, |acc, f| make(Box::new(f), Box::new(acc))))
    }

    fn binary(
        &mut self,
        make: fn(Box<Formula>, Box<Formula>) -> Formula,
    ) -> Result<Formula, ParseError> {
        let a = self.formula()?;
        let b = self.formula()?;
        self.close()?;
        Ok(make(Box::new(a), Box::new(b)))
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        match self.next()? {
            Token::Atom(s) => match s.as_str() {
                "true" => Ok(Formula::True),
                "false" => Ok(Formula::False),
                other => Err(ParseError::new(format!("unexpected token '{other}'"))),
            },
            Token::Close => Err(ParseError::new("unexpected ')'")),
            Token::Open => {
                let head = self.atom()?;
                match head {
                    "not" => {
                        let a = self.formula()?;
                        self.close()?;
                        Ok(Formula::Not(Box::new(a)))
                    }
                    "and" => self.nary(Formula::And),
                    "or" => self.nary(Formula::Or),
                    "implies" => self.binary(Formula::Implies),
                    "iff" => self.binary(Formula::Iff),
                    "exists-vertex" => self.binder(Sort::Vertex, false),
                    "forall-vertex" => self.binder(Sort::Vertex, true),
                    "exists-edge" => self.binder(Sort::Edge, false),
                    "forall-edge" => self.binder(Sort::Edge, true),
                    "exists-vset" => self.binder(Sort::VertexSet, false),
                    "forall-vset" => self.binder(Sort::VertexSet, true),
                    "exists-eset" => self.binder(Sort::EdgeSet, false),
                    "forall-eset" => self.binder(Sort::EdgeSet, true),
                    "in" => {
                        let name = self.atom()?;
                        let (sort, var) = self.lookup(name)?;
                        let f = match sort {
                            Sort::Vertex => Formula::InVSet(var, self.var_of(Sort::VertexSet)?),
                            Sort::Edge => Formula::InESet(var, self.var_of(Sort::EdgeSet)?),
                            other => {
                                return Err(ParseError::new(format!(
                                    "first argument of 'in' must be a vertex or edge, '{name}' is {other:?}"
                                )))
                            }
                        };
                        self.close()?;
                        Ok(f)
                    }
                    "inc" => {
                        let e = self.var_of(Sort::Edge)?;
                        let v = self.var_of(Sort::Vertex)?;
                        self.close()?;
                        Ok(Formula::Inc(e, v))
                    }
                    "adj" => {
                        let u = self.var_of(Sort::Vertex)?;
                        let v = self.var_of(Sort::Vertex)?;
                        self.close()?;
                        Ok(Formula::Adj(u, v))
                    }
                    "=" => {
                        let name = self.atom()?;
                        let (sort, a) = self.lookup(name)?;
                        let f = match sort {
                            Sort::Vertex => Formula::EqV(a, self.var_of(Sort::Vertex)?),
                            Sort::Edge => Formula::EqE(a, self.var_of(Sort::Edge)?),
                            other => {
                                return Err(ParseError::new(format!(
                                    "'=' compares vertices or edges, '{name}' is {other:?}"
                                )))
                            }
                        };
                        self.close()?;
                        Ok(f)
                    }
                    "vlabel" => {
                        let v = self.var_of(Sort::Vertex)?;
                        let c = self.label()?;
                        self.close()?;
                        Ok(Formula::VLabelIs(v, c))
                    }
                    "elabel" => {
                        let e = self.var_of(Sort::Edge)?;
                        let c = self.label()?;
                        self.close()?;
                        Ok(Formula::ELabelIs(e, c))
                    }
                    other => Err(ParseError::new(format!("unknown form '{other}'"))),
                }
            }
        }
    }
}

/// Parses one formula from s-expression syntax.
///
/// # Errors
///
/// [`ParseError`] on malformed syntax, unbound identifiers, sort
/// mismatches, or trailing input.
pub fn parse(src: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(src);
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        scope: Vec::new(),
        next_var: 0,
    };
    let f = p.formula()?;
    if p.pos != tokens.len() {
        return Err(ParseError::new("trailing input after formula"));
    }
    Ok(f)
}

fn sort_prefix(sort: Sort) -> char {
    match sort {
        Sort::Vertex => 'v',
        Sort::Edge => 'e',
        Sort::VertexSet => 'X',
        Sort::EdgeSet => 'Y',
    }
}

/// Renders a formula in canonical s-expression form: variables are
/// renumbered in binder pre-order and prefixed by sort, so the output
/// is identical across α-equivalent formulas and stable across
/// construction styles. Used as the compiled scheme's identity.
#[must_use]
pub fn canonical(f: &Formula) -> String {
    let mut out = String::new();
    let mut scope: Vec<(Var, Sort, u32)> = Vec::new();
    let mut counter = 0u32;
    render(f, &mut out, &mut scope, &mut counter);
    out
}

fn var_name(scope: &[(Var, Sort, u32)], var: Var) -> String {
    scope.iter().rev().find(|(v, _, _)| *v == var).map_or_else(
        || format!("?{var}"),
        |(_, s, i)| format!("{}{i}", sort_prefix(*s)),
    )
}

fn render(f: &Formula, out: &mut String, scope: &mut Vec<(Var, Sort, u32)>, counter: &mut u32) {
    use std::fmt::Write as _;
    use Formula as F;
    match f {
        F::True => out.push_str("true"),
        F::False => out.push_str("false"),
        F::InVSet(v, s) | F::InESet(v, s) => {
            let _ = write!(out, "(in {} {})", var_name(scope, *v), var_name(scope, *s));
        }
        F::Inc(e, v) => {
            let _ = write!(out, "(inc {} {})", var_name(scope, *e), var_name(scope, *v));
        }
        F::Adj(u, v) => {
            let _ = write!(out, "(adj {} {})", var_name(scope, *u), var_name(scope, *v));
        }
        F::EqV(a, b) | F::EqE(a, b) => {
            let _ = write!(out, "(= {} {})", var_name(scope, *a), var_name(scope, *b));
        }
        F::VLabelIs(v, c) => {
            let _ = write!(out, "(vlabel {} {c})", var_name(scope, *v));
        }
        F::ELabelIs(e, c) => {
            let _ = write!(out, "(elabel {} {c})", var_name(scope, *e));
        }
        F::Not(a) => {
            out.push_str("(not ");
            render(a, out, scope, counter);
            out.push(')');
        }
        F::And(a, b) | F::Or(a, b) | F::Implies(a, b) | F::Iff(a, b) => {
            let head = match f {
                F::And(..) => "and",
                F::Or(..) => "or",
                F::Implies(..) => "implies",
                _ => "iff",
            };
            let _ = write!(out, "({head} ");
            render(a, out, scope, counter);
            out.push(' ');
            render(b, out, scope, counter);
            out.push(')');
        }
        F::Exists(sort, var, body) | F::Forall(sort, var, body) => {
            let head = if matches!(f, F::Exists(..)) {
                "exists"
            } else {
                "forall"
            };
            let tail = match sort {
                Sort::Vertex => "vertex",
                Sort::Edge => "edge",
                Sort::VertexSet => "vset",
                Sort::EdgeSet => "eset",
            };
            let idx = *counter;
            *counter += 1;
            let _ = write!(out, "({head}-{tail} {}{idx} ", sort_prefix(*sort));
            scope.push((*var, *sort, idx));
            render(body, out, scope, counter);
            scope.pop();
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, props};
    use lanecert_graph::generators;

    #[test]
    fn canonical_round_trips() {
        for f in [
            props::bipartite(),
            props::connected(),
            props::acyclic(),
            props::triangle_free(),
            props::max_degree_at_most(3),
            props::dominating_set_at_most(2),
            props::perfect_matching(),
            props::colorable(3),
        ] {
            let printed = canonical(&f);
            let reparsed = parse(&printed).expect("canonical form parses");
            assert_eq!(canonical(&reparsed), printed, "round trip: {printed}");
        }
    }

    #[test]
    fn parsed_formula_evaluates_like_the_builder() {
        let src = "(exists-vset X (forall-vertex u (forall-vertex v \
                   (implies (adj u v) (not (iff (in u X) (in v X)))))))";
        let f = parse(src).unwrap();
        assert_eq!(canonical(&f), canonical(&props::bipartite()));
        assert!(eval::check(&generators::cycle_graph(4), &f));
        assert!(!eval::check(&generators::cycle_graph(5), &f));
    }

    #[test]
    fn nary_and_shadowing() {
        // n-ary and + an inner binder shadowing the outer 'x'.
        let f = parse("(exists-vertex x (and true (exists-vertex x (= x x)) (not (vlabel x 7))))")
            .unwrap();
        assert!(eval::check(&generators::path_graph(2), &f));
    }

    #[test]
    fn parse_errors_are_clean() {
        for bad in [
            "",
            "(",
            ")",
            "(and)",
            "(adj u v)",                         // unbound
            "(exists-vertex x (in x x))",        // sort error
            "(exists-vertex x (vlabel x nope))", // bad label
            "(frobnicate)",
            "true true", // trailing input
        ] {
            assert!(parse(bad).is_err(), "expected error: {bad:?}");
        }
    }
}
