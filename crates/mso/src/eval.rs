//! A naive MSO₂ model checker.
//!
//! Quantifiers are evaluated by enumeration — vertex/edge variables range
//! over the graph, set variables over all `2^n`/`2^m` bitmasks — so this is
//! strictly a **small-graph oracle** (`n, m ≤ 24` enforced). It pins the
//! semantics that the homomorphism algebras (`lanecert-algebra`) and the
//! certification pipeline must agree with.

use std::collections::HashMap;

use lanecert_graph::{EdgeId, Graph, VertexId};

use crate::{Formula, Sort, Var};

/// Evaluation size guard: set quantifiers enumerate `2^n` / `2^m` masks.
pub const EVAL_LIMIT: usize = 24;

/// A graph with finite vertex/edge input labels.
#[derive(Clone, Debug)]
pub struct LabeledGraph<'a> {
    /// The structure.
    pub graph: &'a Graph,
    /// Per-vertex label (defaults to all-zero).
    pub vlabels: Vec<u32>,
    /// Per-edge label (defaults to all-zero).
    pub elabels: Vec<u32>,
}

impl<'a> LabeledGraph<'a> {
    /// Wraps a graph with all-zero labels.
    pub fn unlabeled(graph: &'a Graph) -> Self {
        Self {
            graph,
            vlabels: vec![0; graph.vertex_count()],
            elabels: vec![0; graph.edge_count()],
        }
    }

    /// Wraps a graph with explicit labels.
    ///
    /// # Panics
    ///
    /// Panics if the label vectors have the wrong length.
    pub fn new(graph: &'a Graph, vlabels: Vec<u32>, elabels: Vec<u32>) -> Self {
        assert_eq!(vlabels.len(), graph.vertex_count());
        assert_eq!(elabels.len(), graph.edge_count());
        Self {
            graph,
            vlabels,
            elabels,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Value {
    Vertex(VertexId),
    Edge(EdgeId),
    VSet(u32),
    ESet(u32),
}

/// Checks a closed formula on an unlabeled graph.
///
/// # Panics
///
/// Panics if the graph exceeds [`EVAL_LIMIT`] or the formula is not closed /
/// not well-sorted.
pub fn check(graph: &Graph, formula: &Formula) -> bool {
    check_labeled(&LabeledGraph::unlabeled(graph), formula)
}

/// Checks a closed formula on a labeled graph.
///
/// # Panics
///
/// Panics if the graph exceeds [`EVAL_LIMIT`] or the formula is not closed /
/// not well-sorted.
pub fn check_labeled(lg: &LabeledGraph<'_>, formula: &Formula) -> bool {
    assert!(
        lg.graph.vertex_count() <= EVAL_LIMIT && lg.graph.edge_count() <= EVAL_LIMIT,
        "naive evaluator limited to {EVAL_LIMIT} vertices/edges"
    );
    let mut env = HashMap::new();
    eval(lg, formula, &mut env)
}

fn eval(lg: &LabeledGraph<'_>, f: &Formula, env: &mut HashMap<Var, Value>) -> bool {
    use Formula::*;
    match f {
        True => true,
        False => false,
        InVSet(v, s) => {
            let (Value::Vertex(v), Value::VSet(mask)) = (get(env, *v), get(env, *s)) else {
                panic!("sort error in ∈ (vertex)");
            };
            mask & (1 << v.index()) != 0
        }
        InESet(e, s) => {
            let (Value::Edge(e), Value::ESet(mask)) = (get(env, *e), get(env, *s)) else {
                panic!("sort error in ∈ (edge)");
            };
            mask & (1 << e.index()) != 0
        }
        Inc(e, v) => {
            let (Value::Edge(e), Value::Vertex(v)) = (get(env, *e), get(env, *v)) else {
                panic!("sort error in inc");
            };
            lg.graph.edge(e).is_incident(v)
        }
        Adj(u, v) => {
            let (Value::Vertex(u), Value::Vertex(v)) = (get(env, *u), get(env, *v)) else {
                panic!("sort error in adj");
            };
            lg.graph.has_edge(u, v)
        }
        EqV(u, v) => {
            let (Value::Vertex(u), Value::Vertex(v)) = (get(env, *u), get(env, *v)) else {
                panic!("sort error in vertex =");
            };
            u == v
        }
        EqE(a, b) => {
            let (Value::Edge(a), Value::Edge(b)) = (get(env, *a), get(env, *b)) else {
                panic!("sort error in edge =");
            };
            a == b
        }
        VLabelIs(v, c) => {
            let Value::Vertex(v) = get(env, *v) else {
                panic!("sort error in vertex label");
            };
            lg.vlabels[v.index()] == *c
        }
        ELabelIs(e, c) => {
            let Value::Edge(e) = get(env, *e) else {
                panic!("sort error in edge label");
            };
            lg.elabels[e.index()] == *c
        }
        Not(a) => !eval(lg, a, env),
        And(a, b) => eval(lg, a, env) && eval(lg, b, env),
        Or(a, b) => eval(lg, a, env) || eval(lg, b, env),
        Implies(a, b) => !eval(lg, a, env) || eval(lg, b, env),
        Iff(a, b) => eval(lg, a, env) == eval(lg, b, env),
        Exists(sort, var, a) => quantify(lg, *sort, *var, a, env, false),
        Forall(sort, var, a) => quantify(lg, *sort, *var, a, env, true),
    }
}

fn get(env: &HashMap<Var, Value>, v: Var) -> Value {
    *env.get(&v)
        .unwrap_or_else(|| panic!("unbound variable {v} (formula not closed)"))
}

fn quantify(
    lg: &LabeledGraph<'_>,
    sort: Sort,
    var: Var,
    body: &Formula,
    env: &mut HashMap<Var, Value>,
    forall: bool,
) -> bool {
    let saved = env.get(&var).copied();
    let mut result = forall;
    let candidates: Box<dyn Iterator<Item = Value>> = match sort {
        Sort::Vertex => Box::new(lg.graph.vertices().map(Value::Vertex)),
        Sort::Edge => Box::new(lg.graph.edges().map(|(id, _)| Value::Edge(id))),
        Sort::VertexSet => Box::new((0u32..(1 << lg.graph.vertex_count())).map(Value::VSet)),
        Sort::EdgeSet => Box::new((0u32..(1 << lg.graph.edge_count())).map(Value::ESet)),
    };
    for value in candidates {
        env.insert(var, value);
        let holds = eval(lg, body, env);
        if forall && !holds {
            result = false;
            break;
        }
        if !forall && holds {
            result = true;
            break;
        }
    }
    match saved {
        Some(v) => {
            env.insert(var, v);
        }
        None => {
            env.remove(&var);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Formula::*, Sort as S};
    use lanecert_graph::generators;

    #[test]
    fn constants() {
        let g = generators::path_graph(2);
        assert!(check(&g, &True));
        assert!(!check(&g, &False));
    }

    #[test]
    fn existential_vertex_adjacency() {
        let g = generators::path_graph(3);
        // ∃u ∃v adj(u,v)
        let f = Exists(
            S::Vertex,
            0,
            Box::new(Exists(S::Vertex, 1, Box::new(Adj(0, 1)))),
        );
        assert!(check(&g, &f));
        let lonely = lanecert_graph::Graph::new(2);
        assert!(!check(&lonely, &f));
    }

    #[test]
    fn forall_with_sets() {
        let g = generators::cycle_graph(4);
        // ∀X ∃v (v ∈ X ∨ ¬(v ∈ X)) — trivially true but exercises sets.
        let body = InVSet(1, 0).or(InVSet(1, 0).not());
        let f = Forall(
            S::VertexSet,
            0,
            Box::new(Exists(S::Vertex, 1, Box::new(body))),
        );
        assert!(check(&g, &f));
    }

    #[test]
    fn labels_are_visible() {
        let g = generators::path_graph(2);
        let lg = LabeledGraph::new(&g, vec![7, 0], vec![1]);
        // ∃v label(v) = 7
        let f = Exists(S::Vertex, 0, Box::new(VLabelIs(0, 7)));
        assert!(check_labeled(&lg, &f));
        // ∀e label(e) = 1
        let f = Forall(S::Edge, 0, Box::new(ELabelIs(0, 1)));
        assert!(check_labeled(&lg, &f));
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn open_formula_panics() {
        let g = generators::path_graph(2);
        let _ = check(&g, &Adj(0, 1));
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oversize_graph_panics() {
        let g = generators::path_graph(EVAL_LIMIT + 2);
        let _ = check(&g, &True);
    }
}
