//! MSO₂ formulas for the paper's headline properties (Section 1.2 lists
//! planarity, Hamiltonicity, k-colourability, H-minor-freeness, perfect
//! matching, vertex cover; we provide the ones with tractable naive
//! evaluation, which double as the oracle for the homomorphism algebras).

use crate::{Formula, Formula::*, Sort, VarGen};

/// `∃X ∀u ∀v: adj(u,v) → ¬(u ∈ X ↔ v ∈ X)` — bipartiteness
/// (2-colourability), the paper's one-bit example.
pub fn bipartite() -> Formula {
    let mut g = VarGen::new();
    let (x, u, v) = (g.fresh(), g.fresh(), g.fresh());
    Exists(
        Sort::VertexSet,
        x,
        Box::new(Forall(
            Sort::Vertex,
            u,
            Box::new(Forall(
                Sort::Vertex,
                v,
                Box::new(Adj(u, v).implies(InVSet(u, x).iff(InVSet(v, x)).not())),
            )),
        )),
    )
}

/// Proper `c`-colourability: `∃X_1 … ∃X_c` covering all vertices with no
/// monochromatic edge.
///
/// # Panics
///
/// Panics if `c == 0`.
pub fn colorable(c: usize) -> Formula {
    assert!(c >= 1, "at least one colour");
    let mut g = VarGen::new();
    let classes: Vec<_> = (0..c).map(|_| g.fresh()).collect();
    let (u, v) = (g.fresh(), g.fresh());
    let covered = Forall(
        Sort::Vertex,
        u,
        Box::new(Formula::any(classes.iter().map(|&x| InVSet(u, x)))),
    );
    let proper = Forall(
        Sort::Vertex,
        u,
        Box::new(Forall(
            Sort::Vertex,
            v,
            Box::new(
                Adj(u, v).implies(Formula::all(
                    classes
                        .iter()
                        .map(|&x| InVSet(u, x).and(InVSet(v, x)).not()),
                )),
            ),
        )),
    );
    classes.into_iter().rev().fold(covered.and(proper), |f, x| {
        Exists(Sort::VertexSet, x, Box::new(f))
    })
}

/// Connectivity: every non-trivial vertex cut is crossed by an edge.
pub fn connected() -> Formula {
    let mut g = VarGen::new();
    let (x, u, v, e, a, b) = (
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
    );
    let nontrivial = Exists(Sort::Vertex, u, Box::new(InVSet(u, x))).and(Exists(
        Sort::Vertex,
        v,
        Box::new(InVSet(v, x).not()),
    ));
    let crossed = Exists(
        Sort::Edge,
        e,
        Box::new(Exists(
            Sort::Vertex,
            a,
            Box::new(Exists(
                Sort::Vertex,
                b,
                Box::new(Formula::all([
                    Inc(e, a),
                    Inc(e, b),
                    InVSet(a, x),
                    InVSet(b, x).not(),
                ])),
            )),
        )),
    );
    Forall(Sort::VertexSet, x, Box::new(nontrivial.implies(crossed)))
}

/// Degree of `v` within edge set `f` is at least 2 (helper).
fn f_degree_ge2(g: &mut VarGen, f: crate::Var, v: crate::Var) -> Formula {
    let (e1, e2) = (g.fresh(), g.fresh());
    Exists(
        Sort::Edge,
        e1,
        Box::new(Exists(
            Sort::Edge,
            e2,
            Box::new(Formula::all([
                EqE(e1, e2).not(),
                InESet(e1, f),
                InESet(e2, f),
                Inc(e1, v),
                Inc(e2, v),
            ])),
        )),
    )
}

/// Acyclicity (being a forest): no non-empty edge set in which every
/// touched vertex has degree ≥ 2.
pub fn acyclic() -> Formula {
    let mut g = VarGen::new();
    let (f, e0, v, e) = (g.fresh(), g.fresh(), g.fresh(), g.fresh());
    let nonempty = Exists(Sort::Edge, e0, Box::new(InESet(e0, f)));
    let touched = Exists(Sort::Edge, e, Box::new(InESet(e, f).and(Inc(e, v))));
    let all_deg2 = Forall(
        Sort::Vertex,
        v,
        Box::new(touched.implies(f_degree_ge2(&mut g, f, v))),
    );
    Exists(Sort::EdgeSet, f, Box::new(nonempty.and(all_deg2))).not()
}

/// Hamiltonicity: a spanning, connected, 2-regular edge set exists.
pub fn hamiltonian_cycle() -> Formula {
    let mut g = VarGen::new();
    let f = g.fresh();
    let v = g.fresh();
    // degree exactly two: ≥2 and ≤2.
    let ge2 = f_degree_ge2(&mut g, f, v);
    let (d1, d2, d3) = (g.fresh(), g.fresh(), g.fresh());
    let le2 = Forall(
        Sort::Edge,
        d1,
        Box::new(Forall(
            Sort::Edge,
            d2,
            Box::new(Forall(
                Sort::Edge,
                d3,
                Box::new(
                    Formula::all([
                        InESet(d1, f),
                        InESet(d2, f),
                        InESet(d3, f),
                        Inc(d1, v),
                        Inc(d2, v),
                        Inc(d3, v),
                        EqE(d1, d2).not(),
                        EqE(d1, d3).not(),
                        EqE(d2, d3).not(),
                    ])
                    .not(),
                ),
            )),
        )),
    );
    let two_regular = Forall(Sort::Vertex, v, Box::new(ge2.and(le2)));
    // Spanning-connected: every proper cut is crossed by an F-edge.
    let (x, u1, u2, e, a, b) = (
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
        g.fresh(),
    );
    let nontrivial = Exists(Sort::Vertex, u1, Box::new(InVSet(u1, x))).and(Exists(
        Sort::Vertex,
        u2,
        Box::new(InVSet(u2, x).not()),
    ));
    let crossed = Exists(
        Sort::Edge,
        e,
        Box::new(Exists(
            Sort::Vertex,
            a,
            Box::new(Exists(
                Sort::Vertex,
                b,
                Box::new(Formula::all([
                    InESet(e, f),
                    Inc(e, a),
                    Inc(e, b),
                    InVSet(a, x),
                    InVSet(b, x).not(),
                ])),
            )),
        )),
    );
    let f_connected = Forall(Sort::VertexSet, x, Box::new(nontrivial.implies(crossed)));
    Exists(Sort::EdgeSet, f, Box::new(two_regular.and(f_connected)))
}

/// Perfect matching: an edge set touching every vertex exactly once.
pub fn perfect_matching() -> Formula {
    let mut g = VarGen::new();
    let (f, v, e, e2) = (g.fresh(), g.fresh(), g.fresh(), g.fresh());
    let exactly_one = Exists(
        Sort::Edge,
        e,
        Box::new(InESet(e, f).and(Inc(e, v)).and(Forall(
            Sort::Edge,
            e2,
            Box::new(InESet(e2, f).and(Inc(e2, v)).implies(EqE(e, e2))),
        ))),
    );
    Exists(
        Sort::EdgeSet,
        f,
        Box::new(Forall(Sort::Vertex, v, Box::new(exactly_one))),
    )
}

/// Vertex cover of size at most `s` (first-order witnesses; repetitions
/// make the bound "at most").
pub fn vertex_cover_at_most(s: usize) -> Formula {
    let mut g = VarGen::new();
    let xs: Vec<_> = (0..s).map(|_| g.fresh()).collect();
    let e = g.fresh();
    let covered = Forall(
        Sort::Edge,
        e,
        Box::new(Formula::any(xs.iter().map(|&x| Inc(e, x)))),
    );
    xs.into_iter()
        .rev()
        .fold(covered, |f, x| Exists(Sort::Vertex, x, Box::new(f)))
}

/// Dominating set of size at most `s`.
pub fn dominating_set_at_most(s: usize) -> Formula {
    let mut g = VarGen::new();
    let xs: Vec<_> = (0..s).map(|_| g.fresh()).collect();
    let v = g.fresh();
    let dominated = Forall(
        Sort::Vertex,
        v,
        Box::new(Formula::any(
            xs.iter().flat_map(|&x| [EqV(v, x), Adj(v, x)]),
        )),
    );
    xs.into_iter()
        .rev()
        .fold(dominated, |f, x| Exists(Sort::Vertex, x, Box::new(f)))
}

/// Independent set of size at least `s` (distinct pairwise non-adjacent
/// witnesses).
pub fn independent_set_at_least(s: usize) -> Formula {
    let mut g = VarGen::new();
    let xs: Vec<_> = (0..s).map(|_| g.fresh()).collect();
    let mut constraints = Vec::new();
    for i in 0..s {
        for j in (i + 1)..s {
            constraints.push(EqV(xs[i], xs[j]).not());
            constraints.push(Adj(xs[i], xs[j]).not());
        }
    }
    let body = Formula::all(constraints);
    xs.into_iter()
        .rev()
        .fold(body, |f, x| Exists(Sort::Vertex, x, Box::new(f)))
}

/// Maximum degree at most `d`: no vertex has `d + 1` pairwise-distinct
/// incident edges.
pub fn max_degree_at_most(d: usize) -> Formula {
    let mut g = VarGen::new();
    let v = g.fresh();
    let es: Vec<_> = (0..=d).map(|_| g.fresh()).collect();
    let mut parts: Vec<Formula> = es.iter().map(|&e| Inc(e, v)).collect();
    for i in 0..es.len() {
        for j in (i + 1)..es.len() {
            parts.push(EqE(es[i], es[j]).not());
        }
    }
    let witness = es.iter().rev().fold(Formula::all(parts), |f, &e| {
        Exists(Sort::Edge, e, Box::new(f))
    });
    Exists(Sort::Vertex, v, Box::new(witness)).not()
}

/// Triangle-freeness: no three pairwise-adjacent vertices.
pub fn triangle_free() -> Formula {
    let mut g = VarGen::new();
    let (u, v, w) = (g.fresh(), g.fresh(), g.fresh());
    Exists(
        Sort::Vertex,
        u,
        Box::new(Exists(
            Sort::Vertex,
            v,
            Box::new(Exists(
                Sort::Vertex,
                w,
                Box::new(Formula::all([Adj(u, v), Adj(v, w), Adj(u, w)])),
            )),
        )),
    )
    .not()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check;
    use lanecert_graph::{generators, Graph};

    #[test]
    fn bipartite_cases() {
        assert!(check(&generators::path_graph(5), &bipartite()));
        assert!(check(&generators::cycle_graph(4), &bipartite()));
        assert!(!check(&generators::cycle_graph(5), &bipartite()));
        assert!(check(&generators::complete_bipartite(2, 3), &bipartite()));
        assert!(!check(&generators::complete_graph(3), &bipartite()));
    }

    #[test]
    fn colorable_cases() {
        assert!(check(&generators::cycle_graph(5), &colorable(3)));
        assert!(!check(&generators::complete_graph(4), &colorable(3)));
        assert!(check(&generators::complete_graph(4), &colorable(4)));
        assert!(check(&Graph::new(3), &colorable(1)));
    }

    #[test]
    fn connectivity_cases() {
        assert!(check(&generators::path_graph(4), &connected()));
        assert!(!check(
            &Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap(),
            &connected()
        ));
        assert!(check(&Graph::new(1), &connected()));
    }

    #[test]
    fn acyclicity_cases() {
        assert!(check(&generators::path_graph(4), &acyclic()));
        assert!(check(&generators::star(5), &acyclic()));
        assert!(!check(&generators::cycle_graph(3), &acyclic()));
        assert!(!check(&generators::cycle_graph(5), &acyclic()));
    }

    #[test]
    fn hamiltonicity_cases() {
        assert!(check(&generators::cycle_graph(4), &hamiltonian_cycle()));
        assert!(check(&generators::complete_graph(4), &hamiltonian_cycle()));
        assert!(!check(&generators::path_graph(4), &hamiltonian_cycle()));
        assert!(!check(&generators::star(4), &hamiltonian_cycle()));
    }

    #[test]
    fn perfect_matching_cases() {
        assert!(check(&generators::path_graph(4), &perfect_matching()));
        assert!(!check(&generators::path_graph(3), &perfect_matching()));
        assert!(check(&generators::cycle_graph(6), &perfect_matching()));
        assert!(!check(&generators::star(4), &perfect_matching()));
    }

    #[test]
    fn vertex_cover_cases() {
        assert!(check(&generators::star(5), &vertex_cover_at_most(1)));
        assert!(!check(&generators::path_graph(5), &vertex_cover_at_most(1)));
        assert!(check(&generators::path_graph(5), &vertex_cover_at_most(2)));
        assert!(check(&Graph::new(3), &vertex_cover_at_most(0)));
    }

    #[test]
    fn dominating_set_cases() {
        assert!(check(&generators::star(6), &dominating_set_at_most(1)));
        assert!(!check(
            &generators::path_graph(6),
            &dominating_set_at_most(1)
        ));
        assert!(check(
            &generators::path_graph(6),
            &dominating_set_at_most(2)
        ));
    }

    #[test]
    fn independent_set_cases() {
        assert!(check(
            &generators::path_graph(5),
            &independent_set_at_least(3)
        ));
        assert!(!check(
            &generators::complete_graph(4),
            &independent_set_at_least(2)
        ));
        assert!(check(&Graph::new(2), &independent_set_at_least(2)));
    }

    #[test]
    fn max_degree_cases() {
        assert!(check(&generators::cycle_graph(5), &max_degree_at_most(2)));
        assert!(!check(&generators::star(5), &max_degree_at_most(2)));
        assert!(check(&generators::path_graph(2), &max_degree_at_most(1)));
    }

    #[test]
    fn triangle_free_cases() {
        assert!(check(&generators::cycle_graph(4), &triangle_free()));
        assert!(!check(&generators::complete_graph(3), &triangle_free()));
        assert!(check(
            &generators::complete_bipartite(2, 2),
            &triangle_free()
        ));
    }
}
