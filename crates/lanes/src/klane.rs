//! k-lane graphs and the merge operations (Definition 5.3, `Bridge-merge`,
//! `Parent-merge`, `Tree-merge` — Figures 8 and 9 of the paper).
//!
//! This module gives the merge operations an explicit, executable semantics
//! over *named* vertices. The hierarchical decomposition
//! ([`crate::hierarchy`]) uses the same semantics with original vertex ids;
//! this standalone form exists so the operations themselves can be tested
//! (and the paper's figures regenerated) independently of the pipeline.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Lane, LaneSet};

/// A vertex name (opaque; merges identify names).
pub type Name = u64;

/// A k-lane graph over named vertices: a graph plus a non-empty lane set and
/// injective in-/out-terminal assignments (Definition 5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KLaneGraph {
    /// Vertex names.
    pub vertices: BTreeSet<Name>,
    /// Undirected edges as ordered name pairs (`u < v`).
    pub edges: BTreeSet<(Name, Name)>,
    /// The lanes used, `T(G)`.
    pub lanes: LaneSet,
    /// In-terminal per lane.
    pub tin: BTreeMap<Lane, Name>,
    /// Out-terminal per lane.
    pub tout: BTreeMap<Lane, Name>,
}

fn norm(u: Name, v: Name) -> (Name, Name) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl KLaneGraph {
    /// A single-vertex k-lane graph on lane `lane` (a `V`-node).
    pub fn vertex(lane: Lane, name: Name) -> Self {
        Self {
            vertices: [name].into(),
            edges: BTreeSet::new(),
            lanes: LaneSet::singleton(lane),
            tin: [(lane, name)].into(),
            tout: [(lane, name)].into(),
        }
    }

    /// A single-edge k-lane graph on lane `lane` with `tin != tout`
    /// (an `E`-node).
    pub fn edge(lane: Lane, tin: Name, tout: Name) -> Self {
        assert_ne!(tin, tout, "E-node terminals must differ");
        Self {
            vertices: [tin, tout].into(),
            edges: [norm(tin, tout)].into(),
            lanes: LaneSet::singleton(lane),
            tin: [(lane, tin)].into(),
            tout: [(lane, tout)].into(),
        }
    }

    /// A `k`-vertex path with `T(G) = {0, …, k−1}` and `τin_i = τout_i`
    /// being the `i`-th vertex (a `P`-node).
    pub fn path(names: &[Name]) -> Self {
        assert!(!names.is_empty(), "P-node needs at least one vertex");
        let mut edges = BTreeSet::new();
        for w in names.windows(2) {
            edges.insert(norm(w[0], w[1]));
        }
        Self {
            vertices: names.iter().copied().collect(),
            edges,
            lanes: LaneSet::full(names.len()),
            tin: names.iter().copied().enumerate().collect(),
            tout: names.iter().copied().enumerate().collect(),
        }
    }

    /// Checks the Definition 5.3 invariants: non-empty lanes, terminals
    /// exist, injectivity of the terminal assignments.
    ///
    /// # Panics
    ///
    /// Panics on violation (test helper).
    pub fn check_invariants(&self) {
        assert!(!self.lanes.is_empty(), "lane set must be non-empty");
        for map in [&self.tin, &self.tout] {
            let mut seen = BTreeSet::new();
            for (&lane, name) in map {
                assert!(self.lanes.contains(lane), "terminal on unused lane {lane}");
                assert!(self.vertices.contains(name), "terminal {name} not a vertex");
                assert!(seen.insert(*name), "terminal map not injective at {name}");
            }
            assert_eq!(map.len(), self.lanes.len(), "terminal per lane");
        }
    }

    /// `Bridge-merge(self, other, i, j)`: disjoint union plus the bridge edge
    /// `{τout_i(self), τout_j(other)}` (Section 5.2).
    ///
    /// # Panics
    ///
    /// Panics if lane sets intersect, vertex names collide, or `i`/`j` are
    /// not lanes of the respective graphs.
    pub fn bridge_merge(&self, other: &KLaneGraph, i: Lane, j: Lane) -> KLaneGraph {
        assert!(
            self.lanes.is_disjoint(other.lanes),
            "Bridge-merge needs disjoint lane sets"
        );
        assert!(self.lanes.contains(i), "lane {i} not in left graph");
        assert!(other.lanes.contains(j), "lane {j} not in right graph");
        assert!(
            self.vertices.is_disjoint(&other.vertices),
            "Bridge-merge needs disjoint vertex sets"
        );
        let mut vertices = self.vertices.clone();
        vertices.extend(other.vertices.iter().copied());
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().copied());
        edges.insert(norm(self.tout[&i], other.tout[&j]));
        let mut tin = self.tin.clone();
        tin.extend(other.tin.iter().map(|(&l, &n)| (l, n)));
        let mut tout = self.tout.clone();
        tout.extend(other.tout.iter().map(|(&l, &n)| (l, n)));
        KLaneGraph {
            vertices,
            edges,
            lanes: self.lanes.union(other.lanes),
            tin,
            tout,
        }
    }

    /// `Parent-merge(child, parent)` with `T(child) ⊆ T(parent)`: for each
    /// lane of the child, identify `τin(child)` with `τout(parent)`.
    /// Vertex-name identification renames the child's in-terminal to the
    /// parent's out-terminal name. Edge sets must stay disjoint (the paper's
    /// requirement that no two edges get identified).
    ///
    /// # Panics
    ///
    /// Panics if the lane-subset requirement fails or edges collide.
    pub fn parent_merge(child: &KLaneGraph, parent: &KLaneGraph) -> KLaneGraph {
        assert!(
            child.lanes.is_subset_of(parent.lanes),
            "Parent-merge needs T(child) ⊆ T(parent)"
        );
        // Rename child's in-terminals to the parent's out-terminal names.
        let mut rename: BTreeMap<Name, Name> = BTreeMap::new();
        for lane in child.lanes.iter() {
            rename.insert(child.tin[&lane], parent.tout[&lane]);
        }
        let map = |n: Name| -> Name { rename.get(&n).copied().unwrap_or(n) };
        let mut vertices: BTreeSet<Name> = parent.vertices.clone();
        vertices.extend(child.vertices.iter().map(|&n| map(n)));
        let mut edges = parent.edges.clone();
        for &(u, v) in &child.edges {
            let e = norm(map(u), map(v));
            assert!(e.0 != e.1, "Parent-merge created a self-loop");
            assert!(edges.insert(e), "Parent-merge identified two edges: {e:?}");
        }
        let tin = parent.tin.clone();
        let mut tout = parent.tout.clone();
        for lane in child.lanes.iter() {
            tout.insert(lane, map(child.tout[&lane]));
        }
        KLaneGraph {
            vertices,
            edges,
            lanes: parent.lanes,
            tin,
            tout,
        }
    }

    /// `Tree-merge(T)`: folds a rooted tree of k-lane graphs by repeated
    /// `Parent-merge` (children into parents). `tree[i]` is the parent index
    /// of node `i` (`None` for the root); `graphs[i]` is node `i`'s graph.
    ///
    /// # Panics
    ///
    /// Panics if the tree conditions of Section 5.3 fail (child lanes not a
    /// subset of parent lanes, or sibling lanes not disjoint).
    pub fn tree_merge(graphs: &[KLaneGraph], parent: &[Option<usize>]) -> KLaneGraph {
        assert_eq!(graphs.len(), parent.len());
        let n = graphs.len();
        let root = parent
            .iter()
            .position(Option::is_none)
            .expect("tree needs a root");
        // Check sibling disjointness and child-subset conditions.
        for i in 0..n {
            if let Some(p) = parent[i] {
                assert!(
                    graphs[i].lanes.is_subset_of(graphs[p].lanes),
                    "child lanes must be subset of parent lanes"
                );
                for j in 0..n {
                    if j != i && parent[j] == Some(p) {
                        assert!(
                            graphs[i].lanes.is_disjoint(graphs[j].lanes),
                            "sibling lanes must be disjoint"
                        );
                    }
                }
            }
        }
        // Fold bottom-up (Parent-merge is associative per Section 5.3).
        fn fold(graphs: &[KLaneGraph], parent: &[Option<usize>], node: usize) -> KLaneGraph {
            let mut acc = graphs[node].clone();
            for (child, p) in parent.iter().enumerate() {
                if *p == Some(node) {
                    let sub = fold(graphs, parent, child);
                    acc = KLaneGraph::parent_merge(&sub, &acc);
                }
            }
            acc
        }
        fold(graphs, parent, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_satisfy_invariants() {
        KLaneGraph::vertex(2, 10).check_invariants();
        KLaneGraph::edge(1, 5, 6).check_invariants();
        KLaneGraph::path(&[1, 2, 3, 4]).check_invariants();
    }

    /// Figure 8 (left): bridging two 2-lane graphs over disjoint lanes.
    #[test]
    fn bridge_merge_adds_one_edge() {
        let g1 = KLaneGraph::edge(0, 1, 2); // lane 0
        let g2 = KLaneGraph::edge(1, 3, 4); // lane 1
        let m = g1.bridge_merge(&g2, 0, 1);
        m.check_invariants();
        assert_eq!(m.vertices.len(), 4);
        assert_eq!(m.edges.len(), 3); // two edges + bridge
        assert!(m.edges.contains(&(2, 4))); // τout(g1,0)=2, τout(g2,1)=4
        assert_eq!(m.lanes, LaneSet::full(2));
        assert_eq!(m.tin[&0], 1);
        assert_eq!(m.tout[&1], 4);
    }

    #[test]
    #[should_panic(expected = "disjoint lane sets")]
    fn bridge_merge_rejects_shared_lane() {
        let g1 = KLaneGraph::edge(0, 1, 2);
        let g2 = KLaneGraph::edge(0, 3, 4);
        let _ = g1.bridge_merge(&g2, 0, 0);
    }

    /// Figure 8 (right): parent-merging glues child in-terminals onto parent
    /// out-terminals.
    #[test]
    fn parent_merge_glues_terminals() {
        let parent = KLaneGraph::path(&[1, 2]); // lanes {0,1}
        let child = KLaneGraph::edge(0, 10, 11); // lane 0 — tin 10 glued onto 1
        let m = KLaneGraph::parent_merge(&child, &parent);
        m.check_invariants();
        assert_eq!(m.vertices, [1, 2, 11].into());
        assert!(m.edges.contains(&(1, 11))); // child's edge, renamed
        assert_eq!(m.tout[&0], 11); // out-terminal moved to child's
        assert_eq!(m.tout[&1], 2); // untouched lane
        assert_eq!(m.tin[&0], 1);
    }

    #[test]
    fn parent_merge_preserves_identity_when_tin_eq_tout() {
        // Child is a single vertex: gluing does not move the out-terminal to
        // a new vertex name (V-node semantics).
        let parent = KLaneGraph::path(&[1, 2]);
        let child = KLaneGraph::vertex(1, 50);
        let m = KLaneGraph::parent_merge(&child, &parent);
        assert_eq!(m.tout[&1], 2); // 50 renamed to 2
        assert_eq!(m.vertices, [1, 2].into());
    }

    /// Figure 9: a Tree-merge over a 2-level tree equals iterated
    /// Parent-merge in any order.
    #[test]
    fn tree_merge_matches_manual_folding() {
        let root = KLaneGraph::path(&[1, 2, 3]); // lanes {0,1,2}
        let a = KLaneGraph::edge(0, 10, 11);
        let b = KLaneGraph::edge(2, 20, 21);
        let merged = KLaneGraph::tree_merge(
            &[root.clone(), a.clone(), b.clone()],
            &[None, Some(0), Some(0)],
        );
        merged.check_invariants();
        let manual = KLaneGraph::parent_merge(&b, &KLaneGraph::parent_merge(&a, &root));
        assert_eq!(merged, manual);
        assert_eq!(merged.tout[&0], 11);
        assert_eq!(merged.tout[&1], 2);
        assert_eq!(merged.tout[&2], 21);
        assert_eq!(merged.edges.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sibling lanes must be disjoint")]
    fn tree_merge_rejects_overlapping_siblings() {
        let root = KLaneGraph::path(&[1, 2]);
        let a = KLaneGraph::edge(0, 10, 11);
        let b = KLaneGraph::edge(0, 20, 21);
        let _ = KLaneGraph::tree_merge(&[root, a, b], &[None, Some(0), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "identified two edges")]
    fn parent_merge_rejects_edge_identification() {
        // Parent path 1-2 on lanes {0,1}; child edge on lane 0 from 10 to 2?
        // Build a child whose glued edge coincides with the parent's.
        let parent = KLaneGraph::path(&[1, 2]);
        // child: edge between tin=10 (→1) and tout=2... tout must be a child
        // vertex; choosing name 2 makes the glued edge (1,2) collide.
        let child = KLaneGraph::edge(0, 10, 2);
        let _ = KLaneGraph::parent_merge(&child, &parent);
    }
}
