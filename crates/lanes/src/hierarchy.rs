//! Hierarchical decompositions of bounded depth (Section 5.3) and their
//! construction from lanewidth sequences (Proposition 5.6).
//!
//! A hierarchy is a tree over five node types:
//!
//! * `V` — a single designated vertex (one lane, `τin = τout`),
//! * `E` — a single edge (one lane, `τin ≠ τout`),
//! * `P` — the initial `k`-vertex path (all lanes),
//! * `B` — a `Bridge-merge` of two children (a `V` or `T` node each),
//! * `T` — a `Tree-merge` of member nodes (each an `E`, `P`, or `B` node),
//!
//! built incrementally by replaying a [`Construction`](crate::Construction):
//! `V-insert` adds an
//! `E`-node member under the lowest member holding the lane's terminal;
//! `E-insert` adds a `B`-node over `V`-nodes and/or wrapped subtrees
//! (cases 2.1–2.3 of Proposition 5.6). Observation 5.5 bounds every
//! root-to-leaf path by `2k` nodes — [`Hierarchy::depth`] measures it and
//! [`Hierarchy::validate`] asserts it.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use lanecert_graph::{EdgeId, VertexId};

use crate::{BuiltConstruction, Lane, LaneSet, Op};

/// Index of a node in the hierarchy arena.
pub type NodeId = usize;

/// The five node types of Section 5.3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A single designated vertex.
    V {
        /// The node's only lane.
        lane: Lane,
        /// The vertex.
        vertex: VertexId,
    },
    /// A single edge created by `V-insert`.
    E {
        /// The node's only lane.
        lane: Lane,
        /// In-terminal (the old designated vertex).
        tin: VertexId,
        /// Out-terminal (the freshly inserted vertex).
        tout: VertexId,
        /// The pendant edge (id in the built construction graph).
        edge: EdgeId,
    },
    /// The initial `k`-vertex path.
    P {
        /// Path vertices in lane order.
        vertices: Vec<VertexId>,
        /// The `k − 1` path edges.
        edges: Vec<EdgeId>,
    },
    /// A `Bridge-merge` of two children.
    B {
        /// Left bridge lane (a lane of `left`).
        i: Lane,
        /// Right bridge lane (a lane of `right`).
        j: Lane,
        /// Left child (`V` or `T` node).
        left: NodeId,
        /// Right child (`V` or `T` node).
        right: NodeId,
        /// The bridge edge.
        bridge: EdgeId,
    },
    /// A `Tree-merge` of member nodes.
    T {
        /// Member node ids (index 0 is the tree root member).
        members: Vec<NodeId>,
        /// `member_parent[x]` is the index (into `members`) of member `x`'s
        /// parent in the merge tree (`None` for the root member).
        member_parent: Vec<Option<usize>>,
    },
}

/// A node of the hierarchy: its kind plus the k-lane interface
/// (Definition 5.3) of the k-lane graph it realizes.
#[derive(Clone, Debug)]
pub struct HierarchyNode {
    /// Node type and children.
    pub kind: NodeKind,
    /// The lane set `T(G)`.
    pub lanes: LaneSet,
    /// In-terminal per lane of the node's **own** graph (for `B`/`T` nodes,
    /// the merged interface).
    pub tin: BTreeMap<Lane, VertexId>,
    /// Out-terminal per lane (own graph).
    pub tout: BTreeMap<Lane, VertexId>,
}

/// A hierarchical decomposition of a lanewidth graph.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Node arena; children reference by index.
    pub nodes: Vec<HierarchyNode>,
    /// The root `T`-node.
    pub root: NodeId,
    /// The lanewidth parameter `k`.
    pub k: usize,
}

/// Builds the hierarchy of a built construction (Proposition 5.6).
///
/// # Panics
///
/// Panics if internal invariants are violated (the construction must have
/// come from [`Construction::build`](crate::Construction::build)).
pub fn build_hierarchy(built: &BuiltConstruction) -> Hierarchy {
    let c = &built.construction;
    let k = c.k;
    let mut nodes: Vec<HierarchyNode> = Vec::new();

    let push = |node: HierarchyNode, nodes: &mut Vec<HierarchyNode>| -> NodeId {
        nodes.push(node);
        nodes.len() - 1
    };

    // Initial P-node.
    let p_node = HierarchyNode {
        kind: NodeKind::P {
            vertices: c.initial.clone(),
            edges: built.initial_path_edges.clone(),
        },
        lanes: LaneSet::full(k),
        tin: c.initial.iter().copied().enumerate().collect(),
        tout: c.initial.iter().copied().enumerate().collect(),
    };
    let p_id = push(p_node, &mut nodes);

    // Root-tree bookkeeping.
    let mut member_parent: HashMap<NodeId, Option<NodeId>> = HashMap::new();
    let mut member_children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    member_parent.insert(p_id, None);
    let mut lowest: Vec<NodeId> = vec![p_id; k];
    let mut cur: Vec<VertexId> = c.initial.clone();

    // Walks to the root collecting the ancestor chain (self first).
    let ancestors = |member_parent: &HashMap<NodeId, Option<NodeId>>, mut x: NodeId| {
        let mut chain = vec![x];
        while let Some(Some(p)) = member_parent.get(&x) {
            chain.push(*p);
            x = *p;
        }
        chain
    };

    for (step, op) in c.ops.iter().enumerate() {
        let op_edge = built.op_edge[step];
        match *op {
            Op::VInsert { lane, vertex } => {
                let old = cur[lane];
                let e_id = push(
                    HierarchyNode {
                        kind: NodeKind::E {
                            lane,
                            tin: old,
                            tout: vertex,
                            edge: op_edge,
                        },
                        lanes: LaneSet::singleton(lane),
                        tin: [(lane, old)].into(),
                        tout: [(lane, vertex)].into(),
                    },
                    &mut nodes,
                );
                let parent = lowest[lane];
                member_parent.insert(e_id, Some(parent));
                member_children.entry(parent).or_default().push(e_id);
                lowest[lane] = e_id;
                cur[lane] = vertex;
            }
            Op::EInsert { i, j } => {
                let gi = lowest[i];
                let gj = lowest[j];
                // Lowest common ancestor in the member tree.
                let chain_i = ancestors(&member_parent, gi);
                let set_i: BTreeSet<NodeId> = chain_i.iter().copied().collect();
                let chain_j = ancestors(&member_parent, gj);
                let gp = *chain_j
                    .iter()
                    .find(|x| set_i.contains(x))
                    .expect("member tree is connected");

                // Wraps the subtree hanging from `gp` towards `target` into
                // a T-node, removing its members from the root tree.
                let wrap = |target: NodeId,
                            nodes: &mut Vec<HierarchyNode>,
                            member_parent: &mut HashMap<NodeId, Option<NodeId>>,
                            member_children: &mut HashMap<NodeId, Vec<NodeId>>|
                 -> NodeId {
                    // Child of gp on the path towards target.
                    let chain = ancestors(member_parent, target);
                    let pos = chain.iter().position(|&x| x == gp).expect("gp on chain");
                    assert!(pos > 0, "target must be a strict descendant of gp");
                    let sub_root = chain[pos - 1];
                    // Collect the subtree in DFS order (sub_root first).
                    let mut members = Vec::new();
                    let mut stack = vec![sub_root];
                    while let Some(m) = stack.pop() {
                        members.push(m);
                        if let Some(ch) = member_children.get(&m) {
                            stack.extend(ch.iter().copied());
                        }
                    }
                    let index_of: HashMap<NodeId, usize> =
                        members.iter().enumerate().map(|(x, &m)| (m, x)).collect();
                    let rel_parent: Vec<Option<usize>> = members
                        .iter()
                        .map(|m| {
                            if *m == sub_root {
                                None
                            } else {
                                Some(index_of[&member_parent[m].expect("non-root member")])
                            }
                        })
                        .collect();
                    // Detach from the root tree.
                    for m in &members {
                        member_parent.remove(m);
                        member_children.remove(m);
                    }
                    member_children
                        .get_mut(&gp)
                        .expect("gp has children")
                        .retain(|&x| x != sub_root);
                    let lanes = nodes[sub_root].lanes;
                    let tin = nodes[sub_root].tin.clone();
                    let tout: BTreeMap<Lane, VertexId> =
                        lanes.iter().map(|l| (l, cur[l])).collect();
                    nodes.push(HierarchyNode {
                        kind: NodeKind::T {
                            members,
                            member_parent: rel_parent,
                        },
                        lanes,
                        tin,
                        tout,
                    });
                    nodes.len() - 1
                };

                let left = if gi == gp {
                    push(
                        HierarchyNode {
                            kind: NodeKind::V {
                                lane: i,
                                vertex: cur[i],
                            },
                            lanes: LaneSet::singleton(i),
                            tin: [(i, cur[i])].into(),
                            tout: [(i, cur[i])].into(),
                        },
                        &mut nodes,
                    )
                } else {
                    wrap(gi, &mut nodes, &mut member_parent, &mut member_children)
                };
                let right = if gj == gp {
                    push(
                        HierarchyNode {
                            kind: NodeKind::V {
                                lane: j,
                                vertex: cur[j],
                            },
                            lanes: LaneSet::singleton(j),
                            tin: [(j, cur[j])].into(),
                            tout: [(j, cur[j])].into(),
                        },
                        &mut nodes,
                    )
                } else {
                    wrap(gj, &mut nodes, &mut member_parent, &mut member_children)
                };

                assert!(
                    nodes[left].lanes.is_disjoint(nodes[right].lanes),
                    "Bridge-merge lanes must be disjoint"
                );
                let lanes = nodes[left].lanes.union(nodes[right].lanes);
                let mut tin = nodes[left].tin.clone();
                tin.extend(nodes[right].tin.iter().map(|(&l, &v)| (l, v)));
                let mut tout = nodes[left].tout.clone();
                tout.extend(nodes[right].tout.iter().map(|(&l, &v)| (l, v)));
                let b_id = push(
                    HierarchyNode {
                        kind: NodeKind::B {
                            i,
                            j,
                            left,
                            right,
                            bridge: op_edge,
                        },
                        lanes,
                        tin,
                        tout,
                    },
                    &mut nodes,
                );
                member_parent.insert(b_id, Some(gp));
                member_children.entry(gp).or_default().push(b_id);
                for lane in lanes.iter() {
                    lowest[lane] = b_id;
                }
            }
        }
    }

    // Final root T-node over the surviving members.
    let mut members: Vec<NodeId> = member_parent.keys().copied().collect();
    members.sort_unstable();
    // Put the P-node first (it is the member-tree root).
    let p_pos = members.iter().position(|&m| m == p_id).expect("P survives");
    members.swap(0, p_pos);
    let index_of: HashMap<NodeId, usize> =
        members.iter().enumerate().map(|(x, &m)| (m, x)).collect();
    let rel_parent: Vec<Option<usize>> = members
        .iter()
        .map(|m| member_parent[m].map(|p| index_of[&p]))
        .collect();
    let root = {
        nodes.push(HierarchyNode {
            kind: NodeKind::T {
                members,
                member_parent: rel_parent,
            },
            lanes: LaneSet::full(k),
            tin: c.initial.iter().copied().enumerate().collect(),
            tout: cur.iter().copied().enumerate().collect(),
        });
        nodes.len() - 1
    };
    Hierarchy { nodes, root, k }
}

impl Hierarchy {
    /// The children of a node in the hierarchy tree `H` (members for `T`,
    /// sides for `B`, none for leaves).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match &self.nodes[id].kind {
            NodeKind::V { .. } | NodeKind::E { .. } | NodeKind::P { .. } => Vec::new(),
            NodeKind::B { left, right, .. } => vec![*left, *right],
            NodeKind::T { members, .. } => members.clone(),
        }
    }

    /// Maximum number of nodes on a root-to-leaf path (Observation 5.5
    /// bounds this by `2k`).
    pub fn depth(&self) -> usize {
        fn go(h: &Hierarchy, id: NodeId) -> usize {
            1 + h
                .children(id)
                .into_iter()
                .map(|c| go(h, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root)
    }

    /// The vertices and edges realized by each node (unions over the
    /// subtree plus the node's own primitives), indexed by [`NodeId`].
    pub fn realized(&self) -> Vec<(BTreeSet<VertexId>, BTreeSet<EdgeId>)> {
        let mut memo: Vec<Option<(BTreeSet<VertexId>, BTreeSet<EdgeId>)>> =
            vec![None; self.nodes.len()];
        fn go(
            h: &Hierarchy,
            id: NodeId,
            memo: &mut Vec<Option<(BTreeSet<VertexId>, BTreeSet<EdgeId>)>>,
        ) {
            if memo[id].is_some() {
                return;
            }
            let mut vs = BTreeSet::new();
            let mut es = BTreeSet::new();
            match &h.nodes[id].kind {
                NodeKind::V { vertex, .. } => {
                    vs.insert(*vertex);
                }
                NodeKind::E {
                    tin, tout, edge, ..
                } => {
                    vs.insert(*tin);
                    vs.insert(*tout);
                    es.insert(*edge);
                }
                NodeKind::P { vertices, edges } => {
                    vs.extend(vertices.iter().copied());
                    es.extend(edges.iter().copied());
                }
                NodeKind::B { bridge, .. } => {
                    es.insert(*bridge);
                }
                NodeKind::T { .. } => {}
            }
            for child in h.children(id) {
                go(h, child, memo);
                let (cv, ce) = memo[child].as_ref().unwrap();
                vs.extend(cv.iter().copied());
                es.extend(ce.iter().copied());
            }
            memo[id] = Some((vs, es));
        }
        go(self, self.root, &mut memo);
        // Nodes unreachable from the root do not exist; but every node we
        // create is reachable, so fill any holes defensively.
        for id in 0..self.nodes.len() {
            go(self, id, &mut memo);
        }
        memo.into_iter().map(Option::unwrap).collect()
    }

    /// The *effective* out-terminals of a `T`-node member's subtree: the
    /// member's own out-terminals overridden by its member-children's
    /// effective out-terminals (the interface of `Tree-merge(T_m)`).
    pub fn subtree_tout(&self, t_node: NodeId, member_idx: usize) -> BTreeMap<Lane, VertexId> {
        let NodeKind::T {
            members,
            member_parent,
        } = &self.nodes[t_node].kind
        else {
            panic!("subtree_tout on non-T node");
        };
        let mut out = self.nodes[members[member_idx]].tout.clone();
        for (child_idx, parent) in member_parent.iter().enumerate() {
            if *parent == Some(member_idx) {
                for (l, v) in self.subtree_tout(t_node, child_idx) {
                    out.insert(l, v);
                }
            }
        }
        out
    }

    /// Exhaustive structural validation against the construction the
    /// hierarchy was built from: realized root equals the whole graph,
    /// bridge endpoints and member gluings are consistent, sibling lanes
    /// are disjoint, child lanes nest, edges are owned exactly once, and
    /// the Observation 5.5 depth bound holds.
    ///
    /// # Panics
    ///
    /// Panics on the first inconsistency (test/debug helper).
    pub fn validate(&self, built: &BuiltConstruction) {
        let g = &built.graph;
        assert!(
            self.depth() <= 2 * self.k,
            "Observation 5.5 violated: depth {} > 2k = {}",
            self.depth(),
            2 * self.k
        );
        let realized = self.realized();
        // Root covers everything.
        let (rv, re) = &realized[self.root];
        assert_eq!(rv.len(), g.vertex_count(), "root must realize all vertices");
        assert_eq!(re.len(), g.edge_count(), "root must realize all edges");

        // Each edge owned exactly once.
        let mut owner = vec![0usize; g.edge_count()];
        for node in &self.nodes {
            match &node.kind {
                NodeKind::E { edge, .. } => owner[edge.index()] += 1,
                NodeKind::P { edges, .. } => edges.iter().for_each(|e| owner[e.index()] += 1),
                NodeKind::B { bridge, .. } => owner[bridge.index()] += 1,
                _ => {}
            }
        }
        assert!(owner.iter().all(|&c| c == 1), "edge ownership not exact");

        for (id, node) in self.nodes.iter().enumerate() {
            // Terminals live inside the realized subgraph and lanes match.
            let (vs, _) = &realized[id];
            assert!(!node.lanes.is_empty(), "node {id}: empty lane set");
            for map in [&node.tin, &node.tout] {
                assert_eq!(map.len(), node.lanes.len());
                for (&l, v) in map {
                    assert!(node.lanes.contains(l));
                    assert!(vs.contains(v), "node {id}: terminal {v} outside subtree");
                }
            }
            match &node.kind {
                NodeKind::B {
                    i,
                    j,
                    left,
                    right,
                    bridge,
                } => {
                    let (lv, _) = &realized[*left];
                    let (rvs, _) = &realized[*right];
                    assert!(lv.is_disjoint(rvs), "node {id}: B sides share vertices");
                    assert!(self.nodes[*left]
                        .lanes
                        .is_disjoint(self.nodes[*right].lanes));
                    let (a, b) = g.endpoints(*bridge);
                    let want_a = self.nodes[*left].tout[i];
                    let want_b = self.nodes[*right].tout[j];
                    assert!(
                        (a, b) == (want_a, want_b) || (a, b) == (want_b, want_a),
                        "node {id}: bridge endpoints mismatch"
                    );
                    for side in [*left, *right] {
                        assert!(matches!(
                            self.nodes[side].kind,
                            NodeKind::V { .. } | NodeKind::T { .. }
                        ));
                    }
                }
                NodeKind::T {
                    members,
                    member_parent,
                } => {
                    assert_eq!(members.len(), member_parent.len());
                    assert!(!members.is_empty());
                    for (x, m) in members.iter().enumerate() {
                        assert!(matches!(
                            self.nodes[*m].kind,
                            NodeKind::E { .. } | NodeKind::P { .. } | NodeKind::B { .. }
                        ));
                        if let Some(p) = member_parent[x] {
                            let pm = members[p];
                            // Child lanes nest; gluing matches.
                            assert!(self.nodes[*m].lanes.is_subset_of(self.nodes[pm].lanes));
                            for l in self.nodes[*m].lanes.iter() {
                                assert_eq!(
                                    self.nodes[*m].tin[&l], self.nodes[pm].tout[&l],
                                    "node {id}: member gluing mismatch on lane {l}"
                                );
                            }
                            // Sibling lanes disjoint.
                            for (y, other) in members.iter().enumerate() {
                                if y != x && member_parent[y] == Some(p) {
                                    assert!(self.nodes[*m]
                                        .lanes
                                        .is_disjoint(self.nodes[*other].lanes));
                                }
                            }
                        } else {
                            assert_eq!(x, 0, "root member must be index 0");
                            assert_eq!(self.nodes[*m].lanes, node.lanes);
                            assert_eq!(self.nodes[*m].tin, node.tin);
                        }
                    }
                    // Effective out-terminals of the root member equal the
                    // T-node interface.
                    assert_eq!(self.subtree_tout(id, 0), node.tout);
                    // Members' realized edges are disjoint (checked globally
                    // by ownership, but vertices may only overlap at glue
                    // points — spot-check via sizes).
                }
                _ => {}
            }
        }
    }

    /// Counts nodes by kind, for diagnostics and experiments.
    pub fn kind_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            let key = match n.kind {
                NodeKind::V { .. } => "V",
                NodeKind::E { .. } => "E",
                NodeKind::P { .. } => "P",
                NodeKind::B { .. } => "B",
                NodeKind::T { .. } => "T",
            };
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ensure_two_lanes, greedy_partition};
    use crate::{Completion, Construction};
    use lanecert_graph::{generators, Graph};
    use lanecert_pathwidth::{solver, IntervalRep};
    use rand::SeedableRng;

    fn hierarchy_of(g: &Graph) -> (Hierarchy, BuiltConstruction) {
        let (_, pd) = solver::pathwidth_exact(g).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
        let completion = Completion::build(g, ensure_two_lanes(greedy_partition(&rep)));
        let c = Construction::from_completion(&completion, &rep);
        let built = c.build().unwrap();
        let h = build_hierarchy(&built);
        (h, built)
    }

    #[test]
    fn figure10_style_construction() {
        // k = 3 path, V-inserts and E-inserts exercising cases 2.1 and 2.3.
        let v = VertexId;
        let c = Construction {
            k: 3,
            initial: vec![v(0), v(1), v(2)],
            ops: vec![
                Op::VInsert {
                    lane: 0,
                    vertex: v(3),
                },
                Op::EInsert { i: 0, j: 1 }, // gi = E-node, gj = P: case 2.3
                Op::VInsert {
                    lane: 2,
                    vertex: v(4),
                },
                Op::EInsert { i: 1, j: 2 }, // case 2.3 again
                Op::EInsert { i: 0, j: 2 }, // both inside B-nodes: case 2.2
            ],
        };
        let built = c.build().unwrap();
        let h = build_hierarchy(&built);
        h.validate(&built);
        let counts = h.kind_counts();
        assert_eq!(counts["P"], 1);
        assert_eq!(counts["E"], 2);
        assert_eq!(counts["B"], 3);
        assert!(h.depth() <= 2 * 3);
    }

    #[test]
    fn families_validate_and_respect_depth() {
        for g in [
            generators::path_graph(9),
            generators::cycle_graph(8),
            generators::star(7),
            generators::caterpillar(3, 2),
            generators::ladder(5),
        ] {
            let (h, built) = hierarchy_of(&g);
            h.validate(&built);
        }
    }

    #[test]
    fn random_graphs_validate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for k in 1..=3 {
            for _ in 0..6 {
                let (g, _) = generators::random_pathwidth_graph(14, k, 0.5, &mut rng);
                let (h, built) = hierarchy_of(&g);
                h.validate(&built);
            }
        }
    }

    #[test]
    fn depth_bound_is_tight_enough_to_matter() {
        // Depth grows with k but stays ≤ 2k.
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (g, _) = generators::random_pathwidth_graph(18, 3, 0.6, &mut rng);
        let (h, built) = hierarchy_of(&g);
        h.validate(&built);
        assert!(h.depth() >= 2, "nontrivial hierarchy expected");
    }

    #[test]
    fn realized_root_is_whole_graph() {
        let (h, built) = hierarchy_of(&generators::cycle_graph(6));
        let realized = h.realized();
        let (vs, es) = &realized[h.root];
        assert_eq!(vs.len(), built.graph.vertex_count());
        assert_eq!(es.len(), built.graph.edge_count());
    }
}
