//! Embeddings of completion edges into the original graph (Definition 4.5).

use std::collections::HashMap;

use lanecert_graph::{traversal, EdgeId, Graph, VertexId};

use crate::Completion;

/// An embedding: for each *virtual* completion edge, a path in `G` between
/// its endpoints (stored as the vertex sequence, endpoints included).
#[derive(Clone, Debug, Default)]
pub struct Embedding {
    paths: HashMap<EdgeId, Vec<VertexId>>,
}

impl Embedding {
    /// Creates an empty embedding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the path for virtual completion edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if a path for `e` was already recorded.
    pub fn insert(&mut self, e: EdgeId, path: Vec<VertexId>) {
        let prev = self.paths.insert(e, path);
        assert!(prev.is_none(), "duplicate embedding path for {e}");
    }

    /// The path of virtual edge `e`, if recorded.
    pub fn path(&self, e: EdgeId) -> Option<&[VertexId]> {
        self.paths.get(&e).map(Vec::as_slice)
    }

    /// Iterates `(virtual edge, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &[VertexId])> {
        self.paths.iter().map(|(e, p)| (*e, p.as_slice()))
    }

    /// Number of embedded edges.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if nothing is embedded.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The congestion: the maximum number of embedding paths using a single
    /// edge of `g` (Definition 4.5). Returns 0 for an empty embedding.
    pub fn congestion(&self, g: &Graph) -> usize {
        let mut load = vec![0usize; g.edge_count()];
        for path in self.paths.values() {
            for w in path.windows(2) {
                let e = g
                    .edge_between(w[0], w[1])
                    .expect("embedding paths follow edges of G");
                load[e.index()] += 1;
            }
        }
        load.into_iter().max().unwrap_or(0)
    }

    /// Congestion restricted to the paths of a subset of virtual edges
    /// (used to measure the weak completion separately from the full one).
    pub fn congestion_of(&self, g: &Graph, edges: &[EdgeId]) -> usize {
        let mut load = vec![0usize; g.edge_count()];
        for e in edges {
            if let Some(path) = self.paths.get(e) {
                for w in path.windows(2) {
                    let id = g
                        .edge_between(w[0], w[1])
                        .expect("embedding paths follow edges of G");
                    load[id.index()] += 1;
                }
            }
        }
        load.into_iter().max().unwrap_or(0)
    }

    /// Checks that every virtual edge of `completion` has a path in `g`
    /// whose ends match the edge's endpoints, every hop is a `g`-edge, and
    /// the path is simple.
    ///
    /// # Panics
    ///
    /// Panics on the first inconsistency (test/debug helper).
    pub fn validate(&self, g: &Graph, completion: &Completion) {
        for e in completion.virtual_edges() {
            let (u, v) = completion.graph.endpoints(e);
            let path = self
                .paths
                .get(&e)
                .unwrap_or_else(|| panic!("virtual edge {e} ({u},{v}) has no path"));
            assert!(path.len() >= 2, "path of {e} too short");
            assert_eq!(path[0], u, "path of {e} starts at wrong endpoint");
            assert_eq!(
                *path.last().unwrap(),
                v,
                "path of {e} ends at wrong endpoint"
            );
            let mut seen = std::collections::HashSet::new();
            for &x in path {
                assert!(seen.insert(x), "path of {e} revisits {x}");
            }
            for w in path.windows(2) {
                assert!(
                    g.has_edge(w[0], w[1]),
                    "path of {e} uses non-edge ({}, {})",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Embeds every virtual edge along a BFS shortest path in `g` — the
/// *greedy* strategy. No worst-case congestion bound, but measured
/// congestion is small on the benchmark families (ablation T9).
pub fn shortest_path_embedding(g: &Graph, completion: &Completion) -> Embedding {
    let mut emb = Embedding::new();
    for e in completion.virtual_edges() {
        let (u, v) = completion.graph.endpoints(e);
        let path = traversal::shortest_path(g, u, v)
            .unwrap_or_else(|| panic!("G must be connected (no {u}–{v} path)"));
        emb.insert(e, path);
    }
    emb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::greedy_partition;
    use lanecert_graph::generators;
    use lanecert_pathwidth::{Interval, IntervalRep};

    fn cycle6() -> (Graph, IntervalRep) {
        let g = generators::cycle_graph(6);
        let rep = IntervalRep::new(
            [(0, 3), (0, 0), (0, 1), (1, 2), (2, 3), (3, 3)]
                .iter()
                .map(|&(a, b)| Interval::new(a, b))
                .collect(),
        );
        (g, rep)
    }

    #[test]
    fn shortest_path_embedding_is_valid() {
        let (g, rep) = cycle6();
        let c = Completion::build(&g, greedy_partition(&rep));
        let emb = shortest_path_embedding(&g, &c);
        emb.validate(&g, &c);
        assert_eq!(emb.len(), c.virtual_edges().count());
        assert!(emb.congestion(&g) >= 1);
    }

    #[test]
    fn empty_embedding_when_nothing_virtual() {
        let g = generators::path_graph(3);
        let rep = IntervalRep::new(vec![
            Interval::new(0, 0),
            Interval::new(1, 1),
            Interval::new(2, 2),
        ]);
        let c = Completion::build(&g, greedy_partition(&rep));
        let emb = shortest_path_embedding(&g, &c);
        assert!(emb.is_empty());
        assert_eq!(emb.congestion(&g), 0);
        emb.validate(&g, &c);
    }

    #[test]
    #[should_panic(expected = "duplicate embedding")]
    fn duplicate_path_panics() {
        let mut emb = Embedding::new();
        emb.insert(EdgeId(0), vec![VertexId(0), VertexId(1)]);
        emb.insert(EdgeId(0), vec![VertexId(0), VertexId(1)]);
    }

    #[test]
    fn congestion_counts_overlaps() {
        // Star: all virtual paths go through the hub.
        let g = generators::star(5);
        // Leaves get disjoint intervals; hub overlaps everything.
        let rep = IntervalRep::new(vec![
            Interval::new(0, 4),
            Interval::new(0, 0),
            Interval::new(1, 1),
            Interval::new(2, 2),
            Interval::new(3, 3),
        ]);
        let c = Completion::build(&g, greedy_partition(&rep));
        let emb = shortest_path_embedding(&g, &c);
        emb.validate(&g, &c);
        // Lane {v1,v2,v3,v4} needs 3 paths, each through two spokes.
        assert!(emb.congestion(&g) >= 2);
    }
}
