//! Lanewidth constructions (Definition 5.1) and their equivalence with
//! completions (Proposition 5.2).
//!
//! A graph has lanewidth `k` if it can be grown from a `k`-vertex path
//! `(τ_1, …, τ_k)` by `V-insert(i)` (add a vertex pendant on the designated
//! vertex `τ_i` and redesignate) and `E-insert(i, j)` (add the edge
//! `{τ_i, τ_j}`). [`Construction::build`] replays a sequence;
//! [`Construction::from_completion`] recovers a sequence from a completion
//! (the `Item 2 ⇒ Item 1` direction of Proposition 5.2).

use std::error::Error;
use std::fmt;

use lanecert_graph::{EdgeId, Graph, VertexId};
use lanecert_pathwidth::{Interval, IntervalRep};

use crate::{Completion, Lane};

/// One construction operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Add `vertex` adjacent to the current `τ_lane` and redesignate
    /// `τ_lane := vertex`.
    VInsert {
        /// The lane whose designated vertex is extended.
        lane: Lane,
        /// The (explicit, caller-chosen) id of the new vertex.
        vertex: VertexId,
    },
    /// Add the edge `{τ_i, τ_j}`.
    EInsert {
        /// First lane.
        i: Lane,
        /// Second lane.
        j: Lane,
    },
}

/// A lanewidth-`k` construction sequence with explicit vertex ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Construction {
    /// Number of lanes `k` (the initial path has `k` vertices).
    pub k: usize,
    /// The initial path `τ_1, …, τ_k` (distinct vertex ids).
    pub initial: Vec<VertexId>,
    /// The operations, in order.
    pub ops: Vec<Op>,
}

/// Errors raised while replaying a construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructionError {
    /// A lane index was `≥ k`.
    BadLane(Lane),
    /// `E-insert(i, i)` would create a self-loop.
    SelfLoop(Lane),
    /// An `E-insert` duplicates an existing edge.
    DuplicateEdge(VertexId, VertexId),
    /// Vertex ids are not exactly `0..n` across initial path and inserts.
    BadVertexIds,
    /// The initial path is empty.
    Empty,
}

impl fmt::Display for ConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ConstructionError::*;
        match self {
            BadLane(l) => write!(f, "lane {l} out of range"),
            SelfLoop(l) => write!(f, "E-insert({l}, {l}) would create a self-loop"),
            DuplicateEdge(u, v) => write!(f, "E-insert duplicates edge ({u}, {v})"),
            BadVertexIds => write!(f, "vertex ids must be exactly 0..n"),
            Empty => write!(f, "initial path is empty"),
        }
    }
}

impl Error for ConstructionError {}

/// The result of replaying a [`Construction`].
#[derive(Clone, Debug)]
pub struct BuiltConstruction {
    /// The construction that was replayed.
    pub construction: Construction,
    /// The resulting graph (the paper's bounded-lanewidth graph; in the
    /// pipeline this equals the completion graph).
    pub graph: Graph,
    /// `lane_of[v]`: the lane a vertex belongs to.
    pub lane_of: Vec<Lane>,
    /// Designation-time intervals (the proof of Proposition 5.2): `I_v` is
    /// the operation-time range during which `v` was designated.
    pub intervals: IntervalRep,
    /// For each op, the edge it created (`V-insert` pendant edge or
    /// `E-insert` edge).
    pub op_edge: Vec<EdgeId>,
    /// The `k − 1` edges of the initial path, in lane order.
    pub initial_path_edges: Vec<EdgeId>,
    /// Final designated vertex per lane.
    pub final_designated: Vec<VertexId>,
}

impl Construction {
    /// Replays the sequence and returns the built graph plus bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstructionError`] if the sequence is malformed.
    pub fn build(&self) -> Result<BuiltConstruction, ConstructionError> {
        use ConstructionError::*;
        let k = self.k;
        if k == 0 || self.initial.len() != k {
            return Err(Empty);
        }
        // Vertex ids must be a permutation of 0..n.
        let n = k + self
            .ops
            .iter()
            .filter(|o| matches!(o, Op::VInsert { .. }))
            .count();
        let mut seen = vec![false; n];
        let mut mark = |v: VertexId| -> Result<(), ConstructionError> {
            if v.index() >= n || seen[v.index()] {
                return Err(BadVertexIds);
            }
            seen[v.index()] = true;
            Ok(())
        };
        for &v in &self.initial {
            mark(v)?;
        }
        for op in &self.ops {
            if let Op::VInsert { vertex, .. } = op {
                mark(*vertex)?;
            }
        }

        let mut graph = Graph::new(n);
        let mut designated = self.initial.clone();
        let mut lane_of = vec![usize::MAX; n];
        let mut lo = vec![0u32; n];
        let mut hi = vec![0u32; n];
        for (l, &v) in self.initial.iter().enumerate() {
            lane_of[v.index()] = l;
        }
        let mut initial_path_edges = Vec::with_capacity(k.saturating_sub(1));
        for w in self.initial.windows(2) {
            let e = graph
                .add_edge(w[0], w[1])
                .map_err(|_| DuplicateEdge(w[0], w[1]))?;
            initial_path_edges.push(e);
        }
        let mut op_edge = Vec::with_capacity(self.ops.len());
        for (step, op) in self.ops.iter().enumerate() {
            let time = (step + 1) as u32;
            match *op {
                Op::VInsert { lane, vertex } => {
                    if lane >= k {
                        return Err(BadLane(lane));
                    }
                    let old = designated[lane];
                    let e = graph
                        .add_edge(old, vertex)
                        .map_err(|_| DuplicateEdge(old, vertex))?;
                    op_edge.push(e);
                    hi[old.index()] = time - 1;
                    lo[vertex.index()] = time;
                    lane_of[vertex.index()] = lane;
                    designated[lane] = vertex;
                }
                Op::EInsert { i, j } => {
                    if i >= k {
                        return Err(BadLane(i));
                    }
                    if j >= k {
                        return Err(BadLane(j));
                    }
                    if i == j {
                        return Err(SelfLoop(i));
                    }
                    let (u, v) = (designated[i], designated[j]);
                    let e = graph.add_edge(u, v).map_err(|_| DuplicateEdge(u, v))?;
                    op_edge.push(e);
                }
            }
        }
        let end = self.ops.len() as u32;
        for &v in &designated {
            hi[v.index()] = end;
        }
        let intervals = IntervalRep::new(
            (0..n)
                .map(|v| Interval::new(lo[v], hi[v].max(lo[v])))
                .collect(),
        );
        Ok(BuiltConstruction {
            construction: self.clone(),
            graph,
            lane_of,
            intervals,
            op_edge,
            initial_path_edges,
            final_designated: designated,
        })
    }

    /// Recovers a construction from a completion (Proposition 5.2,
    /// Item 2 ⇒ Item 1): the initial path is the lane heads; the remaining
    /// vertices are `V-insert`ed in order of their left endpoints; the
    /// non-`E1`/`E2` edges are `E-insert`ed at `max(L_u, L_v)`, with
    /// vertices processed before edges on ties.
    ///
    /// The returned construction's [`Construction::build`] reproduces the
    /// completion graph exactly (same vertex ids; edge ids may differ).
    ///
    /// # Panics
    ///
    /// Panics if the completion's partition and representation are
    /// inconsistent (callers validate upstream).
    pub fn from_completion(completion: &Completion, rep: &IntervalRep) -> Construction {
        let partition = &completion.partition;
        let k = partition.lane_count();
        let initial = partition.heads();
        let lane_of = partition.lane_of(completion.graph.vertex_count());
        let head_set: std::collections::HashSet<VertexId> = initial.iter().copied().collect();

        #[derive(Debug)]
        enum Item {
            Vertex(VertexId),
            Edge(VertexId, VertexId),
        }
        let mut items: Vec<(u32, u8, Item)> = Vec::new();
        for v in completion.graph.vertices() {
            if !head_set.contains(&v) {
                items.push((rep.interval(v).lo, 0, Item::Vertex(v)));
            }
        }
        for (id, e) in completion.graph.edges() {
            let role = &completion.roles[id.index()];
            // E1/E2 edges are created by V-inserts / the initial path.
            if role.lane_step.is_some() || role.head_link.is_some() {
                continue;
            }
            let key = rep.interval(e.u).lo.max(rep.interval(e.v).lo);
            items.push((key, 1, Item::Edge(e.u, e.v)));
        }
        items.sort_by_key(|(key, tie, item)| {
            (
                *key,
                *tie,
                match item {
                    Item::Vertex(v) => v.0,
                    Item::Edge(u, v) => u.0.max(v.0),
                },
            )
        });
        let ops = items
            .into_iter()
            .map(|(_, _, item)| match item {
                Item::Vertex(v) => Op::VInsert {
                    lane: lane_of[v.index()],
                    vertex: v,
                },
                Item::Edge(u, v) => Op::EInsert {
                    i: lane_of[u.index()],
                    j: lane_of[v.index()],
                },
            })
            .collect();
        Construction { k, initial, ops }
    }
}

/// Renders a construction as one line per operation (used to regenerate the
/// paper's Figure 7/10 trace in `examples/paper_figures.rs`).
pub fn trace(c: &Construction) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "initial path ({} lanes): {}",
        c.k,
        c.initial
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ── ")
    );
    for (i, op) in c.ops.iter().enumerate() {
        match op {
            Op::VInsert { lane, vertex } => {
                let _ = writeln!(out, "{:>3}. V-insert(lane {lane}) -> {vertex}", i + 1);
            }
            Op::EInsert { i: a, j: b } => {
                let _ = writeln!(out, "{:>3}. E-insert(lane {a}, lane {b})", i + 1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ensure_two_lanes, greedy_partition};
    use lanecert_graph::generators;
    use lanecert_pathwidth::solver;
    use rand::SeedableRng;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Figure 7's example: 4 lanes, V-inserts and E-inserts.
    #[test]
    fn figure7_trace_builds() {
        let c = Construction {
            k: 4,
            initial: vec![v(0), v(1), v(2), v(3)],
            ops: vec![
                Op::VInsert {
                    lane: 0,
                    vertex: v(4),
                },
                Op::VInsert {
                    lane: 3,
                    vertex: v(5),
                },
                Op::EInsert { i: 0, j: 1 },
                Op::EInsert { i: 0, j: 3 },
            ],
        };
        let built = c.build().unwrap();
        assert_eq!(built.graph.vertex_count(), 6);
        // 3 initial-path edges + 2 pendant + 2 E-insert = 7.
        assert_eq!(built.graph.edge_count(), 7);
        assert_eq!(built.lane_of[4], 0);
        assert_eq!(built.final_designated, vec![v(4), v(1), v(2), v(5)]);
        assert!(trace(&c).contains("V-insert(lane 0)"));
        // Designation intervals form a valid representation of the E-insert
        // subgraph (all edges here are within designated-time overlaps).
        assert_eq!(built.intervals.interval(v(0)), Interval::new(0, 0));
        assert_eq!(built.intervals.interval(v(4)), Interval::new(1, 4));
    }

    #[test]
    fn build_rejects_malformed() {
        let base = Construction {
            k: 2,
            initial: vec![v(0), v(1)],
            ops: vec![],
        };
        let mut c = base.clone();
        c.ops = vec![Op::EInsert { i: 0, j: 0 }];
        assert_eq!(c.build().unwrap_err(), ConstructionError::SelfLoop(0));
        let mut c = base.clone();
        c.ops = vec![Op::EInsert { i: 0, j: 5 }];
        assert_eq!(c.build().unwrap_err(), ConstructionError::BadLane(5));
        let mut c = base.clone();
        c.ops = vec![Op::EInsert { i: 0, j: 1 }]; // duplicates initial path edge
        assert!(matches!(
            c.build().unwrap_err(),
            ConstructionError::DuplicateEdge(_, _)
        ));
        let mut c = base.clone();
        c.ops = vec![Op::VInsert {
            lane: 0,
            vertex: v(1),
        }]; // reused id
        assert_eq!(c.build().unwrap_err(), ConstructionError::BadVertexIds);
        let mut c = base;
        c.initial = vec![];
        assert_eq!(c.build().unwrap_err(), ConstructionError::Empty);
    }

    /// Proposition 5.2 round trip: completion → construction → same graph.
    fn roundtrip(g: &Graph) {
        let (_, pd) = solver::pathwidth_exact(g).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
        let p = ensure_two_lanes(greedy_partition(&rep));
        let completion = Completion::build(g, p);
        let c = Construction::from_completion(&completion, &rep);
        let built = c.build().unwrap_or_else(|e| panic!("build failed: {e}"));
        assert_eq!(built.graph.vertex_count(), completion.graph.vertex_count());
        assert_eq!(built.graph.edge_count(), completion.graph.edge_count());
        for (_, e) in completion.graph.edges() {
            assert!(
                built.graph.has_edge(e.u, e.v),
                "edge ({}, {}) missing after roundtrip",
                e.u,
                e.v
            );
        }
        // Lanes survive the roundtrip.
        let lane_of = completion
            .partition
            .lane_of(completion.graph.vertex_count());
        assert_eq!(built.lane_of, lane_of);
    }

    #[test]
    fn roundtrip_families() {
        roundtrip(&generators::path_graph(7));
        roundtrip(&generators::cycle_graph(6));
        roundtrip(&generators::star(6));
        roundtrip(&generators::caterpillar(3, 2));
        roundtrip(&generators::ladder(4));
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for k in 1..=3 {
            for _ in 0..6 {
                let (g, _) = generators::random_pathwidth_graph(13, k, 0.5, &mut rng);
                roundtrip(&g);
            }
        }
    }

    /// The designation intervals of a built construction are a valid
    /// representation of the *E-insert subgraph* (Proposition 5.2,
    /// Item 1 ⇒ Item 2) whose width is at most k.
    #[test]
    fn designation_intervals_have_width_at_most_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let (g, _) = generators::random_pathwidth_graph(12, 2, 0.5, &mut rng);
            let (_, pd) = solver::pathwidth_exact(&g).unwrap();
            let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
            let completion = Completion::build(&g, ensure_two_lanes(greedy_partition(&rep)));
            let c = Construction::from_completion(&completion, &rep);
            let built = c.build().unwrap();
            assert!(built.intervals.width() <= c.k);
        }
    }
}
