//! Lane indices and small lane sets.

use std::fmt;

/// A lane index (`0`-based; the paper writes lanes `1..=k`).
pub type Lane = usize;

/// A set of lanes, stored as a 64-bit mask (the workspace never needs more
/// than 64 lanes: `f(4) = 110` exceeds it, but experiments cap the interval
/// width accordingly and the constructors panic loudly otherwise).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneSet(pub u64);

impl LaneSet {
    /// The empty set.
    pub const EMPTY: LaneSet = LaneSet(0);

    /// The singleton `{lane}`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn singleton(lane: Lane) -> Self {
        assert!(lane < 64, "lane {lane} out of range");
        LaneSet(1 << lane)
    }

    /// The set `{0, …, k-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 64`.
    pub fn full(k: usize) -> Self {
        assert!(k <= 64, "at most 64 lanes supported");
        if k == 64 {
            LaneSet(u64::MAX)
        } else {
            LaneSet((1u64 << k) - 1)
        }
    }

    /// Inserts a lane.
    pub fn insert(&mut self, lane: Lane) {
        assert!(lane < 64, "lane {lane} out of range");
        self.0 |= 1 << lane;
    }

    /// Membership test.
    pub fn contains(&self, lane: Lane) -> bool {
        lane < 64 && self.0 & (1 << lane) != 0
    }

    /// Set union.
    pub fn union(&self, other: LaneSet) -> LaneSet {
        LaneSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: LaneSet) -> LaneSet {
        LaneSet(self.0 & other.0)
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset_of(&self, other: LaneSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if the sets share no lane.
    pub fn is_disjoint(&self, other: LaneSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of lanes in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates lanes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Lane> + '_ {
        let mut mask = self.0;
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let lane = mask.trailing_zeros() as Lane;
                mask &= mask - 1;
                Some(lane)
            }
        })
    }
}

impl FromIterator<Lane> for LaneSet {
    fn from_iter<T: IntoIterator<Item = Lane>>(iter: T) -> Self {
        let mut s = LaneSet::EMPTY;
        for lane in iter {
            s.insert(lane);
        }
        s
    }
}

impl fmt::Debug for LaneSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneSet{{")?;
        for (i, lane) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{lane}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for LaneSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let a: LaneSet = [0, 2, 5].into_iter().collect();
        let b: LaneSet = [2, 3].into_iter().collect();
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.union(b), [0, 2, 3, 5].into_iter().collect());
        assert_eq!(a.intersection(b), LaneSet::singleton(2));
        assert!(!a.is_disjoint(b));
        assert!(LaneSet::singleton(1).is_disjoint(a));
        assert!(b.is_subset_of(a.union(b)));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(LaneSet::full(3), [0, 1, 2].into_iter().collect());
        assert!(LaneSet::EMPTY.is_empty());
    }
}
