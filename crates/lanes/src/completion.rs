//! Completions of a lane partition (Definition 4.4).
//!
//! Given `(G, I, P)`, the *weak completion* adds `E1` (edges joining
//! consecutive vertices of each lane) and the *completion* also adds `E2`
//! (edges joining the heads of consecutive lanes). The edge sets are unions,
//! so an `E1`/`E2` edge may coincide with an original edge of `G` — the
//! [`EdgeRole`] records every role an edge plays.

use lanecert_graph::{EdgeId, Graph};
use lanecert_pathwidth::IntervalRep;

use crate::{Lane, LanePartition};

/// The roles a completion edge plays (several may hold at once when the
/// union collapses).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeRole {
    /// The edge is an original edge of `G` (its id in `G`, which equals its
    /// id in the completion graph because original edges are inserted
    /// first).
    pub original: Option<EdgeId>,
    /// `E1`: the edge joins positions `pos` and `pos + 1` of `lane`.
    pub lane_step: Option<(Lane, usize)>,
    /// `E2`: the edge joins the heads of `lane` and `lane + 1`.
    pub head_link: Option<Lane>,
}

impl EdgeRole {
    /// Returns `true` if the edge exists only because of the completion.
    pub fn is_virtual(&self) -> bool {
        self.original.is_none()
    }
}

/// The completion `G' = (V, E ∪ E1 ∪ E2)` of `(G, I, P)`.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The completion graph `G'`. Edges `0..m` coincide with the edges of
    /// `G` (same ids); the remaining edges are the virtual `E1`/`E2` edges.
    pub graph: Graph,
    /// Role of each completion edge, indexed by its [`EdgeId`] in
    /// [`Self::graph`].
    pub roles: Vec<EdgeRole>,
    /// The partition that induced the completion.
    pub partition: LanePartition,
    /// Number of edges of the original graph `G`.
    pub original_edges: usize,
}

impl Completion {
    /// Builds the completion of `(g, partition)`.
    ///
    /// The caller is responsible for `partition` being a valid lane
    /// partition of an interval representation of `g` (checked in debug
    /// builds via the representation if supplied to
    /// [`Completion::validate`]).
    pub fn build(g: &Graph, partition: LanePartition) -> Self {
        let mut graph = Graph::new(g.vertex_count());
        let mut roles: Vec<EdgeRole> = Vec::with_capacity(g.edge_count());
        for (_, e) in g.edges() {
            let id = graph.add_edge(e.u, e.v).expect("G is simple");
            debug_assert_eq!(id.index(), roles.len());
            roles.push(EdgeRole {
                original: Some(id),
                ..EdgeRole::default()
            });
        }
        // E1: consecutive vertices within each lane.
        for (l, lane) in partition.lanes().iter().enumerate() {
            for (pos, w) in lane.windows(2).enumerate() {
                let (e, fresh) = graph
                    .ensure_edge(w[0], w[1])
                    .expect("no self loops in lanes");
                if fresh {
                    roles.push(EdgeRole::default());
                }
                roles[e.index()].lane_step = Some((l, pos));
            }
        }
        // E2: heads of consecutive lanes.
        let heads = partition.heads();
        for (l, w) in heads.windows(2).enumerate() {
            let (e, fresh) = graph.ensure_edge(w[0], w[1]).expect("heads are distinct");
            if fresh {
                roles.push(EdgeRole::default());
            }
            roles[e.index()].head_link = Some(l);
        }
        Self {
            graph,
            roles,
            partition,
            original_edges: g.edge_count(),
        }
    }

    /// The virtual edges (`E1 ∪ E2` minus collapses), i.e. the edges that
    /// must be embedded into `G`.
    pub fn virtual_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_virtual())
            .map(|(i, _)| EdgeId::new(i))
    }

    /// Returns `true` if completion edge `e` is an edge of the original `G`.
    pub fn is_original(&self, e: EdgeId) -> bool {
        self.roles[e.index()].original.is_some()
    }

    /// Sanity-checks the completion against the graph and representation it
    /// was built from: partition validity, `E1`/`E2` shape, role exactness.
    ///
    /// # Panics
    ///
    /// Panics (with a descriptive message) on any inconsistency — this is a
    /// test/debug helper, not a soundness gate.
    pub fn validate(&self, g: &Graph, rep: &IntervalRep) {
        self.partition.validate(rep).expect("partition invalid");
        assert_eq!(self.original_edges, g.edge_count());
        assert_eq!(self.graph.vertex_count(), g.vertex_count());
        // Original edges coincide.
        for (id, e) in g.edges() {
            assert_eq!(self.graph.endpoints(id), (e.u, e.v), "edge {id} moved");
            assert_eq!(self.roles[id.index()].original, Some(id));
        }
        // Every completion edge is original, lane-step, or head-link.
        for (id, _) in self.graph.edges() {
            let r = &self.roles[id.index()];
            assert!(
                r.original.is_some() || r.lane_step.is_some() || r.head_link.is_some(),
                "edge {id} has no role"
            );
        }
        // E1 edges match the lanes exactly.
        for (l, lane) in self.partition.lanes().iter().enumerate() {
            for (pos, w) in lane.windows(2).enumerate() {
                let e = self
                    .graph
                    .edge_between(w[0], w[1])
                    .expect("lane-step edge missing");
                assert_eq!(self.roles[e.index()].lane_step, Some((l, pos)));
            }
        }
        // E2 edges match the heads.
        let heads = self.partition.heads();
        for (l, w) in heads.windows(2).enumerate() {
            let e = self
                .graph
                .edge_between(w[0], w[1])
                .expect("head-link edge missing");
            assert_eq!(self.roles[e.index()].head_link, Some(l));
        }
    }
}

/// Renders a completion as a small ASCII diagram (used to regenerate the
/// paper's Figure 3 in `examples/paper_figures.rs`).
pub fn ascii_diagram(c: &Completion) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (l, lane) in c.partition.lanes().iter().enumerate() {
        let _ = write!(out, "lane {l}: ");
        for (i, v) in lane.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, " ── ");
            }
            let _ = write!(out, "{v}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "heads path: {}",
        c.partition
            .heads()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ── ")
    );
    let virtuals: Vec<String> = c
        .virtual_edges()
        .map(|e| {
            let (u, v) = c.graph.endpoints(e);
            format!("({u},{v})")
        })
        .collect();
    let _ = writeln!(out, "virtual edges: {}", virtuals.join(" "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::greedy_partition;
    use lanecert_graph::generators;
    use lanecert_pathwidth::Interval;

    fn figure1() -> (Graph, IntervalRep) {
        let g = generators::cycle_graph(6);
        let rep = IntervalRep::new(
            [(0, 3), (0, 0), (0, 1), (1, 2), (2, 3), (3, 3)]
                .iter()
                .map(|&(a, b)| Interval::new(a, b))
                .collect(),
        );
        (g, rep)
    }

    #[test]
    fn completion_of_figure1() {
        let (g, rep) = figure1();
        let p = greedy_partition(&rep);
        let c = Completion::build(&g, p);
        c.validate(&g, &rep);
        // G has 6 edges. Lanes (by greedy): {a}, {b,d,f}? — depends on sort;
        // whatever the partition, |E1| = n - w and |E2| = w - 1 before
        // collapsing, so |E'| <= 6 + (6 - w) + (w - 1) = 11.
        assert!(c.graph.edge_count() <= 11);
        assert!(c.graph.edge_count() > 6);
        // Roles cover every edge.
        assert_eq!(c.roles.len(), c.graph.edge_count());
    }

    #[test]
    fn collapsed_edges_keep_both_roles() {
        // Path v0-v1-v2 with intervals [0,0],[1,1],[2,2]: single lane, and
        // both E1 edges coincide with original edges.
        let g = generators::path_graph(3);
        let rep = IntervalRep::new(vec![
            Interval::new(0, 0),
            Interval::new(1, 1),
            Interval::new(2, 2),
        ]);
        let p = greedy_partition(&rep);
        let c = Completion::build(&g, p);
        c.validate(&g, &rep);
        assert_eq!(c.graph.edge_count(), 2);
        assert_eq!(c.virtual_edges().count(), 0);
        assert_eq!(c.roles[0].lane_step, Some((0, 0)));
        assert!(c.roles[0].original.is_some());
    }

    #[test]
    fn virtual_edges_are_e1_e2() {
        let (g, rep) = figure1();
        let c = Completion::build(&g, greedy_partition(&rep));
        for e in c.virtual_edges() {
            let r = &c.roles[e.index()];
            assert!(r.lane_step.is_some() || r.head_link.is_some());
            assert!(r.original.is_none());
        }
    }

    #[test]
    fn ascii_diagram_mentions_lanes() {
        let (g, rep) = figure1();
        let c = Completion::build(&g, greedy_partition(&rep));
        let art = ascii_diagram(&c);
        assert!(art.contains("lane 0"));
        assert!(art.contains("heads path"));
    }
}
