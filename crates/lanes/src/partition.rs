//! Lane partitions (Definition 4.2) and the greedy construction
//! (Observation 4.3).

use std::error::Error;
use std::fmt;

use lanecert_graph::VertexId;
use lanecert_pathwidth::IntervalRep;

use crate::Lane;

/// A `w`-lane partition: the vertex set split into `w` sequences, each
/// strictly increasing under the `≺` interval order (Definition 4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LanePartition {
    lanes: Vec<Vec<VertexId>>,
}

/// Reasons a candidate partition is not a lane partition of a representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LanePartitionError {
    /// A lane has two consecutive vertices whose intervals are not strictly
    /// ordered.
    NotOrdered(Lane, VertexId, VertexId),
    /// A vertex appears in no lane or more than once.
    BadCoverage(VertexId),
    /// A lane is empty.
    EmptyLane(Lane),
}

impl fmt::Display for LanePartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use LanePartitionError::*;
        match self {
            NotOrdered(l, u, v) => {
                write!(
                    f,
                    "lane {l}: intervals of {u} and {v} are not strictly ordered"
                )
            }
            BadCoverage(v) => write!(f, "vertex {v} is not covered exactly once"),
            EmptyLane(l) => write!(f, "lane {l} is empty"),
        }
    }
}

impl Error for LanePartitionError {}

impl LanePartition {
    /// Wraps lane sequences (no validation; see [`Self::validate`]).
    pub fn new(lanes: Vec<Vec<VertexId>>) -> Self {
        Self { lanes }
    }

    /// The lanes, each a `≺`-increasing vertex sequence.
    pub fn lanes(&self) -> &[Vec<VertexId>] {
        &self.lanes
    }

    /// Number of lanes `w`.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The first vertex of each lane (the lane *heads*, which the completion
    /// joins into a path via `E2`).
    pub fn heads(&self) -> Vec<VertexId> {
        self.lanes.iter().map(|l| l[0]).collect()
    }

    /// Returns `lane_of[v]` for every vertex (`n` entries).
    ///
    /// # Panics
    ///
    /// Panics if some vertex `< n` is missing from the partition.
    pub fn lane_of(&self, n: usize) -> Vec<Lane> {
        let mut out = vec![usize::MAX; n];
        for (l, lane) in self.lanes.iter().enumerate() {
            for &v in lane {
                out[v.index()] = l;
            }
        }
        assert!(
            out.iter().all(|&l| l != usize::MAX),
            "partition does not cover all {n} vertices"
        );
        out
    }

    /// Checks Definition 4.2 against an interval representation: lanes are
    /// non-empty, every vertex appears exactly once, and each lane is
    /// strictly `≺`-ordered.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, rep: &IntervalRep) -> Result<(), LanePartitionError> {
        use LanePartitionError::*;
        let mut seen = vec![false; rep.len()];
        for (l, lane) in self.lanes.iter().enumerate() {
            if lane.is_empty() {
                return Err(EmptyLane(l));
            }
            for &v in lane {
                if v.index() >= seen.len() || seen[v.index()] {
                    return Err(BadCoverage(v));
                }
                seen[v.index()] = true;
            }
            for w in lane.windows(2) {
                if !rep.interval(w[0]).strictly_before(&rep.interval(w[1])) {
                    return Err(NotOrdered(l, w[0], w[1]));
                }
            }
        }
        if let Some(v) = seen.iter().position(|s| !s) {
            return Err(BadCoverage(VertexId::new(v)));
        }
        Ok(())
    }
}

/// Greedy first-fit interval colouring (Observation 4.3): sorts vertices by
/// left endpoint and places each in the first lane whose last interval ends
/// before it starts. Uses exactly `width(rep)` lanes.
pub fn greedy_partition(rep: &IntervalRep) -> LanePartition {
    let mut order: Vec<VertexId> = (0..rep.len()).map(VertexId::new).collect();
    order.sort_by_key(|&v| (rep.interval(v).lo, rep.interval(v).hi, v.0));
    let mut lanes: Vec<Vec<VertexId>> = Vec::new();
    let mut last_hi: Vec<u32> = Vec::new();
    for v in order {
        let iv = rep.interval(v);
        match last_hi.iter().position(|&hi| hi < iv.lo) {
            Some(l) => {
                lanes[l].push(v);
                last_hi[l] = iv.hi;
            }
            None => {
                lanes.push(vec![v]);
                last_hi.push(iv.hi);
            }
        }
    }
    LanePartition::new(lanes)
}

/// Splits a single-lane partition into two alternating lanes. The scheme
/// requires at least two lanes so that the initial `P`-node of the
/// hierarchical decomposition owns an edge (see DESIGN.md, "w ≥ 2
/// normalization"); alternation preserves strict `≺`-ordering within each
/// new lane.
pub fn ensure_two_lanes(p: LanePartition) -> LanePartition {
    if p.lane_count() != 1 || p.lanes()[0].len() < 2 {
        return p;
    }
    let only = &p.lanes()[0];
    let even = only.iter().copied().step_by(2).collect();
    let odd = only.iter().copied().skip(1).step_by(2).collect();
    LanePartition::new(vec![even, odd])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_pathwidth::Interval;

    fn rep(ivs: &[(u32, u32)]) -> IntervalRep {
        IntervalRep::new(ivs.iter().map(|&(a, b)| Interval::new(a, b)).collect())
    }

    #[test]
    fn greedy_uses_width_lanes() {
        // Figure 1's 6-cycle representation: width 3.
        let r = rep(&[(0, 3), (0, 0), (0, 1), (1, 2), (2, 3), (3, 3)]);
        let p = greedy_partition(&r);
        p.validate(&r).unwrap();
        assert_eq!(p.lane_count(), 3);
    }

    #[test]
    fn greedy_on_disjoint_intervals_is_single_lane() {
        let r = rep(&[(0, 0), (1, 1), (2, 2)]);
        let p = greedy_partition(&r);
        p.validate(&r).unwrap();
        assert_eq!(p.lane_count(), 1);
        assert_eq!(p.heads(), vec![VertexId(0)]);
    }

    #[test]
    fn validate_rejects_unordered_lane() {
        let r = rep(&[(0, 2), (1, 3)]);
        let p = LanePartition::new(vec![vec![VertexId(0), VertexId(1)]]);
        assert!(matches!(
            p.validate(&r),
            Err(LanePartitionError::NotOrdered(0, _, _))
        ));
    }

    #[test]
    fn validate_rejects_missing_vertex() {
        let r = rep(&[(0, 0), (1, 1)]);
        let p = LanePartition::new(vec![vec![VertexId(0)]]);
        assert_eq!(
            p.validate(&r),
            Err(LanePartitionError::BadCoverage(VertexId(1)))
        );
    }

    #[test]
    fn validate_rejects_empty_lane() {
        let r = rep(&[(0, 0)]);
        let p = LanePartition::new(vec![vec![VertexId(0)], vec![]]);
        assert_eq!(p.validate(&r), Err(LanePartitionError::EmptyLane(1)));
    }

    #[test]
    fn ensure_two_lanes_splits_alternating() {
        let r = rep(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let p = ensure_two_lanes(greedy_partition(&r));
        p.validate(&r).unwrap();
        assert_eq!(p.lane_count(), 2);
        assert_eq!(p.lanes()[0], vec![VertexId(0), VertexId(2)]);
        assert_eq!(p.lanes()[1], vec![VertexId(1), VertexId(3)]);
    }

    #[test]
    fn lane_of_maps_everything() {
        let r = rep(&[(0, 1), (0, 1), (2, 2)]);
        let p = greedy_partition(&r);
        let lane_of = p.lane_of(3);
        assert_eq!(lane_of.len(), 3);
        assert_ne!(lane_of[0], lane_of[1]);
    }
}
