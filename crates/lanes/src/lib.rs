//! Sections 4 and 5 of the paper: lane partitions, completions,
//! low-congestion embeddings, lanewidth constructions, k-lane graphs, and
//! hierarchical decompositions of bounded depth.
//!
//! The pipeline implemented here turns a connected graph `G` with an interval
//! representation `I` into the structures the certification algorithm
//! (crate `lanecert`) consumes:
//!
//! 1. a [`LanePartition`] of the intervals ([`partition::greedy_partition`]
//!    for the width-many-lanes variant, [`recursive::recursive_partition`]
//!    for the Proposition 4.6 variant with congestion guarantees);
//! 2. the [`Completion`] `G'` of `(G, I, P)` (Definition 4.4) together with an
//!    [`Embedding`] of the new edges back into `G`;
//! 3. a lanewidth [`Construction`] (`V-insert`/`E-insert` sequence,
//!    Definition 5.1 / Proposition 5.2);
//! 4. a [`Hierarchy`] — the bounded-depth hierarchical decomposition into
//!    `V/E/P/B/T` nodes (Section 5.3, Proposition 5.6, Observation 5.5).

mod lane;
pub use lane::{Lane, LaneSet};

pub mod bounds;

pub mod partition;
pub use partition::{LanePartition, LanePartitionError};

pub mod completion;
pub use completion::{Completion, EdgeRole};

pub mod embedding;
pub use embedding::Embedding;

pub mod recursive;

pub mod lanewidth;
pub use lanewidth::{BuiltConstruction, Construction, ConstructionError, Op};

pub mod klane;

pub mod hierarchy;
pub use hierarchy::{build_hierarchy, Hierarchy, HierarchyNode, NodeId, NodeKind};

pub mod pipeline;
pub use pipeline::{LaneStrategy, Layout};
