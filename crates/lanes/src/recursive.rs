//! The recursive lane partition with a low-congestion embedding
//! (Proposition 4.6).
//!
//! Given a connected graph `G` with an interval representation of width `k`,
//! produces a `w`-lane partition with `w ≤ f(k)` together with embedding
//! paths for all `E1` (lane-step) edges whose congestion is at most `g(k)`;
//! adding arbitrary paths for the `w − 1` head-link edges (`E2`) yields
//! congestion at most `h(k) = g(k) + f(k) − 1`.
//!
//! The construction follows Section 4.2 of the paper exactly:
//! skeleton path `P` from `v_st` (min `L`) to `v_ed` (max `R`), greedy
//! maximal-reach subsequence `S` split into `S1`/`S2`, components of
//! `G − S` classed by interval-disjointness (Lemma 4.10) and by which side
//! of `S` they attach to, then recursion (Lemma 4.11 guarantees the width
//! drops).

use std::collections::{HashMap, HashSet};

use lanecert_graph::{Graph, VertexId};
use lanecert_pathwidth::{Interval, IntervalRep};

use crate::{partition::LanePartition, Embedding};

/// Unordered vertex pair used as a path key.
pub type PairKey = (VertexId, VertexId);

/// Normalizes an unordered pair.
pub fn pair_key(a: VertexId, b: VertexId) -> PairKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Output of [`recursive_partition`]: the lane partition plus a simple path
/// in `G` for every consecutive pair in every lane (the `E1` edges of the
/// weak completion).
#[derive(Clone, Debug)]
pub struct RecursiveLanes {
    /// The lane partition (only non-empty lanes, in construction order).
    pub partition: LanePartition,
    /// `E1` embedding paths keyed by unordered endpoint pair.
    pub e1_paths: HashMap<PairKey, Vec<VertexId>>,
}

/// Runs the Proposition 4.6 construction on a connected graph.
///
/// # Panics
///
/// Panics if `g` is disconnected or `rep` is not a valid representation of
/// `g` (the construction's invariants are asserted throughout).
pub fn recursive_partition(g: &Graph, rep: &IntervalRep) -> RecursiveLanes {
    rep.validate(g).expect("interval representation invalid");
    assert!(
        lanecert_graph::components::is_connected(g),
        "recursive partition requires a connected graph"
    );
    let verts: Vec<VertexId> = g.vertices().collect();
    let mut e1_paths = HashMap::new();
    let lanes = solve(g, rep, &verts, &mut e1_paths);
    let lanes: Vec<Vec<VertexId>> = lanes.into_iter().filter(|l| !l.is_empty()).collect();
    RecursiveLanes {
        partition: LanePartition::new(lanes),
        e1_paths,
    }
}

/// Builds the full embedding (E1 paths from the recursion, E2 paths via BFS)
/// for the completion built from [`RecursiveLanes::partition`].
pub fn embedding_from_paths(
    g: &Graph,
    completion: &crate::Completion,
    e1_paths: &HashMap<PairKey, Vec<VertexId>>,
) -> Embedding {
    let mut emb = Embedding::new();
    for e in completion.virtual_edges() {
        let (u, v) = completion.graph.endpoints(e);
        let role = &completion.roles[e.index()];
        let path = if role.lane_step.is_some() {
            e1_paths
                .get(&pair_key(u, v))
                .unwrap_or_else(|| panic!("missing E1 path for ({u},{v})"))
                .clone()
        } else {
            // E2 head-link: arbitrary path (Proposition 4.6's second claim).
            lanecert_graph::traversal::shortest_path(g, u, v).expect("connected graph")
        };
        let path = if path[0] == u {
            path
        } else {
            let mut p = path;
            p.reverse();
            p
        };
        emb.insert(e, path);
    }
    emb
}

/// Width of the representation restricted to `verts`.
fn restricted_width(rep: &IntervalRep, verts: &[VertexId]) -> usize {
    let mut events: Vec<(u32, i32)> = Vec::with_capacity(verts.len() * 2);
    for &v in verts {
        let iv = rep.interval(v);
        events.push((iv.lo, 1));
        events.push((iv.hi + 1, -1));
    }
    events.sort_unstable();
    let mut cur = 0;
    let mut best = 0;
    for (_, d) in events {
        cur += d;
        best = best.max(cur);
    }
    best as usize
}

/// BFS path between two vertices staying inside `allowed`.
fn path_within(
    g: &Graph,
    allowed: &HashSet<VertexId>,
    from: VertexId,
    to: VertexId,
) -> Vec<VertexId> {
    let mut parent: HashMap<VertexId, VertexId> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    parent.insert(from, from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            break;
        }
        for w in g.neighbors(v) {
            if allowed.contains(&w) && !parent.contains_key(&w) {
                parent.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    assert!(
        parent.contains_key(&to),
        "{from}–{to} disconnected in subset"
    );
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = parent[&cur];
        path.push(cur);
    }
    path.reverse();
    path
}

/// Connected components of the subgraph induced by `verts`.
fn components_within(g: &Graph, verts: &HashSet<VertexId>) -> Vec<Vec<VertexId>> {
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut comps = Vec::new();
    let mut ordered: Vec<VertexId> = verts.iter().copied().collect();
    ordered.sort();
    for &s in &ordered {
        if seen.contains(&s) {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        seen.insert(s);
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for w in g.neighbors(v) {
                if verts.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps
}

/// Collapses a walk (consecutive vertices adjacent) into a simple path by
/// removing loops; the resulting path uses a subset of the walk's edges, so
/// congestion never increases.
fn simplify_walk(walk: Vec<VertexId>) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = Vec::with_capacity(walk.len());
    let mut pos: HashMap<VertexId, usize> = HashMap::new();
    for v in walk {
        if let Some(&i) = pos.get(&v) {
            for dropped in out.drain(i + 1..) {
                pos.remove(&dropped);
            }
        } else {
            pos.insert(v, out.len());
            out.push(v);
        }
    }
    out
}

/// Records a path for an E1 pair (first writer wins across recursion levels
/// — pairs are produced exactly once, asserted in debug builds).
fn record_path(
    paths: &mut HashMap<PairKey, Vec<VertexId>>,
    a: VertexId,
    b: VertexId,
    walk: Vec<VertexId>,
) {
    let path = simplify_walk(walk);
    assert_eq!(path[0], a, "walk must start at {a}");
    assert_eq!(*path.last().unwrap(), b, "walk must end at {b}");
    let prev = paths.insert(pair_key(a, b), path);
    debug_assert!(prev.is_none(), "pair ({a},{b}) embedded twice");
}

/// The recursive construction. `verts` must induce a connected subgraph.
/// Returns the lane sequences (possibly with empty slots, filtered by the
/// caller) and records E1 paths.
fn solve(
    g: &Graph,
    rep: &IntervalRep,
    verts: &[VertexId],
    paths: &mut HashMap<PairKey, Vec<VertexId>>,
) -> Vec<Vec<VertexId>> {
    if verts.len() == 1 {
        return vec![vec![verts[0]]];
    }
    let k = restricted_width(rep, verts);
    assert!(k >= 2, "multi-vertex connected subgraphs have width >= 2");

    // v_st minimizes L, v_ed maximizes R.
    let vst = *verts
        .iter()
        .min_by_key(|&&v| (rep.interval(v).lo, v.0))
        .unwrap();
    let ved = *verts
        .iter()
        .max_by_key(|&&v| (rep.interval(v).hi, v.0))
        .unwrap();

    let allowed: HashSet<VertexId> = verts.iter().copied().collect();
    let p_path = if vst == ved {
        vec![vst]
    } else {
        path_within(g, &allowed, vst, ved)
    };
    let pos_in_p: HashMap<VertexId, usize> =
        p_path.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Skeleton sequence S (greedy maximal reach along P).
    let mut s_seq = vec![vst];
    let r_end = rep.interval(ved).hi;
    loop {
        let cur = *s_seq.last().unwrap();
        if rep.interval(cur).hi >= r_end {
            break;
        }
        let cur_pos = pos_in_p[&cur];
        let next = p_path[cur_pos + 1..]
            .iter()
            .filter(|&&u| rep.interval(u).overlaps(&rep.interval(cur)))
            .max_by_key(|&&u| (rep.interval(u).hi, u.0))
            .copied()
            .unwrap_or_else(|| panic!("P disconnected: no successor after {cur}"));
        // Observation 4.7: strict progress.
        assert!(rep.interval(next).hi > rep.interval(cur).hi);
        s_seq.push(next);
    }
    let s_set: HashSet<VertexId> = s_seq.iter().copied().collect();
    let s1: Vec<VertexId> = s_seq.iter().copied().step_by(2).collect();
    let s2: Vec<VertexId> = s_seq.iter().copied().skip(1).step_by(2).collect();
    let s1_set: HashSet<VertexId> = s1.iter().copied().collect();

    // Case 1 paths: consecutive pairs within S1 and S2 via subpaths of P.
    for side in [&s1, &s2] {
        for w in side.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (pa, pb) = (pos_in_p[&a], pos_in_p[&b]);
            let walk: Vec<VertexId> = if pa <= pb {
                p_path[pa..=pb].to_vec()
            } else {
                let mut seg = p_path[pb..=pa].to_vec();
                seg.reverse();
                seg
            };
            record_path(paths, a, b, walk);
        }
    }

    // Components of G − S.
    let rest: HashSet<VertexId> = allowed.difference(&s_set).copied().collect();
    let comps = components_within(g, &rest);

    // Hull interval of each component.
    let hull = |comp: &Vec<VertexId>| -> Interval {
        comp.iter()
            .map(|&v| rep.interval(v))
            .reduce(|a, b| a.hull(&b))
            .unwrap()
    };

    struct CompInfo {
        verts: Vec<VertexId>,
        hull: Interval,
        class: usize,
        side: usize,            // 1 or 2
        attach_inner: VertexId, // u*_C
        attach_s: VertexId,     // v*_C ∈ S_side
        lanes: Vec<Vec<VertexId>>,
    }

    // Lemma 4.10: first-fit classes of interval-disjoint components.
    let mut infos: Vec<CompInfo> = Vec::with_capacity(comps.len());
    {
        let mut comps_sorted = comps;
        comps_sorted.sort_by_key(|c| {
            let h = hull(c);
            (h.lo, h.hi)
        });
        let mut class_last_hi: Vec<u32> = Vec::new();
        for comp in comps_sorted {
            let h = hull(&comp);
            let class = match class_last_hi.iter().position(|&x| x < h.lo) {
                Some(c) => {
                    class_last_hi[c] = h.hi;
                    c
                }
                None => {
                    class_last_hi.push(h.hi);
                    class_last_hi.len() - 1
                }
            };
            // Side: 1 if C attaches to S1, else 2 (must attach to S2).
            let mut attach: Option<(VertexId, VertexId, usize)> = None;
            'search: for &u in &comp {
                for wv in g.neighbors(u) {
                    if s1_set.contains(&wv) {
                        attach = Some((u, wv, 1));
                        break 'search;
                    }
                }
            }
            if attach.is_none() {
                'search2: for &u in &comp {
                    for wv in g.neighbors(u) {
                        if s_set.contains(&wv) && !s1_set.contains(&wv) {
                            attach = Some((u, wv, 2));
                            break 'search2;
                        }
                    }
                }
            }
            let (attach_inner, attach_s, side) =
                attach.expect("connected G: every component attaches to S");
            infos.push(CompInfo {
                verts: comp,
                hull: h,
                class,
                side,
                attach_inner,
                attach_s,
                lanes: Vec::new(),
            });
        }
        assert!(
            class_last_hi.len() <= k.saturating_sub(1),
            "Lemma 4.10 violated: {} classes for width {k}",
            class_last_hi.len()
        );
    }

    // Recurse into each component (Lemma 4.11: width strictly drops).
    for info in &mut infos {
        let kc = restricted_width(rep, &info.verts);
        assert!(kc < k, "Lemma 4.11 violated: component width {kc} >= {k}");
        info.lanes = solve(g, rep, &info.verts, paths);
    }

    // Assemble lanes: S1, S2, then one lane per (class, side, sub-lane).
    let mut lanes: Vec<Vec<VertexId>> = vec![s1, s2];
    let num_classes = infos.iter().map(|i| i.class + 1).max().unwrap_or(0);
    for class in 0..num_classes {
        for side in [1usize, 2] {
            let mut group: Vec<&CompInfo> = infos
                .iter()
                .filter(|i| i.class == class && i.side == side)
                .collect();
            group.sort_by_key(|i| i.hull.lo);
            let max_sub = group.iter().map(|i| i.lanes.len()).max().unwrap_or(0);
            for sub in 0..max_sub {
                let mut lane: Vec<VertexId> = Vec::new();
                let mut prev_tail: Option<(&CompInfo, VertexId)> = None;
                for info in &group {
                    let Some(seg) = info.lanes.get(sub) else {
                        continue;
                    };
                    if seg.is_empty() {
                        continue;
                    }
                    if let Some((prev_info, x)) = prev_tail {
                        // Case 2.2: cross-component junction x → y.
                        let y = seg[0];
                        let set_prev: HashSet<VertexId> = prev_info.verts.iter().copied().collect();
                        let set_cur: HashSet<VertexId> = info.verts.iter().copied().collect();
                        let mut walk = path_within(g, &set_prev, x, prev_info.attach_inner);
                        // Hop to S, ride P, hop back.
                        let (pa, pb) = (pos_in_p[&prev_info.attach_s], pos_in_p[&info.attach_s]);
                        if pa <= pb {
                            walk.extend_from_slice(&p_path[pa..=pb]);
                        } else {
                            walk.extend(p_path[pb..=pa].iter().rev());
                        }
                        walk.extend(path_within(g, &set_cur, info.attach_inner, y));
                        record_path(paths, x, y, walk);
                    }
                    lane.extend_from_slice(seg);
                    prev_tail = Some((info, *seg.last().unwrap()));
                }
                lanes.push(lane);
            }
        }
    }
    lanes.into_iter().filter(|l| !l.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::Completion;
    use lanecert_graph::generators;
    use lanecert_pathwidth::solver;
    use rand::SeedableRng;

    /// Runs the full Proposition 4.6 statement on one graph and checks the
    /// three bounds.
    fn check(g: &Graph) {
        let (pw, pd) = solver::pathwidth_exact(g).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
        let k = rep.width();
        assert_eq!(k, pw + 1);
        let rl = recursive_partition(g, &rep);
        rl.partition.validate(&rep).unwrap();
        let w = rl.partition.lane_count();
        assert!(
            (w as u64) <= bounds::f(k),
            "lanes {w} > f({k}) = {}",
            bounds::f(k)
        );
        let completion = Completion::build(g, rl.partition.clone());
        let emb = embedding_from_paths(g, &completion, &rl.e1_paths);
        emb.validate(g, &completion);
        // Weak-completion congestion ≤ g(k).
        let e1_edges: Vec<_> = completion
            .virtual_edges()
            .filter(|e| completion.roles[e.index()].lane_step.is_some())
            .collect();
        let weak = emb.congestion_of(&completion_graph_base(g), &e1_edges);
        assert!(
            (weak as u64) <= bounds::g(k),
            "weak congestion {weak} > g({k}) = {}",
            bounds::g(k)
        );
        let full = emb.congestion(g);
        assert!(
            (full as u64) <= bounds::h(k),
            "congestion {full} > h({k}) = {}",
            bounds::h(k)
        );
    }

    // congestion_of takes the original graph; alias for readability.
    fn completion_graph_base(g: &Graph) -> Graph {
        g.clone()
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let rep = IntervalRep::new(vec![Interval::new(0, 0)]);
        let rl = recursive_partition(&g, &rep);
        assert_eq!(rl.partition.lane_count(), 1);
        assert!(rl.e1_paths.is_empty());
    }

    #[test]
    fn paths_and_cycles() {
        check(&generators::path_graph(2));
        check(&generators::path_graph(9));
        check(&generators::cycle_graph(3));
        check(&generators::cycle_graph(12));
    }

    #[test]
    fn stars_caterpillars_ladders() {
        check(&generators::star(8));
        check(&generators::caterpillar(4, 2));
        check(&generators::ladder(6));
        check(&generators::grid(3, 4));
    }

    #[test]
    fn random_pathwidth_graphs_respect_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for k in 1..=3 {
            for _ in 0..8 {
                let (g, _) = generators::random_pathwidth_graph(14, k, 0.5, &mut rng);
                check(&g);
            }
        }
    }

    #[test]
    fn random_trees_respect_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        for _ in 0..10 {
            let g = generators::random_tree(15, &mut rng);
            check(&g);
        }
    }

    #[test]
    fn simplify_walk_removes_loops() {
        let w: Vec<VertexId> = [0, 1, 2, 1, 3].iter().map(|&i| VertexId(i)).collect();
        assert_eq!(
            simplify_walk(w),
            vec![VertexId(0), VertexId(1), VertexId(3)]
        );
        let w2: Vec<VertexId> = [5].iter().map(|&i| VertexId(i)).collect();
        assert_eq!(simplify_walk(w2), vec![VertexId(5)]);
    }

    #[test]
    #[should_panic(expected = "requires a connected graph")]
    fn rejects_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let rep = IntervalRep::new(vec![
            Interval::new(0, 1),
            Interval::new(1, 2),
            Interval::new(5, 6),
            Interval::new(6, 7),
        ]);
        let _ = recursive_partition(&g, &rep);
    }
}
