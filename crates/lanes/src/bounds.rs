//! The bound functions `f`, `g`, `h` of Proposition 4.6.
//!
//! * `f(k)` bounds the number of lanes the recursive partition produces,
//! * `g(k)` bounds the congestion of embedding the *weak completion*,
//! * `h(k) = g(k) + f(k) − 1` bounds the congestion of the full completion.

/// Lane bound `f(k)`: `f(1) = 1`, `f(k) = 2 + 2(k−1)·f(k−1)`.
///
/// # Panics
///
/// Panics if `k == 0` or the value overflows `u64` (k ≳ 20).
pub fn f(k: usize) -> u64 {
    assert!(k >= 1, "f is defined for k >= 1");
    if k == 1 {
        1
    } else {
        2 + 2 * (k as u64 - 1) * f(k - 1)
    }
}

/// Weak-completion congestion bound `g(k)`: `g(1) = 0`,
/// `g(k) = 2 + g(k−1) + 2k·f(k−1)`.
///
/// # Panics
///
/// Panics if `k == 0` or the value overflows.
pub fn g(k: usize) -> u64 {
    assert!(k >= 1, "g is defined for k >= 1");
    if k == 1 {
        0
    } else {
        2 + g(k - 1) + 2 * (k as u64) * f(k - 1)
    }
}

/// Completion congestion bound `h(k) = g(k) + f(k) − 1`.
pub fn h(k: usize) -> u64 {
    g(k) + f(k) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(f(1), 1);
        assert_eq!(f(2), 4);
        assert_eq!(f(3), 18);
        assert_eq!(f(4), 110);
        assert_eq!(g(1), 0);
        assert_eq!(g(2), 6); // 2 + 0 + 4*1
        assert_eq!(g(3), 32); // 2 + 6 + 6*4
        assert_eq!(h(1), 0);
        assert_eq!(h(2), 9);
        assert_eq!(h(3), 49);
    }

    #[test]
    fn monotone() {
        for k in 1..8 {
            assert!(f(k + 1) > f(k));
            assert!(g(k + 1) > g(k));
            assert!(h(k + 1) > h(k));
        }
    }
}
