//! The end-to-end layout pipeline: graph + interval representation →
//! lane partition → completion → embedding → construction → hierarchy.
//!
//! This is the prover-side machinery of Theorem 1 packaged as one call;
//! the certification crate (`lanecert`) builds labels from a [`Layout`].

use lanecert_graph::Graph;
use lanecert_pathwidth::IntervalRep;

use crate::{
    build_hierarchy, completion::Completion, embedding, partition, recursive, BuiltConstruction,
    Construction, Embedding, Hierarchy,
};

/// Which lane-partition strategy to use (the T9 ablation).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaneStrategy {
    /// Greedy first-fit colouring (Observation 4.3): uses exactly
    /// `width(I)` lanes, so an accepted certificate witnesses
    /// `pathwidth ≤ width(I) − 1`; embedding paths are BFS-shortest with no
    /// worst-case congestion bound.
    Greedy,
    /// The Proposition 4.6 recursion: at most `f(width)` lanes and measured
    /// congestion at most `g(width)` / `h(width)`.
    Recursive,
}

/// Everything the prover derives from `(G, I)`.
#[derive(Clone, Debug)]
pub struct Layout {
    /// The completion `G'` and the partition inside it.
    pub completion: Completion,
    /// Embedding of the virtual completion edges into `G`.
    pub embedding: Embedding,
    /// The lanewidth construction recovered via Proposition 5.2.
    pub construction: BuiltConstruction,
    /// The hierarchical decomposition (Proposition 5.6).
    pub hierarchy: Hierarchy,
    /// The strategy that produced the partition.
    pub strategy: LaneStrategy,
}

impl Layout {
    /// Runs the full pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or `rep` is not a valid interval
    /// representation of `g` — callers (the prover) validate both upfront
    /// and refuse to certify instead.
    pub fn build(g: &Graph, rep: &IntervalRep, strategy: LaneStrategy) -> Layout {
        rep.validate(g).expect("invalid interval representation");
        assert!(
            lanecert_graph::components::is_connected(g),
            "proof labeling schemes run on connected networks"
        );
        let (part, e1_paths) = match strategy {
            LaneStrategy::Greedy => (partition::greedy_partition(rep), None),
            LaneStrategy::Recursive => {
                let rl = recursive::recursive_partition(g, rep);
                (rl.partition, Some(rl.e1_paths))
            }
        };
        let part = partition::ensure_two_lanes(part);
        let completion = Completion::build(g, part);
        let embedding = match e1_paths {
            // The `ensure_two_lanes` normalization may have introduced new
            // consecutive pairs, so fall back to BFS paths when it fired.
            Some(paths)
                if completion.virtual_edges().all(|e| {
                    let (u, v) = completion.graph.endpoints(e);
                    completion.roles[e.index()].head_link.is_some()
                        || paths.contains_key(&recursive::pair_key(u, v))
                }) =>
            {
                recursive::embedding_from_paths(g, &completion, &paths)
            }
            _ => embedding::shortest_path_embedding(g, &completion),
        };
        embedding.validate(g, &completion);
        let construction = Construction::from_completion(&completion, rep)
            .build()
            .expect("Proposition 5.2 conversion is well-formed");
        let hierarchy = build_hierarchy(&construction);
        Layout {
            completion,
            embedding,
            construction,
            hierarchy,
            strategy,
        }
    }

    /// Number of lanes `w` in the layout.
    pub fn lane_count(&self) -> usize {
        self.completion.partition.lane_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;
    use lanecert_pathwidth::solver;
    use rand::SeedableRng;

    fn rep_of(g: &Graph) -> IntervalRep {
        let (_, pd) = solver::pathwidth_exact(g).unwrap();
        IntervalRep::from_decomposition(&pd, g.vertex_count())
    }

    #[test]
    fn both_strategies_build_and_validate() {
        for g in [
            generators::path_graph(8),
            generators::cycle_graph(7),
            generators::caterpillar(3, 2),
            generators::ladder(4),
        ] {
            let rep = rep_of(&g);
            for strat in [LaneStrategy::Greedy, LaneStrategy::Recursive] {
                let layout = Layout::build(&g, &rep, strat);
                layout.hierarchy.validate(&layout.construction);
                // The construction graph is exactly the completion graph.
                assert_eq!(
                    layout.construction.graph.edge_count(),
                    layout.completion.graph.edge_count()
                );
                assert!(layout.lane_count() >= 2 || g.vertex_count() == 1);
            }
        }
    }

    #[test]
    fn greedy_lane_count_equals_width() {
        let g = generators::cycle_graph(9);
        let rep = rep_of(&g);
        let layout = Layout::build(&g, &rep, LaneStrategy::Greedy);
        assert_eq!(layout.lane_count(), rep.width());
    }

    #[test]
    fn random_graphs_both_strategies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for k in 1..=2 {
            for _ in 0..5 {
                let (g, _) = generators::random_pathwidth_graph(12, k, 0.5, &mut rng);
                let rep = rep_of(&g);
                for strat in [LaneStrategy::Greedy, LaneStrategy::Recursive] {
                    let layout = Layout::build(&g, &rep, strat);
                    layout.hierarchy.validate(&layout.construction);
                }
            }
        }
    }
}
