//! Proposition 2.1: turning an `f(n)`-bit edge-labeling scheme into an
//! `O(d · f(n))`-bit vertex-labeling scheme along a bounded-outdegree
//! acyclic orientation, in the **port-numbering model**.
//!
//! Each vertex stores, per out-edge, a claim `(port, owner id, other id,
//! label bytes)`. A vertex inspects, for each of its ports, its own claim
//! for that port together with the claims *targeting it* inside the label
//! received on that port, and requires **exactly one** claim per port. This
//! two-sided discipline makes fabricating or hiding edges locally
//! detectable (see DESIGN.md for the discussion of why the bare id-matching
//! reconstruction is not sound without ports).

use lanecert_graph::{degeneracy, VertexId};

use crate::bits::{self, BitReader, BitWriter, Enc};
use crate::scheme::{Verdict, VertexView};
use crate::Configuration;

/// One out-edge claim inside a vertex label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeClaim {
    /// The owner's local port of this edge.
    pub port: u16,
    /// The owner's identifier.
    pub owner: u64,
    /// The other endpoint's identifier.
    pub other: u64,
    /// The encoded edge label.
    pub payload: Vec<u8>,
}

/// A vertex label: claims for every out-edge of the orientation.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VertexLabel {
    /// Out-edge claims.
    pub claims: Vec<EdgeClaim>,
}

impl Enc for EdgeClaim {
    fn enc(&self, w: &mut BitWriter) {
        self.port.enc(w);
        self.owner.enc(w);
        self.other.enc(w);
        self.payload.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            port: Enc::dec(r)?,
            owner: Enc::dec(r)?,
            other: Enc::dec(r)?,
            payload: Enc::dec(r)?,
        })
    }
}

impl Enc for VertexLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.claims.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            claims: Enc::dec(r)?,
        })
    }
}

/// Moves edge labels onto vertices along a degeneracy orientation
/// (Proposition 2.1, prover side).
pub fn edge_to_vertex_labels<L: Enc>(cfg: &Configuration, edge_labels: &[L]) -> Vec<VertexLabel> {
    let g = cfg.graph();
    let orientation = degeneracy::degeneracy_orientation(g);
    let mut out = vec![VertexLabel::default(); g.vertex_count()];
    for v in g.vertices() {
        for (port, half) in g.incident(v).iter().enumerate() {
            if orientation.tail[half.edge.index()] == v {
                let (bytes, _) = bits::encode(&edge_labels[half.edge.index()]);
                out[v.index()].claims.push(EdgeClaim {
                    port: port as u16,
                    owner: cfg.id_of(v),
                    other: cfg.id_of(half.to),
                    payload: bytes,
                });
            }
        }
    }
    out
}

/// Reconstructs a vertex's incident edge labels from its own claims plus
/// the claims targeting it in its neighbours' labels (port model), then
/// hands the reconstructed edge view to `verify_edges`.
///
/// The harness supplies neighbour labels in port order, which is exactly
/// the information the port-numbering model grants.
pub fn verify_vertex_at<L: Enc, F>(
    cfg: &Configuration,
    v: VertexId,
    own: &VertexLabel,
    neighbor_labels: &[Option<VertexLabel>],
    verify_edges: F,
) -> Verdict
where
    F: FnOnce(&VertexView<L>) -> Verdict,
{
    let my_id = cfg.id_of(v);
    let deg = neighbor_labels.len();
    let mut incident: Vec<Option<L>> = Vec::with_capacity(deg);
    for (port, neighbor_label) in neighbor_labels.iter().enumerate() {
        // Claims from my side for this port.
        let mine: Vec<&EdgeClaim> = own
            .claims
            .iter()
            .filter(|c| c.port as usize == port)
            .collect();
        // Claims from the neighbour on this port targeting me.
        let theirs: Vec<&EdgeClaim> = match neighbor_label {
            Some(l) => l.claims.iter().filter(|c| c.other == my_id).collect(),
            None => return Verdict::reject("undecodable neighbour label"),
        };
        // NOTE: a neighbour with several edges to distinct same-id targets
        // cannot exist (ids are unique), so `theirs` has at most one honest
        // entry for the shared edge.
        match (mine.len(), theirs.len()) {
            (1, 0) => {
                if mine[0].owner != my_id {
                    return Verdict::reject("own claim with foreign owner");
                }
                match bits::decode::<L>(&mine[0].payload) {
                    Some(l) => incident.push(Some(l)),
                    None => return Verdict::reject("undecodable edge payload"),
                }
            }
            (0, 1) => match bits::decode::<L>(&theirs[0].payload) {
                Some(l) => incident.push(Some(l)),
                None => return Verdict::reject("undecodable edge payload"),
            },
            _ => return Verdict::reject("port does not carry exactly one claim"),
        }
    }
    let incident: Vec<Option<&L>> = incident.iter().map(Option::as_ref).collect();
    verify_edges(&VertexView {
        id: my_id,
        incident: &incident,
    })
}

/// Runs a vertex-label scheme end to end: measures vertex label sizes and
/// applies the port-model reconstruction + the edge verifier at every
/// vertex.
///
/// # Errors
///
/// [`crate::CertError::LabelCountMismatch`] if `vertex_labels` does not
/// have one label per vertex — adversarial truncations surface as an
/// error, never a panic.
pub fn run_vertex_scheme<L: Enc, F>(
    cfg: &Configuration,
    vertex_labels: &[VertexLabel],
    verify_edges: F,
) -> Result<crate::scheme::RunReport, crate::CertError>
where
    F: Fn(&VertexView<L>) -> Verdict,
{
    let g = cfg.graph();
    if vertex_labels.len() != g.vertex_count() {
        return Err(crate::CertError::LabelCountMismatch {
            expected: g.vertex_count(),
            got: vertex_labels.len(),
        });
    }
    let decoded: Vec<Option<VertexLabel>> = vertex_labels
        .iter()
        .map(|l| {
            let (bytes, _) = bits::encode(l);
            bits::decode::<VertexLabel>(&bytes)
        })
        .collect();
    let mut max_bits = 0;
    let mut total_bits = 0;
    for l in vertex_labels {
        let (_, bits_len) = bits::encode(l);
        max_bits = max_bits.max(bits_len);
        total_bits += bits_len;
    }
    let verdicts = g
        .vertices()
        .map(|v| {
            let Some(own) = decoded[v.index()].clone() else {
                return Verdict::reject("undecodable own label");
            };
            let neighbors: Vec<Option<VertexLabel>> = g
                .incident(v)
                .iter()
                .map(|h| decoded[h.to.index()].clone())
                .collect();
            verify_vertex_at(cfg, v, &own, &neighbors, |view| verify_edges(view))
        })
        .collect();
    Ok(crate::scheme::RunReport {
        verdicts,
        max_label_bits: max_bits,
        total_label_bits: total_bits,
        // Labels live on vertices here, so the report's labeled-object
        // count (and avg_label_bits denominator) is the vertex count.
        edges: vertex_labels.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointer;
    use lanecert_graph::generators;

    #[test]
    fn pointer_scheme_survives_the_transform() {
        let cfg = Configuration::with_random_ids(generators::grid(3, 4), 8);
        let target = cfg.id_of(VertexId(5));
        let edge_labels = pointer::prove(&cfg, target);
        let vertex_labels = edge_to_vertex_labels(&cfg, &edge_labels);
        let report = run_vertex_scheme(&cfg, &vertex_labels, pointer::verify_at).unwrap();
        assert!(report.accepted(), "{:?}", report.first_rejection());
    }

    #[test]
    fn hiding_an_edge_is_detected() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(6));
        let edge_labels = pointer::prove(&cfg, 0);
        let mut vertex_labels = edge_to_vertex_labels(&cfg, &edge_labels);
        // Remove one claim: some port loses its unique claim.
        let victim = vertex_labels
            .iter_mut()
            .find(|l| !l.claims.is_empty())
            .unwrap();
        victim.claims.pop();
        let report = run_vertex_scheme(&cfg, &vertex_labels, pointer::verify_at).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn fabricating_an_edge_is_detected() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(6));
        let edge_labels = pointer::prove(&cfg, 0);
        let mut vertex_labels = edge_to_vertex_labels(&cfg, &edge_labels);
        // Duplicate a claim on the same port: double-claimed port.
        let victim = vertex_labels
            .iter_mut()
            .find(|l| !l.claims.is_empty())
            .unwrap();
        let extra = victim.claims[0].clone();
        victim.claims.push(extra);
        let report = run_vertex_scheme(&cfg, &vertex_labels, pointer::verify_at).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn truncated_vertex_labeling_is_an_error_not_a_panic() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(6));
        let edge_labels = pointer::prove(&cfg, 0);
        let mut vertex_labels = edge_to_vertex_labels(&cfg, &edge_labels);
        vertex_labels.pop();
        let err =
            run_vertex_scheme::<pointer::PointerLabel, _>(&cfg, &vertex_labels, pointer::verify_at)
                .unwrap_err();
        assert_eq!(
            err,
            crate::CertError::LabelCountMismatch {
                expected: 6,
                got: 5
            }
        );
    }

    #[test]
    fn vertex_labels_stay_small_on_sparse_graphs() {
        let cfg = Configuration::with_sequential_ids(generators::caterpillar(30, 2));
        let edge_labels = pointer::prove(&cfg, 0);
        let vertex_labels = edge_to_vertex_labels(&cfg, &edge_labels);
        let report = run_vertex_scheme(&cfg, &vertex_labels, pointer::verify_at).unwrap();
        assert!(report.accepted());
        // 1-degenerate graph: at most one claim per vertex.
        assert!(vertex_labels.iter().all(|l| l.claims.len() <= 1));
    }
}
