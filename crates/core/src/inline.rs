//! A fixed-inline-capacity vector for the certificate hot path.
//!
//! Labels and interface summaries are built out of many very short
//! sequences — lane/terminal pairs (≤ `max_lanes` entries, usually ≤ 4),
//! slot-id lists, per-lane path ids. Decoding and re-summarizing them
//! during verification is the memory-bound core of a shard, and a heap
//! allocation per two-entry `Vec` was most of its cost. [`InlineVec`]
//! stores the first `N` elements in the struct itself and only touches
//! the heap past that, so the common case decodes and clones with zero
//! allocations while arbitrarily long sequences still work.
//!
//! Only `Copy + Default` element types are supported — that keeps the
//! implementation entirely safe (no `MaybeUninit`), and every hot-path
//! element type (`(u8, u64)`, `(usize, u64)`, `u64`, `bool`) qualifies.

/// A vector with inline storage for up to `N` elements and heap spill
/// beyond. Derefs to a slice; equality/ordering/hashing follow the slice,
/// so whether a value has spilled is unobservable.
#[derive(Clone, Debug)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Total number of elements.
    len: u32,
    /// First `len` elements when `spill` is empty.
    inline: [T; N],
    /// All `len` elements once the inline array has overflowed.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// The empty vector.
    pub fn new() -> Self {
        Self {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        let l = self.len as usize;
        if self.spill.is_empty() && l < N {
            self.inline[l] = value;
        } else {
            if self.spill.is_empty() {
                // First overflow: move the inline prefix to the heap.
                self.spill.reserve(l + 1);
                self.spill.extend_from_slice(&self.inline[..l]);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Inserts an element at `index`, shifting the tail right.
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(index <= self.len as usize);
        self.push(value);
        self.as_mut_slice()[index..].rotate_right(1);
    }

    /// Removes and returns the element at `index`, shifting the tail left.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn remove(&mut self, index: usize) -> T {
        let slice = self.as_mut_slice();
        let value = slice[index];
        slice[index..].rotate_left(1);
        self.spill.pop();
        self.len -= 1;
        value
    }

    /// Iterates the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + std::hash::Hash, const N: usize> std::hash::Hash for InlineVec<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Slice hashing (length-prefixed) so spill state is unobservable.
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

impl<T: Copy + Default, const N: usize, const M: usize> From<[T; M]> for InlineVec<T, N> {
    fn from(arr: [T; M]) -> Self {
        arr.into_iter().collect()
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for InlineVec<T, N> {
    fn from(slice: &[T]) -> Self {
        slice.iter().copied().collect()
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(vec: Vec<T>) -> Self {
        vec.into_iter().collect()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A scratch list with inline storage for up to `N` elements and heap
/// spill beyond, for element types that [`InlineVec`] cannot hold —
/// references and owning structs without `Copy + Default` (certificate
/// borrows, summaries). The inline slots are `Option<T>`, which keeps the
/// implementation entirely safe at the cost of contiguity: elements are
/// reached through [`ScratchBuf::get`]/[`ScratchBuf::iter`], not a slice.
///
/// Verification builds several such lists per vertex (incident
/// certificates, transit records, per-member groups); keeping the common
/// short case inline is what holds the verify path near the decode-side
/// allocation floor.
#[derive(Debug)]
pub struct ScratchBuf<T, const N: usize> {
    /// Total number of elements.
    len: usize,
    /// Slots `0..min(len, N)` are `Some`.
    inline: [Option<T>; N],
    /// Elements `N..len`, in order.
    spill: Vec<T>,
}

impl<T, const N: usize> ScratchBuf<T, N> {
    /// The empty list.
    pub fn new() -> Self {
        Self {
            len: 0,
            inline: std::array::from_fn(|_| None),
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element. Allocation-free while `len < N`.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Returns the element at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// The first element.
    pub fn first(&self) -> Option<&T> {
        self.get(0)
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline
            .iter()
            .take(self.len.min(N))
            .flatten()
            .chain(self.spill.iter())
    }
}

impl<T, const N: usize> Default for ScratchBuf<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u64, 4>;

    #[test]
    fn inline_then_spill() {
        let mut v = V::new();
        assert!(v.is_empty());
        for i in 0..10 {
            v.push(i);
            assert_eq!(v.len(), i as usize + 1);
        }
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    // Randomized hashing is the point here: equal values must hash equal
    // under any hasher, so a per-process random one is the strongest probe.
    #[allow(clippy::disallowed_types)]
    fn equality_ignores_spill_state() {
        use std::hash::{BuildHasher, RandomState};
        // Build [0..6) two ways: grown past the boundary, and shrunk back
        // under it (stays spilled).
        let grown: V = (0..6).collect();
        let mut shrunk: V = (0..8).collect();
        shrunk.remove(7);
        shrunk.remove(6);
        assert_eq!(grown, shrunk);
        let s = RandomState::new();
        assert_eq!(s.hash_one(&grown), s.hash_one(&shrunk));
    }

    #[test]
    fn insert_remove_both_sides_of_boundary() {
        let mut v: V = [1u64, 3].into();
        v.insert(1, 2); // inline
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        v.insert(3, 5);
        v.insert(3, 4); // spills
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(v.remove(0), 1);
        assert_eq!(v.as_slice(), &[2, 3, 4, 5]);
        let mut w: V = [7u64, 8].into();
        assert_eq!(w.remove(1), 8);
        assert_eq!(w.as_slice(), &[7]);
    }

    #[test]
    fn push_after_shrinking_spilled_vec() {
        let mut v: V = (0..5).collect();
        while !v.is_empty() {
            v.remove(0);
        }
        // Spill is drained; pushes go inline again and stay coherent.
        v.push(42);
        assert_eq!(v.as_slice(), &[42]);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut v: V = [9u64, 1, 5].into();
        v.sort_unstable();
        assert_eq!(v.binary_search(&5), Ok(1));
        v[0] = 0;
        assert_eq!(v.as_slice(), &[0, 5, 9]);
    }

    #[test]
    fn scratch_buf_inline_then_spill() {
        // Non-Copy, non-Default elements are the whole point.
        let mut b: ScratchBuf<String, 2> = ScratchBuf::new();
        assert!(b.is_empty());
        assert_eq!(b.first(), None);
        for i in 0..5 {
            b.push(i.to_string());
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.first().map(String::as_str), Some("0"));
        assert_eq!(b.get(1).map(String::as_str), Some("1"));
        assert_eq!(b.get(2).map(String::as_str), Some("2")); // first spilled
        assert_eq!(b.get(4).map(String::as_str), Some("4"));
        assert_eq!(b.get(5), None);
        let joined: Vec<&str> = b.iter().map(String::as_str).collect();
        assert_eq!(joined, ["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn scratch_buf_holds_references() {
        let owned = [10u64, 20, 30];
        let mut b: ScratchBuf<&u64, 2> = ScratchBuf::new();
        for v in &owned {
            b.push(v);
        }
        assert_eq!(b.iter().map(|&&v| v).sum::<u64>(), 60);
        assert_eq!(b.get(2), Some(&&owned[2]));
    }
}
