//! The unified proof-labeling-scheme API: the [`Scheme`] trait plus the
//! shared edge-labeling harness.
//!
//! Labels live on edges (the paper's working model, Section 2.1). A
//! scheme's prover maps a [`Configuration`] (plus an optional
//! [`ProverHint`]) to a [`Labeling`]; its verifier runs per vertex over a
//! [`VertexView`] — the vertex's identifier and the **decoded** labels of
//! its incident edges (each label is round-tripped through the bit
//! encoding, so malformed labels surface as decode failures). The harness
//! aggregates verdicts and label-size statistics into a [`RunReport`].
//!
//! Every concrete scheme (Theorem 1, the FMR+24-style baseline, the 1-bit
//! bipartiteness scheme, the whole-graph yardstick) implements [`Scheme`];
//! the erased layer ([`crate::erased`]), registry ([`crate::registry`]),
//! builder ([`crate::certifier`]) and batch runner ([`crate::batch`]) are
//! built on top of this trait.

use std::borrow::Cow;
use std::ops::{Deref, DerefMut};

use lanecert_graph::EdgeId;
use lanecert_pathwidth::{bnb, solver, Interval, IntervalRep};

use crate::bits::{self, Enc};
use crate::{CertError, Configuration};

/// A per-vertex verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The vertex accepts.
    Accept,
    /// The vertex rejects, with a diagnostic reason (not part of the
    /// model's output — used by tests and experiments).
    Reject(String),
}

impl Verdict {
    /// Convenience constructor for rejections.
    pub fn reject(reason: impl Into<String>) -> Self {
        Verdict::Reject(reason.into())
    }

    /// Returns `true` for [`Verdict::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// What a vertex sees: its own identifier plus the labels on its incident
/// edges (decoded; `None` marks an undecodable label).
///
/// The view **borrows** the decoded labels: `incident` is a slice of
/// references into a decode arena owned by the harness, which decodes each
/// edge label once and then serves both endpoints from the same allocation.
/// Verifiers therefore never trigger label clones, and the harness reuses
/// one scratch slice across the whole vertex loop (see
/// [`crate::DynScheme::verify_encoded_range`] for the hot-path invariants).
#[derive(Copy, Clone, Debug)]
pub struct VertexView<'a, L> {
    /// This vertex's identifier.
    pub id: u64,
    /// For each incident edge: the decoded label (no neighbour identity is
    /// revealed — only the label contents, per the model). `None` marks an
    /// undecodable label.
    pub incident: &'a [Option<&'a L>],
}

impl<L> VertexView<'_, L> {
    /// The vertex's degree (number of incident edges).
    pub fn degree(&self) -> usize {
        self.incident.len()
    }
}

/// The outcome of running a scheme on a configuration.
///
/// `PartialEq`/`Eq` compare every field, so two reports are equal exactly
/// when they are bit-identical — the invariant the parallel engine's
/// parity suite checks against the sequential path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Per-vertex verdicts (indexed by vertex).
    pub verdicts: Vec<Verdict>,
    /// Maximum encoded label size in bits.
    pub max_label_bits: usize,
    /// Total encoded label bits across all edges.
    pub total_label_bits: usize,
    /// Number of labeled objects in the configuration — edges for edge
    /// schemes, vertices for the Proposition 2.1 vertex transform —
    /// folded into the report so size averages cannot be computed against
    /// the wrong denominator.
    pub edges: usize,
}

impl RunReport {
    /// Returns `true` if every vertex accepted.
    pub fn accepted(&self) -> bool {
        self.verdicts.iter().all(Verdict::is_accept)
    }

    /// Number of rejecting vertices.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|v| !v.is_accept()).count()
    }

    /// First rejection reason, if any (diagnostics).
    pub fn first_rejection(&self) -> Option<&str> {
        self.verdicts.iter().find_map(|v| match v {
            Verdict::Reject(r) => Some(r.as_str()),
            Verdict::Accept => None,
        })
    }

    /// Average label size in bits per labeled object (see
    /// [`RunReport::edges`]).
    pub fn avg_label_bits(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.total_label_bits as f64 / self.edges as f64
        }
    }
}

/// An assignment of one label per edge of a configuration — the prover's
/// output. Derefs to a slice for read access; [`Labeling::as_mut_slice`]
/// and index-mutation support adversarial tampering in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Labeling<L> {
    labels: Vec<L>,
}

impl<L> Labeling<L> {
    /// Wraps per-edge labels (`labels[e]` belongs to edge `e`).
    pub fn new(labels: Vec<L>) -> Self {
        Self { labels }
    }

    /// The labels as a slice.
    pub fn as_slice(&self) -> &[L] {
        &self.labels
    }

    /// Mutable access for adversarial tampering.
    pub fn as_mut_slice(&mut self) -> &mut [L] {
        &mut self.labels
    }

    /// Consumes the labeling, returning the raw vector.
    pub fn into_vec(self) -> Vec<L> {
        self.labels
    }
}

impl<L> From<Vec<L>> for Labeling<L> {
    fn from(labels: Vec<L>) -> Self {
        Self::new(labels)
    }
}

impl<L> Deref for Labeling<L> {
    type Target = [L];
    fn deref(&self) -> &[L] {
        &self.labels
    }
}

impl<L> DerefMut for Labeling<L> {
    fn deref_mut(&mut self) -> &mut [L] {
        &mut self.labels
    }
}

/// Auxiliary input for the (centralized, computationally unbounded in the
/// model; polynomial here) honest prover.
///
/// The Theorem 1 scheme and the baseline need an interval representation
/// of the network. [`ProverHint::auto`] lets the prover compute one: an
/// optimal one with the exact solver on small graphs, and a
/// branch-and-bound result ([`lanecert_pathwidth::bnb::pathwidth_bnb`],
/// exact when its budget suffices, the heuristic seed otherwise) up to
/// [`AUTO_HEURISTIC_LIMIT`] vertices. [`ProverHint::with_representation`]
/// supplies a known one, e.g. from the generator of a benchmark family,
/// which is how experiments scale past the derivation limits. Schemes that
/// need no decomposition (the 1-bit and whole-graph schemes) ignore the
/// hint.
#[derive(Clone, Debug, Default)]
pub struct ProverHint {
    rep: Option<IntervalRep>,
    heuristic_limit: Option<usize>,
}

impl ProverHint {
    /// No hint: provers that need a representation compute one.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Supplies a known interval representation.
    pub fn with_representation(rep: IntervalRep) -> Self {
        Self {
            rep: Some(rep),
            heuristic_limit: None,
        }
    }

    /// The supplied representation, if any.
    pub fn representation(&self) -> Option<&IntervalRep> {
        self.rep.as_ref()
    }

    /// Overrides the vertex-count ceiling for the branch-and-bound
    /// solver fallback of [`ProverHint::resolve`] (default
    /// [`AUTO_HEURISTIC_LIMIT`]). Raising it trades prover latency on
    /// hintless jobs for coverage; lowering it makes
    /// [`CertError::NeedRepresentation`] fire earlier. Also settable
    /// fleet-wide through `CertifierBuilder::heuristic_limit` and
    /// `EngineBuilder::heuristic_limit`.
    pub fn heuristic_limit(mut self, limit: usize) -> Self {
        self.heuristic_limit = Some(limit);
        self
    }

    /// The effective heuristic ceiling ([`AUTO_HEURISTIC_LIMIT`] unless
    /// overridden).
    pub fn effective_heuristic_limit(&self) -> usize {
        self.heuristic_limit.unwrap_or(AUTO_HEURISTIC_LIMIT)
    }

    /// Resolves an interval representation for `cfg`: the supplied one if
    /// present (validated against the graph, so a stale or wrong-graph
    /// hint is an error rather than a downstream panic — provers may use
    /// the result without re-validating), otherwise a derived one — an
    /// optimal one from the exact pathwidth solver when the graph fits its
    /// limit, then the branch-and-bound solver
    /// ([`lanecert_pathwidth::bnb::pathwidth_bnb`], seeded and budget-capped
    /// by the beam heuristic) up to [`AUTO_HEURISTIC_LIMIT`] vertices. The
    /// derived decomposition is an upper bound when the solver's budget
    /// runs out before proving optimality — the verifier's lane bound may
    /// still refuse it in that case. Borrows the supplied representation
    /// instead of cloning it.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidSpec`] when the supplied representation does
    /// not fit `cfg`; [`CertError::NeedRepresentation`] when no
    /// representation was supplied and the graph exceeds
    /// [`AUTO_HEURISTIC_LIMIT`].
    pub fn resolve(&self, cfg: &Configuration) -> Result<Cow<'_, IntervalRep>, CertError> {
        if let Some(rep) = &self.rep {
            check_rep_fits(rep, cfg)?;
            return Ok(Cow::Borrowed(rep));
        }
        if cfg.n() <= 1 {
            return Ok(Cow::Owned(IntervalRep::new(vec![
                Interval::new(0, 0);
                cfg.n()
            ])));
        }
        let pd = match solver::pathwidth_exact(cfg.graph()) {
            Ok((_, pd)) => pd,
            Err(_) if cfg.n() <= self.effective_heuristic_limit() => {
                bnb::pathwidth_bnb(cfg.graph(), &bnb::BnbOptions::for_auto(cfg.n())).decomposition
            }
            Err(_) => return Err(CertError::NeedRepresentation),
        };
        Ok(Cow::Owned(IntervalRep::from_decomposition(&pd, cfg.n())))
    }
}

/// Default ceiling on the vertex count for which [`ProverHint::resolve`]
/// derives a decomposition itself (exact solver below its own limit, the
/// budgeted branch-and-bound solver beyond). The solver's work budget is
/// deterministic and shrinks with instance size
/// ([`lanecert_pathwidth::bnb::BnbOptions::for_auto`]), so a missing hint
/// costs a bounded, size-aware amount of prover time instead of a stall —
/// which is what lets this ceiling sit at tens of thousands of vertices
/// where the pre-B&B cubic heuristic capped it at 256. Override per hint
/// with [`ProverHint::heuristic_limit`], per pipeline with
/// `CertifierBuilder::heuristic_limit` / `EngineBuilder::heuristic_limit`.
pub const AUTO_HEURISTIC_LIMIT: usize = 32_768;

/// Deterministic (within one build) digest of a scheme name — the
/// default [`Scheme::fingerprint`].
pub(crate) fn stable_name_fingerprint(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    "lanecert-scheme".hash(&mut h);
    name.hash(&mut h);
    h.finish()
}

/// Validates a caller-supplied interval representation against a
/// configuration, mapping a mismatch to the API's typed error (shared by
/// [`ProverHint::resolve`] and the schemes' typed `prove_with_rep`
/// helpers, so wording and semantics stay in sync).
pub(crate) fn check_rep_fits(rep: &IntervalRep, cfg: &Configuration) -> Result<(), CertError> {
    rep.validate(cfg.graph()).map_err(|e| {
        CertError::InvalidSpec(format!("hint representation does not fit the graph: {e}"))
    })
}

/// A proof labeling scheme: an honest prover and a per-vertex verifier
/// over one typed label format.
///
/// Completeness: `prove` succeeds exactly on yes-instances, and its output
/// passed through [`Scheme::run`] is accepted at every vertex. Soundness:
/// for a no-instance, *no* labeling (however adversarial) is accepted at
/// every vertex. Label sizes are measured in bits of the wire encoding
/// ([`crate::bits`]).
pub trait Scheme {
    /// The per-edge label format. Labels are plain wire data; the
    /// `Send + Sync` bounds let the erased layer shard verification across
    /// threads ([`DynScheme::par_verify_encoded`](crate::DynScheme)).
    type Label: Enc + Clone + Send + Sync;

    /// Registry/display name of the scheme instance.
    fn name(&self) -> String;

    /// Honest certificate assignment.
    ///
    /// # Errors
    ///
    /// Prover refusals and hint failures; see [`CertError`].
    fn prove(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<Labeling<Self::Label>, CertError>;

    /// The local verification algorithm at one vertex. The view borrows
    /// its labels from the harness's decode arena (see [`VertexView`]).
    fn verify_at(&self, view: &VertexView<'_, Self::Label>) -> Verdict;

    /// A digest of everything the meaning of this scheme's wire labels
    /// depends on. Schemes whose labels reference a canonical algebra
    /// table (the Theorem 1 scheme) fold the table's fingerprint in; the
    /// default is a digest of the scheme name. Labelings produced through
    /// the erased layer record this value, and verification rejects a
    /// mismatch with [`CertError::FingerprintMismatch`] — so a label
    /// corpus recorded under another workspace version (or another
    /// property/width) fails loudly instead of misdecoding.
    fn fingerprint(&self) -> u64 {
        stable_name_fingerprint(&self.name())
    }

    /// Number of canonically interned algebra states backing this
    /// scheme's labels, when there is such a table (`None` for schemes
    /// without class-carrying labels). Reported by the bench suite as
    /// the per-scheme `|C|` statistic.
    fn algebra_state_count(&self) -> Option<usize> {
        None
    }

    /// `true` when this scheme's labels are a pure function of
    /// `(graph, hint)` — the default, and what the Theorem 1 scheme
    /// reports whenever its canonical freeze completed
    /// (`FrozenAlgebra::is_total`). A *sealed* algebra (too large to
    /// pre-enumerate) returns `false`: its dynamic-tail ids depend on
    /// prove arrival order, so concurrent proving can perturb label
    /// sizes. The engine consults this to decide whether proving may
    /// default onto the worker pool without giving up bit-parity.
    fn canonical_labels(&self) -> bool {
        true
    }

    /// Runs the verifier at every vertex against the given (possibly
    /// adversarial) labels, through the wire encoding.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn run(&self, cfg: &Configuration, labels: &[Self::Label]) -> Result<RunReport, CertError> {
        run_edge_scheme(cfg, labels, |view| self.verify_at(view))
    }

    /// Convenience: prove then verify everywhere.
    ///
    /// # Errors
    ///
    /// Propagates prover refusals and harness errors.
    fn certify_and_run(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<RunReport, CertError> {
        let labels = self.prove(cfg, hint)?;
        self.run(cfg, &labels)
    }
}

/// Runs an edge-labeling scheme: encodes each label, decodes it back (the
/// wire trip) **once per edge**, builds each vertex's borrowed view over
/// the decode arena, and applies `verify`.
///
/// `labels[e]` is the label of edge `e`; `verify(view)` is the local
/// verification algorithm. The vertex loop streams the configuration's
/// CSR arena ([`Configuration::csr`]) and reuses one scratch slice for
/// the incident references, so it performs no per-vertex allocation and
/// no label clones.
///
/// # Errors
///
/// [`CertError::LabelCountMismatch`] if `labels` does not have one label
/// per edge — adversarial truncations surface as an error, never a panic.
pub fn run_edge_scheme<L, F>(
    cfg: &Configuration,
    labels: &[L],
    verify: F,
) -> Result<RunReport, CertError>
where
    L: Enc + Clone,
    F: Fn(&VertexView<'_, L>) -> Verdict,
{
    let g = cfg.csr();
    if labels.len() != g.edge_count() {
        return Err(CertError::LabelCountMismatch {
            expected: g.edge_count(),
            got: labels.len(),
        });
    }
    let mut max_bits = 0;
    let mut total_bits = 0;
    let decoded: Vec<Option<L>> = labels
        .iter()
        .map(|l| {
            let (bytes, bits) = bits::encode(l);
            max_bits = max_bits.max(bits);
            total_bits += bits;
            bits::decode::<L>(&bytes)
        })
        .collect();
    let mut scratch: Vec<Option<&L>> = Vec::with_capacity(g.max_degree());
    let verdicts = g
        .vertices()
        .map(|v| {
            scratch.clear();
            scratch.extend(
                g.incident(v)
                    .iter()
                    .map(|h| decoded[h.edge.index()].as_ref()),
            );
            verify(&VertexView {
                id: cfg.id_of(v),
                incident: &scratch,
            })
        })
        .collect();
    Ok(RunReport {
        verdicts,
        max_label_bits: max_bits,
        total_label_bits: total_bits,
        edges: g.edge_count(),
    })
}

/// Replaces the label of one edge (adversary helper used by
/// [`crate::attacks`]).
pub fn with_replaced_label<L: Clone>(labels: &[L], edge: EdgeId, new: L) -> Vec<L> {
    let mut out = labels.to_vec();
    out[edge.index()] = new;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    #[test]
    fn harness_reports_sizes_and_verdicts() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(4));
        let labels: Vec<u64> = (0..4).collect();
        let report = run_edge_scheme(&cfg, &labels, |view| {
            if view.degree() == 2 {
                Verdict::Accept
            } else {
                Verdict::reject("bad degree")
            }
        })
        .unwrap();
        assert!(report.accepted());
        assert!(report.max_label_bits >= 5);
        assert_eq!(report.reject_count(), 0);
        assert_eq!(report.edges, 4);
        assert!(report.avg_label_bits() > 0.0);
    }

    #[test]
    fn rejections_are_counted() {
        let cfg = Configuration::with_sequential_ids(generators::path_graph(3));
        let labels = vec![0u64; 2];
        let report = run_edge_scheme(&cfg, &labels, |view| {
            if view.degree() == 2 {
                Verdict::reject("middle vertex complains")
            } else {
                Verdict::Accept
            }
        })
        .unwrap();
        assert!(!report.accepted());
        assert_eq!(report.reject_count(), 1);
        assert_eq!(report.first_rejection(), Some("middle vertex complains"));
    }

    #[test]
    fn wrong_label_count_is_an_error_not_a_panic() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let labels = vec![0u64; 3]; // truncated
        let err = run_edge_scheme(&cfg, &labels, |_| Verdict::Accept).unwrap_err();
        assert_eq!(
            err,
            CertError::LabelCountMismatch {
                expected: 5,
                got: 3
            }
        );
    }

    #[test]
    fn auto_hint_falls_back_to_heuristic_past_exact_limit() {
        // 40 vertices is past the exact solver's limit but within the
        // heuristic fallback, so an auto hint still resolves.
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(40));
        let hint = ProverHint::auto();
        let rep = hint.resolve(&cfg).unwrap();
        rep.validate(cfg.graph()).unwrap();
        // Beyond the fallback limit the caller must supply one.
        let big =
            Configuration::with_sequential_ids(generators::cycle_graph(AUTO_HEURISTIC_LIMIT + 1));
        assert_eq!(
            ProverHint::auto().resolve(&big).unwrap_err(),
            CertError::NeedRepresentation
        );
    }

    #[test]
    fn hint_resolution() {
        let cfg = Configuration::with_sequential_ids(generators::path_graph(5));
        let auto = ProverHint::auto();
        let rep = auto.resolve(&cfg).unwrap();
        rep.validate(cfg.graph()).unwrap();
        let supplied = ProverHint::with_representation(rep.clone().into_owned());
        assert_eq!(supplied.resolve(&cfg).unwrap().intervals(), rep.intervals());
    }

    #[test]
    fn labeling_wrapper_roundtrips() {
        let mut l: Labeling<u64> = vec![1, 2, 3].into();
        assert_eq!(l.len(), 3);
        l.as_mut_slice()[0] = 9;
        assert_eq!(l.as_slice(), &[9, 2, 3]);
        assert_eq!(l.into_vec(), vec![9, 2, 3]);
    }
}
