//! The edge-labeling proof-labeling-scheme harness.
//!
//! Labels live on edges (the paper's working model, Section 2.1). A
//! verifier runs per vertex over a [`VertexView`] — its identifier, degree,
//! and the **decoded** labels of its incident edges (each label is
//! round-tripped through the bit encoding, so malformed labels surface as
//! decode failures). The harness aggregates verdicts and label-size
//! statistics into a [`RunReport`].

use lanecert_graph::EdgeId;

use crate::bits::{self, Enc};
use crate::Configuration;

/// A per-vertex verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The vertex accepts.
    Accept,
    /// The vertex rejects, with a diagnostic reason (not part of the
    /// model's output — used by tests and experiments).
    Reject(String),
}

impl Verdict {
    /// Convenience constructor for rejections.
    pub fn reject(reason: impl Into<String>) -> Self {
        Verdict::Reject(reason.into())
    }

    /// Returns `true` for [`Verdict::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// What a vertex sees: its own identifier plus the labels on its incident
/// edges (decoded; `None` marks an undecodable label).
#[derive(Clone, Debug)]
pub struct VertexView<L> {
    /// This vertex's identifier.
    pub id: u64,
    /// For each incident edge: the decoded label (no neighbour identity is
    /// revealed — only the label contents, per the model).
    pub incident: Vec<Option<L>>,
}

/// The outcome of running a scheme on a configuration.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-vertex verdicts (indexed by vertex).
    pub verdicts: Vec<Verdict>,
    /// Maximum encoded label size in bits.
    pub max_label_bits: usize,
    /// Total encoded label bits across all edges.
    pub total_label_bits: usize,
}

impl RunReport {
    /// Returns `true` if every vertex accepted.
    pub fn accepted(&self) -> bool {
        self.verdicts.iter().all(Verdict::is_accept)
    }

    /// Number of rejecting vertices.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|v| !v.is_accept()).count()
    }

    /// First rejection reason, if any (diagnostics).
    pub fn first_rejection(&self) -> Option<&str> {
        self.verdicts.iter().find_map(|v| match v {
            Verdict::Reject(r) => Some(r.as_str()),
            Verdict::Accept => None,
        })
    }

    /// Average label size in bits per edge.
    pub fn avg_label_bits(&self, edges: usize) -> f64 {
        if edges == 0 {
            0.0
        } else {
            self.total_label_bits as f64 / edges as f64
        }
    }
}

/// Runs an edge-labeling scheme: encodes each label, decodes it back (the
/// wire trip), builds each vertex's view, and applies `verify`.
///
/// `labels[e]` is the label of edge `e`; `verify(cfg, v, view)` is the
/// local verification algorithm.
///
/// # Panics
///
/// Panics if `labels` has the wrong length.
pub fn run_edge_scheme<L, F>(cfg: &Configuration, labels: &[L], verify: F) -> RunReport
where
    L: Enc + Clone,
    F: Fn(&Configuration, lanecert_graph::VertexId, &VertexView<L>) -> Verdict,
{
    let g = cfg.graph();
    assert_eq!(labels.len(), g.edge_count(), "one label per edge");
    let mut max_bits = 0;
    let mut total_bits = 0;
    let decoded: Vec<Option<L>> = labels
        .iter()
        .map(|l| {
            let (bytes, bits) = bits::encode(l);
            max_bits = max_bits.max(bits);
            total_bits += bits;
            bits::decode::<L>(&bytes)
        })
        .collect();
    let verdicts = g
        .vertices()
        .map(|v| {
            let view = VertexView {
                id: cfg.id_of(v),
                incident: g
                    .incident(v)
                    .iter()
                    .map(|h| decoded[h.edge.index()].clone())
                    .collect(),
            };
            verify(cfg, v, &view)
        })
        .collect();
    RunReport {
        verdicts,
        max_label_bits: max_bits,
        total_label_bits: total_bits,
    }
}

/// Replaces the label of one edge (adversary helper used by
/// [`crate::attacks`]).
pub fn with_replaced_label<L: Clone>(labels: &[L], edge: EdgeId, new: L) -> Vec<L> {
    let mut out = labels.to_vec();
    out[edge.index()] = new;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    #[test]
    fn harness_reports_sizes_and_verdicts() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(4));
        let labels: Vec<u64> = (0..4).collect();
        let report = run_edge_scheme(&cfg, &labels, |_, _, view| {
            if view.incident.len() == 2 {
                Verdict::Accept
            } else {
                Verdict::reject("bad degree")
            }
        });
        assert!(report.accepted());
        assert!(report.max_label_bits >= 5);
        assert_eq!(report.reject_count(), 0);
    }

    #[test]
    fn rejections_are_counted() {
        let cfg = Configuration::with_sequential_ids(generators::path_graph(3));
        let labels = vec![0u64; 2];
        let report = run_edge_scheme(&cfg, &labels, |_, v, _| {
            if v.index() == 1 {
                Verdict::reject("middle vertex complains")
            } else {
                Verdict::Accept
            }
        });
        assert!(!report.accepted());
        assert_eq!(report.reject_count(), 1);
        assert_eq!(report.first_rejection(), Some("middle vertex complains"));
    }
}
