//! The single typed error surface of the certification API.
//!
//! Every scheme in the workspace — the Theorem 1 scheme, the FMR+24-style
//! baseline, and the classic 1-bit schemes — reports prover refusals and
//! harness failures through [`CertError`]. This replaces the previous mix
//! of `ProveError`, `Option`-returning provers, and `assert!`-based
//! harness checks.

use std::error::Error;
use std::fmt;

/// Why a certification request failed.
///
/// Prover refusals ([`Disconnected`](CertError::Disconnected),
/// [`PropertyViolated`](CertError::PropertyViolated),
/// [`TooManyLanes`](CertError::TooManyLanes),
/// [`NeedRepresentation`](CertError::NeedRepresentation)) are part of the
/// model: the honest prover only labels yes-instances. The remaining
/// variants are harness/configuration errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The network is disconnected (the model requires connectivity).
    Disconnected,
    /// The configuration does not satisfy the property `ϕ` — per the
    /// completeness contract, the prover only labels yes-instances. The
    /// 1-bit bipartiteness scheme reports non-bipartite inputs here.
    PropertyViolated,
    /// The layout needs more lanes than the verifier's bound (the
    /// pathwidth bound fails, or the recursive partition overshot it).
    TooManyLanes {
        /// Lanes required by the layout.
        needed: usize,
        /// The verifier's bound.
        bound: usize,
    },
    /// No interval representation was supplied (via
    /// [`ProverHint`](crate::ProverHint)) and the graph is too large for
    /// automatic derivation — past both the exact pathwidth solver and
    /// the beam-search heuristic fallback
    /// ([`AUTO_HEURISTIC_LIMIT`](crate::scheme::AUTO_HEURISTIC_LIMIT)).
    NeedRepresentation,
    /// A labeling with the wrong number of labels was presented to the
    /// verifier harness (adversarial truncation/extension). Surfaced as an
    /// error instead of a panic so batch runs survive malformed inputs.
    LabelCountMismatch {
        /// Labels the configuration requires (one per edge for edge
        /// schemes; one per vertex for the Proposition 2.1 transform).
        expected: usize,
        /// Labels actually supplied.
        got: usize,
    },
    /// The requested scheme name is not in the
    /// [`SchemeRegistry`](crate::SchemeRegistry).
    UnknownScheme {
        /// The name that failed to resolve.
        name: String,
    },
    /// The builder/spec is missing something the scheme factory requires
    /// (e.g. the Theorem 1 scheme without a property algebra).
    InvalidSpec(String),
    /// An [`EncodedLabeling`](crate::EncodedLabeling) was recorded under
    /// a different algebra table than the scheme verifying it (a label
    /// corpus from another workspace version or another property/width).
    /// Canonical class ids only mean anything relative to their frozen
    /// table, so the mismatch fails loudly instead of misdecoding.
    FingerprintMismatch {
        /// The verifying scheme's fingerprint.
        expected: u64,
        /// The fingerprint recorded on the labeling.
        got: u64,
    },
    /// Internal pipeline failure (a bug; surfaced for diagnosis).
    Internal(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Disconnected => write!(f, "network must be connected"),
            CertError::PropertyViolated => write!(f, "configuration violates the property"),
            CertError::TooManyLanes { needed, bound } => {
                write!(f, "layout needs {needed} lanes, verifier bound is {bound}")
            }
            CertError::NeedRepresentation => {
                write!(
                    f,
                    "graph too large for automatic decomposition (exact solver \
                     and heuristic fallback); supply a representation"
                )
            }
            CertError::LabelCountMismatch { expected, got } => {
                write!(
                    f,
                    "labeling has {got} labels, configuration needs {expected}"
                )
            }
            CertError::UnknownScheme { name } => {
                write!(f, "no scheme named {name:?} in the registry")
            }
            CertError::InvalidSpec(msg) => write!(f, "invalid scheme spec: {msg}"),
            CertError::FingerprintMismatch { expected, got } => {
                write!(
                    f,
                    "labeling was recorded under algebra fingerprint {got:#018x}, \
                     scheme expects {expected:#018x} (cross-version or cross-scheme corpus)"
                )
            }
            CertError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for CertError {}

impl CertError {
    /// `true` for the model-level prover refusals (the configuration is a
    /// no-instance), as opposed to harness/spec errors.
    pub fn is_refusal(&self) -> bool {
        matches!(
            self,
            CertError::Disconnected | CertError::PropertyViolated | CertError::TooManyLanes { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        for (e, needle) in [
            (CertError::Disconnected, "connected"),
            (CertError::PropertyViolated, "violates"),
            (
                CertError::TooManyLanes {
                    needed: 5,
                    bound: 3,
                },
                "5 lanes",
            ),
            (CertError::NeedRepresentation, "representation"),
            (
                CertError::LabelCountMismatch {
                    expected: 4,
                    got: 2,
                },
                "needs 4",
            ),
            (
                CertError::UnknownScheme {
                    name: "nope".into(),
                },
                "nope",
            ),
            (CertError::InvalidSpec("x".into()), "spec"),
            (
                CertError::FingerprintMismatch {
                    expected: 1,
                    got: 2,
                },
                "fingerprint",
            ),
            (CertError::Internal("y".into()), "internal"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn refusal_classification() {
        assert!(CertError::PropertyViolated.is_refusal());
        assert!(CertError::Disconnected.is_refusal());
        assert!(!CertError::NeedRepresentation.is_refusal());
        assert!(!CertError::LabelCountMismatch {
            expected: 1,
            got: 0
        }
        .is_refusal());
    }
}
