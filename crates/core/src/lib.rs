//! Proof labeling schemes for MSO₂ properties on graphs of bounded
//! pathwidth — the main contribution of Baterisna & Chang (PODC 2025),
//! with optimal `O(log n)`-bit labels (Theorem 1).
//!
//! # Model
//!
//! A [`Configuration`] is a connected network: a graph whose vertices carry
//! distinct `O(log n)`-bit identifiers. A *prover* assigns a label to every
//! edge (or vertex); a *verifier* runs at each vertex, seeing only its own
//! state and the labels on its incident edges, and outputs accept/reject.
//! The scheme is correct when honest labelings are accepted everywhere
//! (completeness) and no labeling of a violating configuration is accepted
//! everywhere (soundness). Label sizes are measured in bits of the actual
//! wire encoding ([`bits`]).
//!
//! # Contents
//!
//! * [`theorem1`] — the paper's scheme: certify `ϕ ∧ (pathwidth ≤ k)` with
//!   `O(log n)`-bit labels, for any property `ϕ` given as a homomorphism
//!   algebra (`lanecert-algebra`).
//! * [`pointer`] — Proposition 2.2 (certify that a vertex with a given
//!   identifier exists), via distance labels.
//! * [`transform`] — Proposition 2.1 (edge labels → vertex labels along a
//!   bounded-outdegree orientation, port-numbering model).
//! * [`simple`] — the 1-bit bipartiteness scheme from the introduction and
//!   the trivial whole-graph scheme.
//! * [`baseline`] — an FMR+24-style `O(log² n)` baseline for label-size
//!   comparison.
//! * [`attacks`] — soundness fuzzing and the classic `Ω(log n)`
//!   cut-and-splice lower-bound demonstration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod config;
pub use config::Configuration;

pub mod scheme;
pub use scheme::{RunReport, Verdict, VertexView};

pub mod pointer;
pub mod simple;
pub mod transform;

pub mod theorem1;
pub use theorem1::{PathwidthScheme, ProveError, SchemeOptions};

pub mod baseline;

pub mod attacks;
