//! Proof labeling schemes for MSO₂ properties on graphs of bounded
//! pathwidth — the main contribution of Baterisna & Chang (PODC 2025),
//! with optimal `O(log n)`-bit labels (Theorem 1).
//!
//! # Model
//!
//! A [`Configuration`] is a connected network: a graph whose vertices carry
//! distinct `O(log n)`-bit identifiers. A *prover* assigns a label to every
//! edge (or vertex); a *verifier* runs at each vertex, seeing only its own
//! state and the labels on its incident edges, and outputs accept/reject.
//! The scheme is correct when honest labelings are accepted everywhere
//! (completeness) and no labeling of a violating configuration is accepted
//! everywhere (soundness). Label sizes are measured in bits of the actual
//! wire encoding ([`bits`]).
//!
//! # The unified API
//!
//! Every scheme implements the [`Scheme`] trait ([`scheme`]); the
//! [`erased`] layer makes them object-safe over encoded byte labels; the
//! [`registry`] maps stable names to scheme factories; [`Certifier`]
//! ([`certifier`]) is the fluent entry point; and [`BatchRunner`]
//! ([`batch`]) certifies many configurations in one call. Failures travel
//! through the single [`CertError`] type ([`error`]). Start here:
//!
//! ```
//! use lanecert::{BatchJob, BatchRunner, Certifier, Configuration};
//! use lanecert_algebra::{props::Connected, Algebra};
//! use lanecert_graph::generators;
//!
//! let certifier = Certifier::builder()
//!     .property(Algebra::shared(Connected))
//!     .pathwidth(2)
//!     .scheme("theorem1") // or "fmr-baseline", "bipartite-1bit", ...
//!     .build()
//!     .unwrap();
//! let report = BatchRunner::new(certifier).run([
//!     BatchJob::new(Configuration::with_random_ids(generators::cycle_graph(8), 1)),
//!     BatchJob::new(Configuration::with_random_ids(generators::ladder(4), 2)),
//! ]);
//! assert!(report.all_accepted());
//! ```
//!
//! # Contents
//!
//! * [`theorem1`] — the paper's scheme: certify `ϕ ∧ (pathwidth ≤ k)` with
//!   `O(log n)`-bit labels, for any property `ϕ` given as a homomorphism
//!   algebra (`lanecert-algebra`).
//! * [`mod@pointer`] — Proposition 2.2 (certify that a vertex with a given
//!   identifier exists), via distance labels.
//! * [`transform`] — Proposition 2.1 (edge labels → vertex labels along a
//!   bounded-outdegree orientation, port-numbering model).
//! * [`simple`] — the 1-bit bipartiteness scheme from the introduction and
//!   the trivial whole-graph scheme.
//! * [`compiled`] — the Courcelle-style front-end: compile any MSO₂
//!   [`Formula`](lanecert_mso::Formula) into a Theorem 1 certifier
//!   (registry name `"compiled"`).
//! * [`baseline`] — an FMR+24-style `O(log² n)` baseline for label-size
//!   comparison.
//! * [`attacks`] — soundness fuzzing (typed and wire-level) and the classic
//!   `Ω(log n)` cut-and-splice lower-bound demonstration.

pub mod bits;
pub mod config;
pub mod inline;
pub use config::Configuration;

pub mod error;
pub use error::CertError;

pub mod scheme;
pub use scheme::{
    Labeling, ProverHint, RunReport, Scheme, Verdict, VertexView, AUTO_HEURISTIC_LIMIT,
};

pub mod erased;
pub use erased::{
    par_verify_threads, BoxedScheme, DynScheme, EncodedLabel, EncodedLabelRef, EncodedLabeling,
    PAR_VERIFY_MIN_SHARD,
};

pub mod registry;
pub use registry::{SchemeRegistry, SchemeSpec};

pub mod certifier;
pub use certifier::{Certifier, CertifierBuilder};

pub mod batch;
pub use batch::{BatchJob, BatchOutcome, BatchReport, BatchRunner};

pub mod pointer;
pub mod simple;
pub mod transform;

pub mod theorem1;
pub use theorem1::{PathwidthScheme, SchemeOptions};

pub mod compiled;
pub use compiled::{compile_scheme, StandardFormula};

pub mod baseline;

pub mod attacks;
