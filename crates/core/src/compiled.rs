//! Compiled-formula certifiers: MSO₂ formulas lowered to lane algebras.
//!
//! This is the Courcelle-style front-end of the workspace. Where
//! `lanecert_algebra::props` carries hand-written algebras,
//! [`compile_scheme`] takes *any* [`Formula`], runs the compiler of
//! [`lanecert_mso::compile`] (automaton states are satisfying
//! assignments restricted to the live interface), wraps the result in an
//! [`Algebra`], and freezes it into the Theorem 1 scheme at the
//! interface arity implied by the lane bound. Labels stay `O(log n)`
//! bits: the frozen class table is finite per `(formula, max_lanes)`
//! pair, so a label is a constant number of class ids plus interval
//! endpoints.
//!
//! The freeze budgets act as a backstop, not a soundness valve: a
//! formula whose compiled state space outgrows them fails scheme
//! construction with [`CertError::InvalidSpec`] — it never produces a
//! wrong verdict. [`standard_formulas`] lists the formulas of
//! `lanecert_mso::props` that are known to freeze totally, with
//! measured budgets; anything else (e.g. a user formula parsed by
//! `lanecert_mso::sexpr`) goes through [`compile_scheme`] with budgets
//! of the caller's choosing.

use lanecert_algebra::{Algebra, FreezeOptions};
use lanecert_lanes::LaneStrategy;
use lanecert_mso::Formula;
use lanecert_mso::{compile, props, sexpr};

use crate::theorem1::{PathwidthScheme, SchemeOptions};
use crate::CertError;

/// Default lane bound for compiled schemes: `max_lanes = 2` certifies
/// `pathwidth ≤ 1` (paths, caterpillars, stars) at interface arity 4 —
/// the widest interface every standard formula's state space is known
/// to stay finite under.
pub const DEFAULT_MAX_LANES: usize = 2;

/// Compiles `formula` and freezes it into a Theorem 1 scheme.
///
/// The freeze arity is forced to `2 × opts.max_lanes` (see
/// [`PathwidthScheme::with_freeze_options`]); `freeze` supplies the
/// state/op budgets. Construction demands a *total* freeze — partial
/// (sealed) tables intern their tail in arrival order, which would break
/// the bit-identical parallel proving the engine relies on.
///
/// # Errors
///
/// [`CertError::InvalidSpec`] when the formula does not compile (unbound
/// or sort-mismatched variables) or when its state space exceeds the
/// freeze budgets.
pub fn compile_scheme(
    formula: &Formula,
    opts: SchemeOptions,
    freeze: &FreezeOptions,
) -> Result<PathwidthScheme, CertError> {
    let prop = compile::compile(formula)
        .map_err(|e| CertError::InvalidSpec(format!("formula does not compile: {e}")))?;
    let scheme = PathwidthScheme::with_freeze_options(Algebra::shared(prop), opts, freeze);
    if !scheme.frozen_algebra().is_total() {
        return Err(CertError::InvalidSpec(format!(
            "compiled state space of {} exceeds the freeze budget at {} lanes \
             (≥ {} states); raise the budgets or lower the lane bound",
            sexpr::canonical(formula),
            opts.max_lanes,
            scheme.frozen_algebra().state_count(),
        )));
    }
    Ok(scheme)
}

/// One standard compiled formula: a stable corpus/bench name, the
/// formula constructor, and freeze budgets tuned from measured state
/// counts (the measured sizes are recorded in the README table).
pub struct StandardFormula {
    /// Stable name used by the engine corpus, bench tables and CI.
    pub name: &'static str,
    /// Builds the formula (constructors are cheap and pure).
    pub build: fn() -> Formula,
    /// State budget with headroom over the measured total count.
    pub state_budget: usize,
    /// Operation budget with headroom over the measured closure cost.
    pub op_budget: usize,
}

impl StandardFormula {
    /// The formula itself.
    pub fn formula(&self) -> Formula {
        (self.build)()
    }

    /// Freeze budgets for this formula at the default lane bound.
    pub fn freeze_options(&self) -> FreezeOptions {
        FreezeOptions {
            max_arity: 2 * DEFAULT_MAX_LANES,
            state_budget: self.state_budget,
            op_budget: self.op_budget,
            vertex_labels: vec![0],
        }
    }

    /// Builds the scheme at the default lane bound with the greedy lane
    /// strategy.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidSpec`] if the freeze overruns its budget
    /// (only possible if the tuned budgets here rot).
    pub fn scheme(&self) -> Result<PathwidthScheme, CertError> {
        let opts = SchemeOptions {
            strategy: LaneStrategy::Greedy,
            max_lanes: DEFAULT_MAX_LANES,
        };
        compile_scheme(&self.formula(), opts, &self.freeze_options())
    }
}

/// The standard formula catalog: every `lanecert_mso::props` formula
/// whose compiled state space is known to freeze totally at the default
/// lane bound, with budgets set to the measured totals plus headroom
/// (measured state counts at interface arity 4: connected 2 809,
/// bipartite 11 713, 2-colorable 11 713, max-degree-1 141,
/// max-degree-2 812, vertex-cover-1 1 210, independent-set-2 12 520;
/// see the README table).
///
/// Deliberately absent: `acyclic`, `triangle_free`,
/// `dominating_set_at_most`, and `colorable(3)` — their compiled spaces
/// outgrow any practical budget at this arity (dominating-set-1 already
/// exceeds 60 000 states), so they exercise the
/// [`CertError::InvalidSpec`] backstop instead of the happy path.
pub fn standard_formulas() -> &'static [StandardFormula] {
    &[
        StandardFormula {
            name: "connected",
            build: props::connected,
            state_budget: 6_000,
            op_budget: 30_000_000,
        },
        StandardFormula {
            name: "bipartite",
            build: props::bipartite,
            state_budget: 18_000,
            op_budget: 30_000_000,
        },
        StandardFormula {
            name: "2-colorable",
            build: || props::colorable(2),
            state_budget: 18_000,
            op_budget: 30_000_000,
        },
        StandardFormula {
            name: "max-degree-1",
            build: || props::max_degree_at_most(1),
            state_budget: 1_000,
            op_budget: 8_000_000,
        },
        StandardFormula {
            name: "max-degree-2",
            build: || props::max_degree_at_most(2),
            state_budget: 3_000,
            op_budget: 40_000_000,
        },
        StandardFormula {
            name: "vertex-cover-1",
            build: || props::vertex_cover_at_most(1),
            state_budget: 3_000,
            op_budget: 8_000_000,
        },
        StandardFormula {
            name: "independent-set-2",
            build: || props::independent_set_at_least(2),
            state_budget: 19_000,
            op_budget: 30_000_000,
        },
    ]
}

/// Looks up a standard formula by name.
pub fn standard_formula(name: &str) -> Option<&'static StandardFormula> {
    standard_formulas().iter().find(|f| f.name == name)
}

/// Freeze budgets for `formula`: the tuned budgets when it is
/// α-equivalent to a standard formula (keyed by canonical s-expression),
/// the defaults otherwise.
pub fn freeze_options_for(formula: &Formula, max_lanes: usize) -> FreezeOptions {
    let canonical = sexpr::canonical(formula);
    for entry in standard_formulas() {
        if sexpr::canonical(&entry.formula()) == canonical {
            return FreezeOptions {
                max_arity: 2 * max_lanes,
                ..entry.freeze_options()
            };
        }
    }
    FreezeOptions::for_interface_arity(2 * max_lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{ProverHint, Scheme};
    use crate::Configuration;
    use lanecert_graph::generators;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let names: Vec<&str> = standard_formulas().iter().map(|f| f.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate catalog name");
        assert!(standard_formula("connected").is_some());
        assert!(standard_formula("vertex-cover-1").is_some());
        // The divergent formulas are deliberately not in the catalog.
        assert!(standard_formula("triangle-free").is_none());
    }

    #[test]
    fn ill_sorted_formula_is_invalid_spec() {
        // Variable 0 is never bound: the compiler must refuse, and the
        // refusal must surface as InvalidSpec (not a panic or a wrong
        // verdict).
        let f = Formula::InVSet(0, 1);
        let err = compile_scheme(
            &f,
            SchemeOptions {
                strategy: LaneStrategy::Greedy,
                max_lanes: DEFAULT_MAX_LANES,
            },
            &FreezeOptions::for_interface_arity(4),
        )
        .unwrap_err();
        assert!(matches!(err, CertError::InvalidSpec(_)));
    }

    #[test]
    fn budget_overrun_is_invalid_spec_not_wrong_verdict() {
        // A one-state budget cannot hold any compiled space; the scheme
        // must refuse to build rather than certify with a sealed table.
        let starved = FreezeOptions {
            max_arity: 4,
            state_budget: 1,
            op_budget: 100,
            vertex_labels: vec![0],
        };
        let err = compile_scheme(
            &lanecert_mso::props::triangle_free(),
            SchemeOptions {
                strategy: LaneStrategy::Greedy,
                max_lanes: DEFAULT_MAX_LANES,
            },
            &starved,
        )
        .unwrap_err();
        assert!(matches!(err, CertError::InvalidSpec(_)));
    }

    #[test]
    fn compiled_max_degree_certifies_a_matching_edge() {
        // The cheapest catalog entry end-to-end (the heavyweight entries
        // are covered by the integration suites, where the freeze is
        // paid once per binary): max-degree ≤ 1 holds exactly on single
        // edges, and P3 violates it at the middle vertex.
        let scheme = standard_formula("max-degree-1").unwrap().scheme().unwrap();
        assert!(scheme.canonical_labels());
        let edge = Configuration::with_sequential_ids(generators::path_graph(2));
        let report = scheme.certify_and_run(&edge, &ProverHint::auto()).unwrap();
        assert!(report.accepted());
        let p3 = Configuration::with_sequential_ids(generators::path_graph(3));
        let err = scheme
            .certify_and_run(&p3, &ProverHint::auto())
            .unwrap_err();
        assert!(matches!(err, CertError::PropertyViolated));
    }

    #[test]
    fn freeze_options_match_standard_entries_up_to_alpha() {
        // A hand-parsed bipartite formula with different variable names
        // must pick up the tuned budgets via the canonical key.
        let entry = standard_formula("bipartite").unwrap();
        let renamed =
            lanecert_mso::sexpr::parse(&lanecert_mso::sexpr::canonical(&entry.formula())).unwrap();
        let opts = freeze_options_for(&renamed, DEFAULT_MAX_LANES);
        assert_eq!(opts.state_budget, entry.state_budget);
        // An unrelated formula falls back to the defaults.
        let other = lanecert_mso::props::hamiltonian_cycle();
        let fallback = freeze_options_for(&other, DEFAULT_MAX_LANES);
        assert_eq!(
            fallback.state_budget,
            lanecert_algebra::DEFAULT_STATE_BUDGET
        );
    }
}
