//! The builder entry point of the certification API.
//!
//! A [`Certifier`] bundles one erased scheme with a default
//! [`ProverHint`]; build it fluently:
//!
//! ```
//! use lanecert::{Certifier, Configuration};
//! use lanecert_algebra::{props::Bipartite, Algebra};
//! use lanecert_graph::generators;
//!
//! let certifier = Certifier::builder()
//!     .property(Algebra::shared(Bipartite))
//!     .pathwidth(2)
//!     .scheme("theorem1")
//!     .build()
//!     .unwrap();
//! let cfg = Configuration::with_random_ids(generators::cycle_graph(12), 42);
//! let report = certifier.run(&cfg).unwrap();
//! assert!(report.accepted());
//! ```

use lanecert_algebra::SharedAlgebra;
use lanecert_lanes::LaneStrategy;
use lanecert_mso::Formula;
use lanecert_pathwidth::IntervalRep;

use crate::erased::{BoxedScheme, EncodedLabeling};
use crate::registry::{SchemeRegistry, SchemeSpec, COMPILED, THEOREM1};
use crate::scheme::{ProverHint, RunReport};
use crate::{CertError, Configuration};

/// A ready-to-run certification pipeline: one erased scheme plus the
/// default prover hint.
pub struct Certifier {
    scheme: BoxedScheme,
    hint: ProverHint,
}

impl Certifier {
    /// Starts a builder (scheme defaults to [`THEOREM1`]).
    pub fn builder() -> CertifierBuilder {
        CertifierBuilder::default()
    }

    /// Wraps an already-built erased scheme.
    pub fn from_scheme(scheme: BoxedScheme) -> Self {
        Self {
            scheme,
            hint: ProverHint::auto(),
        }
    }

    /// The underlying erased scheme.
    pub fn scheme(&self) -> &dyn crate::erased::DynScheme {
        self.scheme.as_ref()
    }

    /// Display name of the underlying scheme instance.
    pub fn name(&self) -> String {
        self.scheme.name()
    }

    /// The default prover hint (set via
    /// [`CertifierBuilder::representation`]).
    pub fn hint(&self) -> &ProverHint {
        &self.hint
    }

    /// Overrides the default hint's automatic-decomposition ceiling (see
    /// [`CertifierBuilder::heuristic_limit`]); used by the engine builder
    /// to push its own knob down onto an already-built certifier.
    pub fn set_heuristic_limit(&mut self, limit: usize) {
        self.hint = std::mem::take(&mut self.hint).heuristic_limit(limit);
    }

    /// Honest certificate assignment, wire-encoded, using the default
    /// hint.
    ///
    /// # Errors
    ///
    /// Prover refusals and hint failures; see [`CertError`].
    pub fn certify(&self, cfg: &Configuration) -> Result<EncodedLabeling, CertError> {
        self.scheme.prove_encoded(cfg, &self.hint)
    }

    /// Like [`Certifier::certify`] with an explicit per-call hint (e.g. a
    /// known representation for one configuration of a batch).
    ///
    /// # Errors
    ///
    /// Prover refusals and hint failures; see [`CertError`].
    pub fn certify_with(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<EncodedLabeling, CertError> {
        self.scheme.prove_encoded(cfg, hint)
    }

    /// Runs the verifier everywhere against encoded (possibly adversarial)
    /// labels.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] for wrong-length labelings.
    pub fn verify(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
    ) -> Result<RunReport, CertError> {
        self.scheme.verify_encoded(cfg, labels)
    }

    /// Like [`Certifier::verify`] with the vertex set sharded across
    /// `threads` OS threads. The report is bit-identical to the
    /// sequential path (see
    /// [`DynScheme::par_verify_encoded`](crate::DynScheme::par_verify_encoded));
    /// for pipeline-level parallelism over many configurations use the
    /// `lanecert-engine` crate instead.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] for wrong-length labelings.
    pub fn par_verify(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        threads: usize,
    ) -> Result<RunReport, CertError> {
        self.scheme.par_verify_encoded(cfg, labels, threads)
    }

    /// Prove + everywhere-verify with the default hint.
    ///
    /// # Errors
    ///
    /// Propagates prover refusals.
    pub fn run(&self, cfg: &Configuration) -> Result<RunReport, CertError> {
        self.run_with(cfg, &self.hint)
    }

    /// Prove sequentially, then verify with [`Certifier::par_verify`].
    ///
    /// # Errors
    ///
    /// Propagates prover refusals.
    pub fn par_run(&self, cfg: &Configuration, threads: usize) -> Result<RunReport, CertError> {
        let labels = self.scheme.prove_encoded(cfg, &self.hint)?;
        self.par_verify(cfg, &labels, threads)
    }

    /// Prove + everywhere-verify with an explicit hint.
    ///
    /// # Errors
    ///
    /// Propagates prover refusals.
    pub fn run_with(&self, cfg: &Configuration, hint: &ProverHint) -> Result<RunReport, CertError> {
        let labels = self.scheme.prove_encoded(cfg, hint)?;
        self.scheme.verify_encoded(cfg, &labels)
    }
}

impl std::fmt::Debug for Certifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Certifier")
            .field("scheme", &self.name())
            .finish()
    }
}

/// Fluent configuration for a [`Certifier`].
#[derive(Default)]
pub struct CertifierBuilder {
    spec: SchemeSpec,
    scheme: Option<String>,
    registry: Option<SchemeRegistry>,
    rep: Option<IntervalRep>,
    heuristic_limit: Option<usize>,
}

impl CertifierBuilder {
    /// The property `ϕ` to certify, as a homomorphism algebra.
    pub fn property(mut self, algebra: SharedAlgebra) -> Self {
        self.spec.algebra = Some(algebra);
        self
    }

    /// Certify `pathwidth ≤ k` alongside the property.
    pub fn pathwidth(mut self, k: usize) -> Self {
        self.spec.pathwidth = Some(k);
        self
    }

    /// Certify an MSO₂ formula via the Courcelle-style compiler
    /// ([`crate::compiled`]). Selects the [`COMPILED`] scheme (a later
    /// [`CertifierBuilder::scheme`] call overrides). The lane bound
    /// defaults to [`crate::compiled::DEFAULT_MAX_LANES`] unless
    /// `.pathwidth(...)` / `.max_lanes(...)` is given.
    pub fn compiled(mut self, formula: Formula) -> Self {
        self.spec.formula = Some(formula);
        if self.scheme.is_none() {
            self.scheme = Some(COMPILED.into());
        }
        self
    }

    /// Lane-partition strategy (the T9 ablation knob).
    pub fn strategy(mut self, strategy: LaneStrategy) -> Self {
        self.spec.strategy = Some(strategy);
        self
    }

    /// Explicit verifier lane bound, overriding `pathwidth + 1`.
    pub fn max_lanes(mut self, w: usize) -> Self {
        self.spec.max_lanes = Some(w);
        self
    }

    /// Which registered scheme to build (default [`THEOREM1`]); see
    /// [`crate::registry`] for the standard names.
    pub fn scheme(mut self, name: impl Into<String>) -> Self {
        self.scheme = Some(name.into());
        self
    }

    /// Default interval representation for every prove call (overridable
    /// per call via [`Certifier::certify_with`]).
    pub fn representation(mut self, rep: IntervalRep) -> Self {
        self.rep = Some(rep);
        self
    }

    /// Vertex-count ceiling up to which hintless prove calls derive a
    /// decomposition themselves (exact solver, then the budgeted
    /// branch-and-bound solver); beyond it they fail with
    /// [`CertError::NeedRepresentation`]. Defaults to
    /// [`crate::AUTO_HEURISTIC_LIMIT`]. Applies to the certifier's
    /// default hint; per-job hints carry their own ceiling
    /// ([`ProverHint::heuristic_limit`]).
    pub fn heuristic_limit(mut self, limit: usize) -> Self {
        self.heuristic_limit = Some(limit);
        self
    }

    /// Resolve schemes against a custom registry instead of
    /// [`SchemeRegistry::standard`].
    pub fn registry(mut self, registry: SchemeRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the certifier.
    ///
    /// # Errors
    ///
    /// [`CertError::UnknownScheme`] / [`CertError::InvalidSpec`] from the
    /// registry lookup and factory.
    pub fn build(self) -> Result<Certifier, CertError> {
        let registry = self.registry.unwrap_or_else(SchemeRegistry::standard);
        let name = self.scheme.as_deref().unwrap_or(THEOREM1);
        let scheme = registry.build(name, &self.spec)?;
        let mut hint = match self.rep {
            Some(rep) => ProverHint::with_representation(rep),
            None => ProverHint::auto(),
        };
        if let Some(limit) = self.heuristic_limit {
            hint = hint.heuristic_limit(limit);
        }
        Ok(Certifier { scheme, hint })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use lanecert_algebra::{props::Bipartite, props::Connected, Algebra};
    use lanecert_graph::generators;

    #[test]
    fn builder_defaults_to_theorem1() {
        let c = Certifier::builder()
            .property(Algebra::shared(Connected))
            .pathwidth(2)
            .build()
            .unwrap();
        assert!(c.name().starts_with("theorem1"));
        let cfg = Configuration::with_random_ids(generators::cycle_graph(8), 1);
        assert!(c.run(&cfg).unwrap().accepted());
    }

    #[test]
    fn builder_selects_registry_schemes() {
        let cfg = Configuration::with_random_ids(generators::cycle_graph(8), 2);
        // The structural baseline takes no property; the 1-bit scheme
        // accepts exactly the bipartiteness algebra.
        let baseline = Certifier::builder()
            .scheme(registry::FMR_BASELINE)
            .build()
            .unwrap();
        let one_bit = Certifier::builder()
            .property(Algebra::shared(Bipartite))
            .scheme(registry::BIPARTITE_1BIT)
            .build()
            .unwrap();
        for c in [baseline, one_bit] {
            let name = c.name();
            let labels = c.certify(&cfg).unwrap();
            assert!(c.verify(&cfg, &labels).unwrap().accepted(), "{name}");
        }
    }

    #[test]
    fn builder_rejects_property_a_scheme_cannot_certify() {
        // .property(Connected) on the 1-bit bipartiteness scheme must not
        // build a certifier that silently ignores the property.
        let err = Certifier::builder()
            .property(Algebra::shared(Connected))
            .scheme(registry::BIPARTITE_1BIT)
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, CertError::InvalidSpec(_)));
    }

    #[test]
    fn builder_unknown_scheme_errors() {
        let err = Certifier::builder()
            .scheme("not-a-scheme")
            .build()
            .unwrap_err();
        assert!(matches!(err, CertError::UnknownScheme { .. }));
    }

    #[test]
    fn par_run_matches_sequential_run() {
        let c = Certifier::builder()
            .property(Algebra::shared(Connected))
            .pathwidth(2)
            .build()
            .unwrap();
        let cfg = Configuration::with_random_ids(generators::ladder(10), 5);
        let sequential = c.run(&cfg).unwrap();
        for threads in [1, 3, 8] {
            assert_eq!(c.par_run(&cfg, threads).unwrap(), sequential);
        }
        let labels = c.certify(&cfg).unwrap();
        assert_eq!(c.par_verify(&cfg, &labels, 4).unwrap(), sequential);
    }

    #[test]
    fn heuristic_limit_knob_gates_the_fallback() {
        // C40 is past the exact solver; the default ceiling lets the
        // branch-and-bound solver cover it, a lowered ceiling refuses.
        let build = |limit: Option<usize>| {
            let mut b = Certifier::builder()
                .property(Algebra::shared(Connected))
                .pathwidth(2);
            if let Some(l) = limit {
                b = b.heuristic_limit(l);
            }
            b.build().unwrap()
        };
        let cfg = Configuration::with_random_ids(generators::cycle_graph(40), 8);
        assert!(build(None).run(&cfg).unwrap().accepted());
        assert!(build(Some(400)).run(&cfg).unwrap().accepted());
        assert_eq!(
            build(Some(10)).run(&cfg).unwrap_err(),
            CertError::NeedRepresentation
        );
        // Raising the ceiling extends hintless coverage past a lowered
        // one (the default now sits at tens of thousands of vertices, so
        // the knob is exercised with explicit bounds around a mid-size
        // instance — small enough that the prover's chain-deep hierarchy
        // walk fits a test thread's stack).
        let big = Configuration::with_random_ids(generators::cycle_graph(64), 9);
        assert_eq!(
            build(Some(50)).run(&big).unwrap_err(),
            CertError::NeedRepresentation
        );
        assert!(build(Some(100)).run(&big).unwrap().accepted());
        // The mutating form used by the engine builder agrees.
        let mut c = build(None);
        c.set_heuristic_limit(10);
        assert_eq!(c.run(&cfg).unwrap_err(), CertError::NeedRepresentation);
    }

    #[test]
    fn default_representation_is_used() {
        let g = generators::path_graph(6);
        let rep = lanecert_pathwidth::IntervalRep::new(
            (0..6u32)
                .map(|i| lanecert_pathwidth::Interval::new(i, i + 1))
                .collect(),
        );
        let c = Certifier::builder()
            .property(Algebra::shared(Connected))
            .pathwidth(2)
            .representation(rep)
            .build()
            .unwrap();
        assert!(c.hint().representation().is_some());
        let cfg = Configuration::with_sequential_ids(g);
        assert!(c.run(&cfg).unwrap().accepted());
    }
}
