//! Small classic schemes behind the unified [`Scheme`] trait: the paper's
//! 1-bit bipartiteness example ([`BipartiteScheme`], registry name
//! [`crate::registry::BIPARTITE_1BIT`]) and the trivial whole-graph
//! scheme ([`WholeGraphScheme`], registry name
//! [`crate::registry::WHOLE_GRAPH`]). Both serve as reference points in
//! the experiment tables.

use std::sync::Arc;

use lanecert_algebra::SharedAlgebra;

use crate::bits::{BitReader, BitWriter, Enc};
use crate::scheme::{Labeling, ProverHint, Scheme, Verdict, VertexView};
use crate::{CertError, Configuration};

/// The 1-bit bipartiteness label: the colour of the edge's smaller-id
/// endpoint (the other endpoint's colour is its negation on a properly
/// coloured edge, so one bit plus the endpoint ids suffices — we keep just
/// the two colours to stay at two bits and avoid id overhead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteLabel {
    /// Colour of endpoint `u` (insertion order).
    pub cu: bool,
    /// Colour of endpoint `v`.
    pub cv: bool,
}

impl Enc for BipartiteLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.cu.enc(w);
        self.cv.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            cu: Enc::dec(r)?,
            cv: Enc::dec(r)?,
        })
    }
}

/// The paper's introductory 1-bit bipartiteness scheme.
///
/// The honest prover BFS-2-colours the graph and refuses non-bipartite
/// inputs with [`CertError::PropertyViolated`]; the verifier checks local
/// colour consistency. Needs no decomposition, so the [`ProverHint`] is
/// ignored.
#[derive(Clone, Copy, Debug, Default)]
pub struct BipartiteScheme;

impl Scheme for BipartiteScheme {
    type Label = BipartiteLabel;

    fn name(&self) -> String {
        "bipartite-1bit".into()
    }

    fn prove(
        &self,
        cfg: &Configuration,
        _hint: &ProverHint,
    ) -> Result<Labeling<BipartiteLabel>, CertError> {
        let g = cfg.graph();
        let mut color = vec![None::<bool>; g.vertex_count()];
        for s in g.vertices() {
            if color[s.index()].is_some() {
                continue;
            }
            color[s.index()] = Some(false);
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                let cv = color[v.index()].unwrap();
                for w in g.neighbors(v) {
                    match color[w.index()] {
                        None => {
                            color[w.index()] = Some(!cv);
                            queue.push_back(w);
                        }
                        Some(cw) if cw == cv => return Err(CertError::PropertyViolated),
                        _ => {}
                    }
                }
            }
        }
        Ok(Labeling::new(
            g.edges()
                .map(|(_, e)| BipartiteLabel {
                    cu: color[e.u.index()].unwrap(),
                    cv: color[e.v.index()].unwrap(),
                })
                .collect(),
        ))
    }

    /// Every incident edge must carry two distinct colours, and the colour
    /// on my side must be the same across my edges. (Which side is "mine"
    /// is resolved by consistency: there must exist a colour `c` such that
    /// every incident edge has one endpoint coloured `c` and the other
    /// `!c`.)
    fn verify_at(&self, view: &VertexView<BipartiteLabel>) -> Verdict {
        if view.incident.is_empty() {
            return Verdict::Accept; // K1
        }
        for c in [false, true] {
            let ok = view.incident.iter().all(|l| match l {
                Some(l) => l.cu != l.cv && (l.cu == c || l.cv == c),
                None => false,
            });
            if ok {
                return Verdict::Accept;
            }
        }
        Verdict::reject("no consistent 2-colouring locally")
    }
}

/// The trivial scheme's label: every edge carries the entire configuration
/// (vertex ids + edge list), `O((n + m) log n)` bits, plus the index of
/// the claimed edge this label physically sits on. The index ties each
/// claimed edge to a real edge at both endpoints, so a claim cannot
/// re-route edges among the real vertices (see
/// [`WholeGraphScheme::verify_at`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WholeGraphLabel {
    /// All vertex identifiers.
    pub ids: Vec<u64>,
    /// All edges as id pairs.
    pub edges: Vec<(u64, u64)>,
    /// Index into `edges` of the claimed edge carried by this label.
    pub edge_index: u64,
}

impl Enc for WholeGraphLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.ids.enc(w);
        self.edges.enc(w);
        self.edge_index.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            ids: Enc::dec(r)?,
            edges: Enc::dec(r)?,
            edge_index: Enc::dec(r)?,
        })
    }
}

/// A global predicate on the claimed graph, shared by clones of the
/// scheme.
pub type WholeGraphPredicate = Arc<dyn Fn(&WholeGraphLabel) -> bool + Send + Sync>;

/// The trivial whole-graph scheme, with `Θ((n + m) log n)`-bit labels —
/// the size yardstick of table T1.
///
/// Each vertex checks that all its incident labels agree on the claim,
/// that the edge-index tags on its incident edges are exactly the claimed
/// edges at its identifier (binding the claimed edge set over the real
/// vertices to the physical edge set), that no claimed vertex is
/// edge-less, and that the caller-supplied global predicate holds on the
/// claimed graph.
///
/// Soundness caveat (inherent to purely local verification without a
/// counting argument): the claim is bound to the real graph only where
/// edges exist. A claim may still append fabricated components disjoint
/// from every real vertex, and — because isolated real vertices see no
/// labels and accept unconditionally (the K1 rule) — it may equally omit
/// isolated real vertices. The scheme is therefore sound only for
/// properties that neither adding nor removing a disjoint component can
/// turn from false to true on the model's *connected* configurations
/// (where isolated vertices occur only as K1). Binding `n` exactly needs
/// the classic spanning-tree counting construction — out of scope for a
/// yardstick.
#[derive(Clone)]
pub struct WholeGraphScheme {
    check: WholeGraphPredicate,
    property: String,
    /// Largest configuration (vertex count) this instance can certify;
    /// the honest prover refuses bigger ones with
    /// [`CertError::InvalidSpec`] — never with a property refusal.
    capacity: usize,
}

impl WholeGraphScheme {
    /// Structural bound on claim sizes the verifier will scan (its fields
    /// come from adversarial labels). The prover refuses configurations
    /// beyond it, keeping the completeness contract intact.
    pub const MAX_CLAIM_SIZE: usize = 1 << 16;

    /// Claimed-graph size the [`WholeGraphScheme::for_algebra`] predicate
    /// accepts. The evaluation keeps every claimed vertex as a live
    /// boundary slot, and the workspace's bitmask-backed algebras
    /// (matching, weight, colorability, …) support at most 32 slots — a
    /// larger claim must be rejected, not evaluated, or the algebra would
    /// be driven past its slot capacity by adversarial labels.
    pub const MAX_ALGEBRA_CLAIM: usize = 32;

    /// A scheme deciding membership with an explicit predicate over the
    /// claimed graph.
    pub fn with_predicate(
        property: impl Into<String>,
        check: impl Fn(&WholeGraphLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            check: Arc::new(check),
            property: property.into(),
            capacity: Self::MAX_CLAIM_SIZE,
        }
    }

    /// A scheme deciding the property of a homomorphism algebra by
    /// evaluating it linearly over the claimed graph.
    ///
    /// Capacity is capped at [`Self::MAX_ALGEBRA_CLAIM`] vertices: larger
    /// honest configurations are refused at prove time with
    /// [`CertError::InvalidSpec`], and larger *claims* are rejected by the
    /// verifier — so this constructor suits small networks; use
    /// [`WholeGraphScheme::with_predicate`] with a direct graph check for
    /// larger configurations.
    pub fn for_algebra(alg: SharedAlgebra) -> Self {
        let name = alg.name();
        let mut scheme = Self::with_predicate(name, move |label| {
            let n = label.ids.len();
            if n > Self::MAX_ALGEBRA_CLAIM || label.edges.len() > n * (n + 1) / 2 {
                return false; // beyond the algebra's slot capacity
            }
            let mut pos = std::collections::HashMap::new();
            for (i, &id) in label.ids.iter().enumerate() {
                if pos.insert(id, i).is_some() {
                    return false; // duplicate claimed identifier
                }
            }
            let mut s = alg.empty();
            for _ in &label.ids {
                s = alg.add_vertex(s, 0);
            }
            for &(a, b) in &label.edges {
                let (Some(&u), Some(&v)) = (pos.get(&a), pos.get(&b)) else {
                    return false; // edge endpoint not in the id list
                };
                s = alg.add_edge(s, u, v, true);
            }
            alg.accept(&s)
        });
        scheme.capacity = Self::MAX_ALGEBRA_CLAIM;
        scheme
    }

    /// A scheme whose predicate accepts everything (pure size yardstick).
    pub fn trivially_true() -> Self {
        Self::with_predicate("true", |_| true)
    }

    /// Builds the honest whole-graph label for a configuration (the label
    /// of edge 0; edge `e` carries the same claim with `edge_index = e`).
    pub fn label_of(cfg: &Configuration) -> WholeGraphLabel {
        let g = cfg.graph();
        WholeGraphLabel {
            ids: g.vertices().map(|v| cfg.id_of(v)).collect(),
            edges: g
                .edges()
                .map(|(_, e)| (cfg.id_of(e.u), cfg.id_of(e.v)))
                .collect(),
            edge_index: 0,
        }
    }
}

impl std::fmt::Debug for WholeGraphScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WholeGraphScheme")
            .field("property", &self.property)
            .finish()
    }
}

impl Scheme for WholeGraphScheme {
    type Label = WholeGraphLabel;

    fn name(&self) -> String {
        format!("whole-graph({})", self.property)
    }

    fn prove(
        &self,
        cfg: &Configuration,
        _hint: &ProverHint,
    ) -> Result<Labeling<WholeGraphLabel>, CertError> {
        let g = cfg.graph();
        // An isolated vertex alongside other vertices means the model's
        // connectivity requirement fails — and the verifier's
        // no-edge-less-claimed-vertex rule would reject the honest claim,
        // so refuse upfront to keep the completeness contract.
        if g.vertex_count() > 1 && g.vertices().any(|v| g.degree(v) == 0) {
            return Err(CertError::Disconnected);
        }
        // Capacity limits are a scheme limitation, not a property
        // refusal: surface them as a non-refusal error so batch reports
        // and callers branching on PropertyViolated stay truthful.
        if g.vertex_count() > self.capacity || g.edge_count() > Self::MAX_CLAIM_SIZE {
            return Err(CertError::InvalidSpec(format!(
                "{} supports at most {} vertices / {} edges; got {} / {}",
                Scheme::name(self),
                self.capacity,
                Self::MAX_CLAIM_SIZE,
                g.vertex_count(),
                g.edge_count(),
            )));
        }
        let label = Self::label_of(cfg);
        if !(self.check)(&label) {
            return Err(CertError::PropertyViolated);
        }
        Ok(Labeling::new(
            (0..cfg.graph().edge_count() as u64)
                .map(|edge_index| WholeGraphLabel {
                    edge_index,
                    ..label.clone()
                })
                .collect(),
        ))
    }

    fn verify_at(&self, view: &VertexView<WholeGraphLabel>) -> Verdict {
        if view.incident.is_empty() {
            return Verdict::Accept; // isolated vertex: K1
        }
        let mut labels: Vec<&WholeGraphLabel> = Vec::with_capacity(view.incident.len());
        for l in view.incident {
            match l {
                Some(l) => labels.push(*l),
                None => return Verdict::reject("undecodable whole-graph label"),
            }
        }
        let first = labels[0];
        // Bound the verifier's own scans over the claim (its fields come
        // from adversarial labels). The prover refuses configurations
        // beyond the same bound, so honest labelings are never rejected
        // here.
        if first.ids.len() > Self::MAX_CLAIM_SIZE || first.edges.len() > Self::MAX_CLAIM_SIZE {
            return Verdict::reject("claimed graph implausibly large");
        }
        if labels
            .iter()
            .any(|l| l.ids != first.ids || l.edges != first.edges)
        {
            return Verdict::reject("inconsistent whole-graph labels");
        }
        {
            let mut sorted = first.ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != first.ids.len() {
                return Verdict::reject("claimed identifiers not distinct");
            }
        }
        // No locally-unverifiable edge-less claimed vertices.
        for &id in &first.ids {
            if !first.edges.iter().any(|&(a, b)| a == id || b == id) {
                return Verdict::reject("claimed vertex with no claimed edge");
            }
        }
        // The edge-index tags on my incident edges must be exactly the
        // claimed edges at my identifier, each once. Both endpoints of
        // every real edge check this, so a claimed edge between real
        // vertices exists iff the real edge does.
        let mut expected: Vec<u64> = first
            .edges
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| a == view.id || b == view.id)
            .map(|(i, _)| i as u64)
            .collect();
        let mut seen: Vec<u64> = labels.iter().map(|l| l.edge_index).collect();
        expected.sort_unstable();
        seen.sort_unstable();
        if seen != expected {
            return Verdict::reject("claimed edges at my id do not match my real edges");
        }
        if !(self.check)(first) {
            return Verdict::reject("global predicate fails on claimed graph");
        }
        Verdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_algebra::{props::Connected, Algebra};
    use lanecert_graph::generators;

    #[test]
    fn bipartite_scheme_completeness_and_size() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(8));
        let report = BipartiteScheme
            .certify_and_run(&cfg, &ProverHint::auto())
            .unwrap();
        assert!(report.accepted());
        assert_eq!(report.max_label_bits, 2); // the paper's "one bit" scheme
    }

    #[test]
    fn bipartite_prover_refuses_odd_cycle() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        assert_eq!(
            BipartiteScheme
                .prove(&cfg, &ProverHint::auto())
                .unwrap_err(),
            CertError::PropertyViolated
        );
    }

    #[test]
    fn bipartite_soundness_under_corruption() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(8));
        let mut labels = BipartiteScheme.prove(&cfg, &ProverHint::auto()).unwrap();
        labels[0].cu = labels[0].cv; // monochromatic edge
        let report = BipartiteScheme.run(&cfg, &labels).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn whole_graph_scheme_works() {
        let scheme = WholeGraphScheme::with_predicate("5 edges", |l| l.edges.len() == 5);
        let cfg = Configuration::with_sequential_ids(generators::star(6));
        let report = scheme.certify_and_run(&cfg, &ProverHint::auto()).unwrap();
        assert!(report.accepted());
        // Size grows with the graph: Θ((n + m) log n).
        assert!(report.max_label_bits > 50);
    }

    #[test]
    fn whole_graph_algebra_predicate_matches_truth() {
        let scheme = WholeGraphScheme::for_algebra(Algebra::shared(Connected));
        let yes = Configuration::with_sequential_ids(generators::cycle_graph(5));
        assert!(scheme
            .certify_and_run(&yes, &ProverHint::auto())
            .unwrap()
            .accepted());
        let no = Configuration::with_sequential_ids(
            lanecert_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap(),
        );
        assert_eq!(
            scheme.prove(&no, &ProverHint::auto()).unwrap_err(),
            CertError::PropertyViolated
        );
    }

    #[test]
    fn whole_graph_refuses_isolated_vertices_instead_of_self_rejecting() {
        // An isolated vertex next to an edge: the prover must refuse
        // (Disconnected) rather than emit a labeling its own verifier
        // rejects.
        let g = lanecert_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        let cfg = Configuration::with_sequential_ids(g);
        let scheme = WholeGraphScheme::trivially_true();
        assert_eq!(
            scheme.prove(&cfg, &ProverHint::auto()).unwrap_err(),
            CertError::Disconnected
        );
    }

    #[test]
    fn whole_graph_capacity_is_not_a_property_refusal() {
        // A 40-vertex connected cycle is a yes-instance; the algebra
        // evaluation just cannot hold 40 boundary slots. That must read
        // as a scheme-capacity error, never "property violated".
        let scheme = WholeGraphScheme::for_algebra(Algebra::shared(Connected));
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(40));
        let err = scheme.prove(&cfg, &ProverHint::auto()).unwrap_err();
        assert!(matches!(err, CertError::InvalidSpec(_)), "{err:?}");
        assert!(!err.is_refusal());
    }

    #[test]
    fn whole_graph_rejects_forged_claim() {
        // Present labels claiming a different (accepted) graph: the
        // edge-binding checks catch the forgery.
        let scheme = WholeGraphScheme::trivially_true();
        let cfg = Configuration::with_sequential_ids(generators::path_graph(4));
        let mut labels = scheme.prove(&cfg, &ProverHint::auto()).unwrap();
        for l in labels.as_mut_slice() {
            l.edges.pop(); // drop one claimed edge everywhere
        }
        let report = scheme.run(&cfg, &labels).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn whole_graph_rejects_rerouted_claim_with_fabricated_vertex() {
        // Real network: C5 (not bipartite). Adversarial claim: C6 over ids
        // 0..=5 (id 5 fabricated), preserving every real vertex's degree.
        // The edge-index binding must catch it.
        let scheme =
            WholeGraphScheme::for_algebra(Algebra::shared(lanecert_algebra::props::Bipartite));
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let claim_edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)];
        let forged: Vec<WholeGraphLabel> = (0..cfg.graph().edge_count() as u64)
            .map(|edge_index| WholeGraphLabel {
                ids: (0..=5).collect(),
                edges: claim_edges.clone(),
                edge_index,
            })
            .collect();
        let report = scheme.run(&cfg, &forged).unwrap();
        assert!(
            !report.accepted(),
            "re-routed claim certified bipartiteness on an odd cycle"
        );
    }

    #[test]
    fn whole_graph_rejects_all_undecodable_labels() {
        // A never-true predicate plus garbage labels everywhere must not
        // be accepted (the old first-label guard treated Some(None) as an
        // isolated vertex).
        use crate::erased::{BoxedScheme, EncodedLabel, EncodedLabeling};
        let scheme: BoxedScheme = Box::new(WholeGraphScheme::with_predicate("never", |_| false));
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let garbage = EncodedLabeling::new(vec![
            EncodedLabel {
                bytes: vec![0xFF],
                bits: 8,
            };
            5
        ]);
        let report = scheme.verify_encoded(&cfg, &garbage).unwrap();
        assert!(!report.accepted());
        assert_eq!(report.reject_count(), 5);
    }
}
