//! Small classic schemes: the paper's 1-bit bipartiteness example and the
//! trivial whole-graph scheme (both used as reference points in the
//! experiment tables).

use lanecert_graph::VertexId;

use crate::bits::{BitReader, BitWriter, Enc};
use crate::scheme::{run_edge_scheme, RunReport, Verdict, VertexView};
use crate::Configuration;

/// The 1-bit bipartiteness label: the colour of the edge's smaller-id
/// endpoint (the other endpoint's colour is its negation on a properly
/// coloured edge, so one bit plus the endpoint ids suffices — we keep just
/// the two colours to stay at two bits and avoid id overhead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteLabel {
    /// Colour of endpoint `u` (insertion order).
    pub cu: bool,
    /// Colour of endpoint `v`.
    pub cv: bool,
}

impl Enc for BipartiteLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.cu.enc(w);
        self.cv.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            cu: Enc::dec(r)?,
            cv: Enc::dec(r)?,
        })
    }
}

/// Honest bipartiteness prover: BFS 2-colouring.
///
/// Returns `None` when the graph is not bipartite (prover refuses).
pub fn prove_bipartite(cfg: &Configuration) -> Option<Vec<BipartiteLabel>> {
    let g = cfg.graph();
    let mut color = vec![None::<bool>; g.vertex_count()];
    for s in g.vertices() {
        if color[s.index()].is_some() {
            continue;
        }
        color[s.index()] = Some(false);
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            let cv = color[v.index()].unwrap();
            for w in g.neighbors(v) {
                match color[w.index()] {
                    None => {
                        color[w.index()] = Some(!cv);
                        queue.push_back(w);
                    }
                    Some(cw) if cw == cv => return None,
                    _ => {}
                }
            }
        }
    }
    Some(
        g.edges()
            .map(|(_, e)| BipartiteLabel {
                cu: color[e.u.index()].unwrap(),
                cv: color[e.v.index()].unwrap(),
            })
            .collect(),
    )
}

/// Verifies bipartiteness labels at a vertex: every incident edge must
/// carry two distinct colours, and the colour on my side must be the same
/// across my edges. (Which side is "mine" is resolved by consistency: there
/// must exist a colour `c` such that every incident edge has one endpoint
/// coloured `c` and the other `!c`.)
pub fn verify_bipartite_at(
    _cfg: &Configuration,
    _v: VertexId,
    view: &VertexView<BipartiteLabel>,
) -> Verdict {
    for c in [false, true] {
        let ok = view.incident.iter().all(|l| match l {
            Some(l) => l.cu != l.cv && (l.cu == c || l.cv == c),
            None => false,
        });
        if ok {
            return Verdict::Accept;
        }
    }
    if view.incident.is_empty() {
        return Verdict::Accept;
    }
    Verdict::reject("no consistent 2-colouring locally")
}

/// Runs the bipartite scheme end to end (test/experiment helper).
///
/// Returns `None` if the prover refuses.
pub fn run_bipartite(cfg: &Configuration) -> Option<RunReport> {
    let labels = prove_bipartite(cfg)?;
    Some(run_edge_scheme(cfg, &labels, verify_bipartite_at))
}

/// The trivial scheme: every edge carries the entire configuration
/// (vertex ids + edge list), `O((n + m) log n)` bits. Sound and complete
/// for *any* decidable property; used as the size yardstick in T1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WholeGraphLabel {
    /// All vertex identifiers.
    pub ids: Vec<u64>,
    /// All edges as id pairs.
    pub edges: Vec<(u64, u64)>,
}

impl Enc for WholeGraphLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.ids.enc(w);
        self.edges.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            ids: Enc::dec(r)?,
            edges: Enc::dec(r)?,
        })
    }
}

/// Builds the whole-graph labels.
pub fn prove_whole_graph(cfg: &Configuration) -> Vec<WholeGraphLabel> {
    let g = cfg.graph();
    let label = WholeGraphLabel {
        ids: g.vertices().map(|v| cfg.id_of(v)).collect(),
        edges: g
            .edges()
            .map(|(_, e)| (cfg.id_of(e.u), cfg.id_of(e.v)))
            .collect(),
    };
    vec![label; g.edge_count()]
}

/// Verifies the whole-graph labels at a vertex, checking a caller-supplied
/// global predicate on the claimed graph plus local consistency (all
/// incident labels equal; my incident edges match the claim).
pub fn verify_whole_graph_at(
    cfg: &Configuration,
    v: VertexId,
    view: &VertexView<WholeGraphLabel>,
    predicate: &dyn Fn(&WholeGraphLabel) -> bool,
) -> Verdict {
    let Some(Some(first)) = view.incident.first().cloned() else {
        return Verdict::Accept; // isolated vertex: K1
    };
    for l in &view.incident {
        match l {
            Some(l) if *l == first => {}
            _ => return Verdict::reject("inconsistent whole-graph labels"),
        }
    }
    let my_deg_claimed = first
        .edges
        .iter()
        .filter(|&&(a, b)| a == view.id || b == view.id)
        .count();
    if my_deg_claimed != cfg.graph().degree(v) {
        return Verdict::reject("claimed degree mismatch");
    }
    if !predicate(&first) {
        return Verdict::reject("global predicate fails on claimed graph");
    }
    Verdict::Accept
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    #[test]
    fn bipartite_scheme_completeness_and_size() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(8));
        let report = run_bipartite(&cfg).unwrap();
        assert!(report.accepted());
        assert_eq!(report.max_label_bits, 2); // the paper's "one bit" scheme
    }

    #[test]
    fn bipartite_prover_refuses_odd_cycle() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        assert!(prove_bipartite(&cfg).is_none());
    }

    #[test]
    fn bipartite_soundness_under_corruption() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(8));
        let mut labels = prove_bipartite(&cfg).unwrap();
        labels[0].cu = labels[0].cv; // monochromatic edge
        let report = run_edge_scheme(&cfg, &labels, verify_bipartite_at);
        assert!(!report.accepted());
    }

    #[test]
    fn whole_graph_scheme_works() {
        let cfg = Configuration::with_sequential_ids(generators::star(6));
        let labels = prove_whole_graph(&cfg);
        let report = run_edge_scheme(&cfg, &labels, |c, v, view| {
            verify_whole_graph_at(c, v, view, &|l| l.edges.len() == 5)
        });
        assert!(report.accepted());
        // Size grows with the graph: Θ((n + m) log n).
        assert!(report.max_label_bits > 50);
    }
}
