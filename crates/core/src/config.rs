//! Network configurations: a connected graph plus distinct vertex
//! identifiers (the state assignment of Section 1.1).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use lanecert_graph::{CsrGraph, Graph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A configuration `(G, s)`: the communication graph together with each
/// processor's `O(log n)`-bit distinct identifier.
#[derive(Clone, Debug)]
pub struct Configuration {
    graph: Graph,
    ids: Vec<u64>,
    by_id: HashMap<u64, VertexId>,
    /// The frozen CSR arena of `graph`, built on first use and shared by
    /// clones made afterwards (verification shards all borrow one arena).
    csr: OnceLock<Arc<CsrGraph>>,
}

impl Configuration {
    /// Wraps a graph with explicit identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids` has the wrong length or repeats a value.
    pub fn new(graph: Graph, ids: Vec<u64>) -> Self {
        assert_eq!(ids.len(), graph.vertex_count(), "one id per vertex");
        let mut by_id = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let prev = by_id.insert(id, VertexId::new(i));
            assert!(prev.is_none(), "duplicate identifier {id}");
        }
        Self {
            graph,
            ids,
            by_id,
            csr: OnceLock::new(),
        }
    }

    /// Sequential identifiers `0..n` (the minimal `O(log n)`-bit choice).
    pub fn with_sequential_ids(graph: Graph) -> Self {
        let ids = (0..graph.vertex_count() as u64).collect();
        Self::new(graph, ids)
    }

    /// Random distinct identifiers drawn from `[0, n²)` — `2 log n` bits,
    /// the realistic regime for the experiments.
    pub fn with_random_ids(graph: Graph, seed: u64) -> Self {
        let n = graph.vertex_count() as u64;
        let bound = (n * n).max(16);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut used = std::collections::HashSet::new();
        let ids = (0..n)
            .map(|_| loop {
                let id = rng.random_range(0..bound);
                if used.insert(id) {
                    break id;
                }
            })
            .collect();
        Self::new(graph, ids)
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The graph frozen into its compressed-sparse-row arena — the layout
    /// the verification hot path streams (see [`lanecert_graph::csr`]).
    /// Built lazily on first call; subsequent calls (and clones taken
    /// afterwards) share the same arena.
    pub fn csr(&self) -> &CsrGraph {
        self.csr
            .get_or_init(|| Arc::new(CsrGraph::from_graph(&self.graph)))
    }

    /// The identifier of vertex `v`.
    pub fn id_of(&self, v: VertexId) -> u64 {
        self.ids[v.index()]
    }

    /// The vertex carrying identifier `id`, if any.
    pub fn vertex_of(&self, id: u64) -> Option<VertexId> {
        self.by_id.get(&id).copied()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.vertex_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;

    #[test]
    fn sequential_ids() {
        let cfg = Configuration::with_sequential_ids(generators::path_graph(4));
        assert_eq!(cfg.id_of(VertexId(2)), 2);
        assert_eq!(cfg.vertex_of(3), Some(VertexId(3)));
        assert_eq!(cfg.vertex_of(9), None);
    }

    #[test]
    fn random_ids_are_distinct() {
        let cfg = Configuration::with_random_ids(generators::cycle_graph(20), 1);
        let mut seen = std::collections::HashSet::new();
        for v in cfg.graph().vertices() {
            assert!(seen.insert(cfg.id_of(v)));
            assert_eq!(cfg.vertex_of(cfg.id_of(v)), Some(v));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate identifier")]
    fn rejects_duplicates() {
        let _ = Configuration::new(generators::path_graph(2), vec![5, 5]);
    }
}
