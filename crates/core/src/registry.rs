//! A name-keyed registry of scheme factories.
//!
//! Each entry maps a stable name (used by the bench tables, CLI flags and
//! the [`Certifier`](crate::Certifier) builder) to a factory that builds a
//! [`BoxedScheme`] from a [`SchemeSpec`]. [`SchemeRegistry::standard`]
//! registers all three scheme families of the workspace:
//!
//! | name | scheme | labels |
//! |------|--------|--------|
//! | [`THEOREM1`] | the paper's Theorem 1 scheme | `O(log n)` bits |
//! | [`FMR_BASELINE`] | FMR+24-style balanced-recursion baseline | `O(log² n)` bits |
//! | [`BIPARTITE_1BIT`] | the classic 1-bit bipartiteness scheme | 2 bits |
//! | [`WHOLE_GRAPH`] | trivial whole-graph yardstick | `Θ((n+m) log n)` bits |
//! | [`COMPILED`] | Courcelle front-end over an MSO₂ formula | `O(log n)` bits |
//!
//! Future backends (e.g. a treewidth meta-theorem scheme in the style of
//! Cook–Kim–Masařík) drop in by registering another factory — nothing
//! downstream of the registry changes.

use std::collections::BTreeMap;

use lanecert_algebra::SharedAlgebra;
use lanecert_lanes::LaneStrategy;

use crate::baseline::BaselineScheme;
use crate::erased::BoxedScheme;
use crate::simple::{BipartiteScheme, WholeGraphScheme};
use crate::theorem1::{PathwidthScheme, SchemeOptions};
use crate::CertError;

/// Registry name of the Theorem 1 scheme.
pub const THEOREM1: &str = "theorem1";
/// Registry name of the FMR+24-style `O(log² n)` baseline.
pub const FMR_BASELINE: &str = "fmr-baseline";
/// Registry name of the classic 1-bit bipartiteness scheme.
pub const BIPARTITE_1BIT: &str = "bipartite-1bit";
/// Registry name of the trivial whole-graph yardstick scheme.
pub const WHOLE_GRAPH: &str = "whole-graph";
/// Registry name of the compiled-formula (Courcelle front-end) scheme.
pub const COMPILED: &str = "compiled";

/// What a scheme factory may consume: the property, the pathwidth bound,
/// and tuning knobs. Factories ignore fields they don't need and reject
/// specs missing fields they do ([`CertError::InvalidSpec`]).
#[derive(Clone, Default)]
pub struct SchemeSpec {
    /// The property `ϕ` as a homomorphism algebra. Required by
    /// [`THEOREM1`] and [`WHOLE_GRAPH`]; ignored by the structural
    /// schemes.
    pub algebra: Option<SharedAlgebra>,
    /// Certify `pathwidth ≤ k`. Required by [`THEOREM1`] unless
    /// `max_lanes` is given.
    pub pathwidth: Option<usize>,
    /// Lane-partition strategy for [`THEOREM1`] (`None` = greedy).
    pub strategy: Option<LaneStrategy>,
    /// Explicit verifier lane bound, overriding `pathwidth + 1`.
    pub max_lanes: Option<usize>,
    /// An MSO₂ formula for the [`COMPILED`] scheme (which certifies the
    /// formula via the Courcelle-style compiler). Rejected by every
    /// other factory.
    pub formula: Option<lanecert_mso::Formula>,
}

impl std::fmt::Debug for SchemeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeSpec")
            .field("algebra", &self.algebra.as_ref().map(|a| a.name()))
            .field("pathwidth", &self.pathwidth)
            .field("strategy", &self.strategy)
            .field("max_lanes", &self.max_lanes)
            .field(
                "formula",
                &self.formula.as_ref().map(lanecert_mso::sexpr::canonical),
            )
            .finish()
    }
}

impl SchemeSpec {
    fn require_algebra(&self, scheme: &str) -> Result<SharedAlgebra, CertError> {
        self.algebra.clone().ok_or_else(|| {
            CertError::InvalidSpec(format!(
                "{scheme} needs a property algebra (.property(...))"
            ))
        })
    }

    /// Rejects width/strategy knobs a scheme does not enforce — a spec
    /// that appears to certify a pathwidth bound must fail loudly rather
    /// than build a certifier that silently ignores it.
    fn reject_width_knobs(&self, scheme: &str) -> Result<(), CertError> {
        if self.pathwidth.is_some() || self.max_lanes.is_some() || self.strategy.is_some() {
            return Err(CertError::InvalidSpec(format!(
                "{scheme} certifies no pathwidth bound and has no lane strategy; \
                 drop .pathwidth(...) / .max_lanes(...) / .strategy(...)"
            )));
        }
        Ok(())
    }

    /// Rejects a spec carrying a formula when the scheme is not the
    /// compiled front-end — a formula the built certifier would not
    /// certify must fail loudly.
    fn reject_formula(&self, scheme: &str) -> Result<(), CertError> {
        if let Some(f) = &self.formula {
            return Err(CertError::InvalidSpec(format!(
                "{scheme} does not certify MSO formulas (got {}); use the \
                 {COMPILED:?} scheme or drop .compiled(...)",
                lanecert_mso::sexpr::canonical(f)
            )));
        }
        Ok(())
    }
}

/// A factory building an erased scheme from a spec.
pub type SchemeFactory = Box<dyn Fn(&SchemeSpec) -> Result<BoxedScheme, CertError> + Send + Sync>;

/// Name → factory map. The order of [`SchemeRegistry::names`] is the
/// lexicographic key order (deterministic for table output).
#[derive(Default)]
pub struct SchemeRegistry {
    factories: BTreeMap<String, SchemeFactory>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry with all built-in schemes registered.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(THEOREM1, |spec: &SchemeSpec| {
            spec.reject_formula(THEOREM1)?;
            let algebra = spec.require_algebra(THEOREM1)?;
            let max_lanes = match (spec.max_lanes, spec.pathwidth) {
                (Some(w), _) => w,
                (None, Some(k)) => k + 1,
                (None, None) => {
                    return Err(CertError::InvalidSpec(
                        "theorem1 needs .pathwidth(k) or .max_lanes(w)".into(),
                    ))
                }
            };
            let opts = SchemeOptions {
                strategy: spec.strategy.unwrap_or(LaneStrategy::Greedy),
                max_lanes,
            };
            Ok(Box::new(PathwidthScheme::new(algebra, opts)) as BoxedScheme)
        });
        reg.register(FMR_BASELINE, |spec: &SchemeSpec| {
            // This baseline only certifies decomposition *structure*; a
            // spec carrying a property algebra must fail loudly rather
            // than appear to certify the property.
            if let Some(alg) = &spec.algebra {
                return Err(CertError::InvalidSpec(format!(
                    "fmr-baseline is structural and does not certify {:?}; drop .property(...)",
                    alg.name()
                )));
            }
            spec.reject_width_knobs(FMR_BASELINE)?;
            spec.reject_formula(FMR_BASELINE)?;
            Ok(Box::new(BaselineScheme) as BoxedScheme)
        });
        reg.register(BIPARTITE_1BIT, |spec: &SchemeSpec| {
            // The 1-bit scheme certifies exactly bipartiteness; reject
            // specs asking it to certify anything else.
            if let Some(alg) = &spec.algebra {
                if alg.name() != "bipartite" {
                    return Err(CertError::InvalidSpec(format!(
                        "bipartite-1bit certifies bipartiteness, not {:?}",
                        alg.name()
                    )));
                }
            }
            spec.reject_width_knobs(BIPARTITE_1BIT)?;
            spec.reject_formula(BIPARTITE_1BIT)?;
            Ok(Box::new(BipartiteScheme) as BoxedScheme)
        });
        reg.register(WHOLE_GRAPH, |spec: &SchemeSpec| {
            let algebra = spec.require_algebra(WHOLE_GRAPH)?;
            spec.reject_width_knobs(WHOLE_GRAPH)?;
            spec.reject_formula(WHOLE_GRAPH)?;
            Ok(Box::new(WholeGraphScheme::for_algebra(algebra)) as BoxedScheme)
        });
        reg.register(COMPILED, |spec: &SchemeSpec| {
            let Some(formula) = &spec.formula else {
                return Err(CertError::InvalidSpec(
                    "compiled needs an MSO formula (.compiled(...))".into(),
                ));
            };
            // A hand-written algebra alongside a formula is ambiguous:
            // the scheme would certify the formula and silently drop the
            // algebra.
            if let Some(alg) = &spec.algebra {
                return Err(CertError::InvalidSpec(format!(
                    "compiled certifies its formula, not the algebra {:?}; drop .property(...)",
                    alg.name()
                )));
            }
            let max_lanes = match (spec.max_lanes, spec.pathwidth) {
                (Some(w), _) => w,
                (None, Some(k)) => k + 1,
                (None, None) => crate::compiled::DEFAULT_MAX_LANES,
            };
            let opts = SchemeOptions {
                strategy: spec.strategy.unwrap_or(LaneStrategy::Greedy),
                max_lanes,
            };
            let freeze = crate::compiled::freeze_options_for(formula, max_lanes);
            let scheme = crate::compiled::compile_scheme(formula, opts, &freeze)?;
            Ok(Box::new(scheme) as BoxedScheme)
        });
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&SchemeSpec) -> Result<BoxedScheme, CertError> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Builds the scheme registered under `name`.
    ///
    /// # Errors
    ///
    /// [`CertError::UnknownScheme`] for unregistered names; factory errors
    /// (typically [`CertError::InvalidSpec`]) otherwise.
    pub fn build(&self, name: &str, spec: &SchemeSpec) -> Result<BoxedScheme, CertError> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| CertError::UnknownScheme { name: name.into() })?;
        factory(spec)
    }

    /// Registered names, in lexicographic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProverHint;
    use crate::Configuration;
    use lanecert_algebra::{props::Connected, Algebra};
    use lanecert_graph::generators;

    fn spec() -> SchemeSpec {
        SchemeSpec {
            algebra: Some(Algebra::shared(Connected)),
            pathwidth: Some(2),
            ..SchemeSpec::default()
        }
    }

    #[test]
    fn standard_names_present() {
        let reg = SchemeRegistry::standard();
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(
            names,
            vec![
                BIPARTITE_1BIT,
                COMPILED,
                FMR_BASELINE,
                THEOREM1,
                WHOLE_GRAPH
            ]
        );
        assert!(reg.contains(THEOREM1));
        assert!(reg.contains(COMPILED));
    }

    #[test]
    fn all_standard_schemes_build_and_run() {
        let reg = SchemeRegistry::standard();
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(6));
        let cases = [
            (THEOREM1, spec()),
            (FMR_BASELINE, SchemeSpec::default()),
            (
                BIPARTITE_1BIT,
                SchemeSpec {
                    algebra: Some(Algebra::shared(lanecert_algebra::props::Bipartite)),
                    ..SchemeSpec::default()
                },
            ),
            (
                WHOLE_GRAPH,
                SchemeSpec {
                    algebra: Some(Algebra::shared(Connected)),
                    ..SchemeSpec::default()
                },
            ),
        ];
        for (name, spec) in cases {
            let scheme = reg.build(name, &spec).unwrap();
            let enc = scheme.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
            let report = scheme.verify_encoded(&cfg, &enc).unwrap();
            assert!(report.accepted(), "{name}: {:?}", report.first_rejection());
        }
        // The compiled scheme defaults to max_lanes = 2 (pathwidth ≤ 1),
        // so it gets a path rather than the cycle above; the formula is
        // one of the catalog's cheapest freezes (the middle vertex of P3
        // is a vertex cover of size 1).
        let compiled_spec = SchemeSpec {
            formula: Some(lanecert_mso::props::vertex_cover_at_most(1)),
            ..SchemeSpec::default()
        };
        let path = Configuration::with_sequential_ids(generators::path_graph(3));
        let scheme = reg.build(COMPILED, &compiled_spec).unwrap();
        let enc = scheme.prove_encoded(&path, &ProverHint::auto()).unwrap();
        let report = scheme.verify_encoded(&path, &enc).unwrap();
        assert!(
            report.accepted(),
            "compiled: {:?}",
            report.first_rejection()
        );
    }

    #[test]
    fn structural_schemes_reject_unenforced_properties() {
        let reg = SchemeRegistry::standard();
        // fmr-baseline certifies structure only.
        assert!(matches!(
            reg.build(FMR_BASELINE, &spec()).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        // bipartite-1bit certifies bipartiteness, nothing else.
        assert!(matches!(
            reg.build(BIPARTITE_1BIT, &spec()).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        // Width/strategy knobs are equally unenforced by the structural
        // and whole-graph schemes.
        let width_only = SchemeSpec {
            pathwidth: Some(2),
            ..SchemeSpec::default()
        };
        assert!(matches!(
            reg.build(FMR_BASELINE, &width_only).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        assert!(matches!(
            reg.build(BIPARTITE_1BIT, &width_only).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        assert!(matches!(
            reg.build(WHOLE_GRAPH, &spec()).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
    }

    #[test]
    fn formula_and_algebra_do_not_cross_schemes() {
        let reg = SchemeRegistry::standard();
        // A formula on a non-compiled scheme must fail loudly.
        let with_formula = SchemeSpec {
            algebra: Some(Algebra::shared(Connected)),
            pathwidth: Some(2),
            formula: Some(lanecert_mso::props::triangle_free()),
            ..SchemeSpec::default()
        };
        assert!(matches!(
            reg.build(THEOREM1, &with_formula).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        // The compiled scheme without a formula, or with a stray
        // hand-written algebra, is equally invalid.
        assert!(matches!(
            reg.build(COMPILED, &SchemeSpec::default()).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        let ambiguous = SchemeSpec {
            algebra: Some(Algebra::shared(Connected)),
            formula: Some(lanecert_mso::props::max_degree_at_most(2)),
            ..SchemeSpec::default()
        };
        assert!(matches!(
            reg.build(COMPILED, &ambiguous).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
    }

    #[test]
    fn unknown_name_errors() {
        let reg = SchemeRegistry::standard();
        assert_eq!(
            reg.build("treewidth-ckm", &spec()).err().unwrap(),
            CertError::UnknownScheme {
                name: "treewidth-ckm".into()
            }
        );
    }

    #[test]
    fn missing_spec_fields_error() {
        let reg = SchemeRegistry::standard();
        assert!(matches!(
            reg.build(THEOREM1, &SchemeSpec::default()).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
        let no_bound = SchemeSpec {
            algebra: Some(Algebra::shared(Connected)),
            ..SchemeSpec::default()
        };
        assert!(matches!(
            reg.build(THEOREM1, &no_bound).err().unwrap(),
            CertError::InvalidSpec(_)
        ));
    }

    #[test]
    fn custom_registration() {
        let mut reg = SchemeRegistry::new();
        reg.register("bip", |_| {
            Ok(Box::new(crate::simple::BipartiteScheme) as BoxedScheme)
        });
        assert!(reg.build("bip", &SchemeSpec::default()).is_ok());
    }
}
