//! Bit-exact label encoding.
//!
//! Label *size in bits* is the complexity measure of the model, so labels
//! are serialized through a real bit stream: booleans cost one bit, numbers
//! are nibble-varints (`4` data bits + `1` continuation bit per group), and
//! containers are length-prefixed. The experiment tables report
//! `BitWriter::bit_len` of the honest labels.

/// A growable bit sink.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes and returns the raw bytes (last byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends the written bytes (last byte zero-padded) to `out`, resets
    /// the writer for reuse, and returns the flushed bit length. This is
    /// how a batch of independently-decodable labels lands in **one**
    /// contiguous buffer without a fresh allocation per label (see
    /// [`crate::EncodedLabeling::encode`]).
    pub fn flush_into(&mut self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(&self.bytes);
        let bits = self.bit_len;
        self.bytes.clear();
        self.bit_len = 0;
        bits
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        let pos = self.bit_len % 8;
        if pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            // Index-based write: the push above guarantees a last byte,
            // without an `unwrap` in this wire-facing module.
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << pos;
        }
        self.bit_len += 1;
    }

    /// Writes the low `width` bits of `value` (`width <= 64`).
    ///
    /// Works a byte at a time rather than a bit at a time: label decode
    /// and encode sit on the hot path of every verification shard, and
    /// the bit loop was the single largest cost in it.
    pub fn put_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        let mut done = 0;
        while done < width {
            let pos = self.bit_len % 8;
            if pos == 0 {
                self.bytes.push(0);
            }
            let take = (8 - pos).min(width - done);
            let chunk = ((value >> done) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.len() - 1;
            self.bytes[last] |= chunk << pos;
            self.bit_len += take;
            done += take;
        }
    }

    /// Writes a nibble-varint (unsigned LEB-style, 4 bits per group).
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0xF;
            value >>= 4;
            let more = (value != 0) as u64;
            // Wire order: continuation bit first, then the 4 group bits.
            self.put_bits(more | (group << 1), 5);
            if value == 0 {
                break;
            }
        }
    }
}

/// A bit-stream reader over bytes produced by [`BitWriter`].
///
/// Keeps a 64-bit look-ahead window refilled from the byte slice so the
/// common small reads (the 5-bit varint groups and 1-bit flags label
/// decoding is made of) are a shift and a mask, not a byte loop — label
/// decode is the single hottest loop of a verification shard.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next unread byte of `bytes`.
    next: usize,
    /// Bits already consumed from the stream.
    pos: usize,
    /// Look-ahead window; bit 0 is the next stream bit.
    window: u64,
    /// Number of valid bits in `window`.
    avail: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            next: 0,
            pos: 0,
            window: 0,
            avail: 0,
        }
    }

    /// Tops up the window from the byte slice (best effort; the window
    /// may still hold fewer than `need` bits at the end of the stream).
    #[inline]
    fn refill(&mut self) {
        if self.next + 8 <= self.bytes.len() {
            // Fast path: splice in as many whole little-endian bytes as
            // fit, masking off the bytes that stay unconsumed.
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&self.bytes[self.next..self.next + 8]);
            let word = u64::from_le_bytes(raw);
            let take = (64 - self.avail) / 8;
            let word = if take == 8 {
                word
            } else {
                word & ((1u64 << (take * 8)) - 1)
            };
            self.window |= word << self.avail;
            self.next += take;
            self.avail += take * 8;
        } else {
            while self.avail <= 56 && self.next < self.bytes.len() {
                self.window |= (self.bytes[self.next] as u64) << self.avail;
                self.next += 1;
                self.avail += 8;
            }
        }
    }

    /// Reads one bit, or `None` past the end.
    #[inline]
    pub fn get_bit(&mut self) -> Option<bool> {
        Some(self.get_bits(1)? == 1)
    }

    /// Reads `width` bits (`width <= 64`).
    #[inline]
    pub fn get_bits(&mut self, width: usize) -> Option<u64> {
        debug_assert!(width <= 64);
        if self.avail < width {
            self.refill();
            if self.avail < width {
                if self.next < self.bytes.len() {
                    // Window full of unaligned bits but `width >= 58`
                    // still doesn't fit: take the slow byte-wise path.
                    return self.get_bits_wide(width);
                }
                // Truncated stream: fail without consuming.
                return None;
            }
        }
        let out = if width == 64 {
            self.window
        } else {
            self.window & ((1u64 << width) - 1)
        };
        self.window = if width == 64 { 0 } else { self.window >> width };
        self.avail -= width;
        self.pos += width;
        Some(out)
    }

    /// Byte-wise fallback for wide reads the window can't cover (only
    /// reachable for `width >= 58` mid-stream); resynchronizes the window
    /// afterwards.
    #[cold]
    fn get_bits_wide(&mut self, width: usize) -> Option<u64> {
        if self.pos + width > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0;
        while got < width {
            let at = self.pos + got;
            let byte = self.bytes[at / 8] as u64;
            let off = at % 8;
            let take = (8 - off).min(width - got);
            out |= ((byte >> off) & ((1u64 << take) - 1)) << got;
            got += take;
        }
        self.pos += width;
        let rem = self.pos % 8;
        if rem == 0 {
            self.next = self.pos / 8;
            self.window = 0;
            self.avail = 0;
        } else {
            // Re-seed the window with the unread high bits of the byte
            // the new position falls in.
            self.next = self.pos / 8 + 1;
            self.window = (self.bytes[self.pos / 8] as u64) >> rem;
            self.avail = 8 - rem;
        }
        Some(out)
    }

    /// Reads a nibble-varint.
    pub fn get_varint(&mut self) -> Option<u64> {
        // Fast path: parse groups straight out of the window. One refill
        // gives ≥ 57 bits = 11 whole groups, enough for any value up to
        // 2^44; the loop below only re-enters `get_bits` for the rare
        // longer values or a nearly-drained stream.
        if self.avail < 10 {
            self.refill();
        }
        let mut out = 0u64;
        let mut shift = 0;
        while self.avail >= 5 {
            let g = self.window & 0x1F;
            self.window >>= 5;
            self.avail -= 5;
            self.pos += 5;
            if shift < 64 {
                out |= (g >> 1) << shift;
            }
            shift += 4;
            if g & 1 == 0 {
                return Some(out);
            }
            if shift > 64 {
                return None;
            }
        }
        // Slow tail: window drained mid-varint.
        loop {
            let g = self.get_bits(5)?;
            if shift < 64 {
                out |= (g >> 1) << shift;
            }
            shift += 4;
            if g & 1 == 0 {
                return Some(out);
            }
            if shift > 64 {
                return None;
            }
        }
    }
}

/// Types serializable to/from the bit stream.
pub trait Enc: Sized {
    /// Appends this value to the stream.
    fn enc(&self, w: &mut BitWriter);
    /// Parses a value; `None` on malformed input.
    fn dec(r: &mut BitReader<'_>) -> Option<Self>;
}

macro_rules! enc_uint {
    ($($t:ty),*) => {$(
        impl Enc for $t {
            fn enc(&self, w: &mut BitWriter) {
                w.put_varint(*self as u64);
            }
            fn dec(r: &mut BitReader<'_>) -> Option<Self> {
                <$t>::try_from(r.get_varint()?).ok()
            }
        }
    )*};
}
enc_uint!(u8, u16, u32, u64, usize);

impl Enc for bool {
    fn enc(&self, w: &mut BitWriter) {
        w.put_bit(*self);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        r.get_bit()
    }
}

impl<T: Enc> Enc for Vec<T> {
    fn enc(&self, w: &mut BitWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.enc(w);
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        let len = r.get_varint()? as usize;
        if len > 1 << 24 {
            return None; // malformed length guard
        }
        // One exact-size allocation: collecting through the `Option`
        // adapter loses the length hint and reallocates log(len) times,
        // and labels are mostly many short vectors.
        let mut out = Vec::with_capacity(len.min(1 << 12));
        for _ in 0..len {
            out.push(T::dec(r)?);
        }
        Some(out)
    }
}

impl<T: Enc + Copy + Default, const N: usize> Enc for crate::inline::InlineVec<T, N> {
    fn enc(&self, w: &mut BitWriter) {
        // Wire-identical to `Vec<T>`: length varint then the items.
        w.put_varint(self.len() as u64);
        for item in self.iter() {
            item.enc(w);
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        let len = r.get_varint()? as usize;
        if len > 1 << 24 {
            return None; // malformed length guard
        }
        let mut out = Self::new();
        for _ in 0..len {
            out.push(T::dec(r)?);
        }
        Some(out)
    }
}

impl<A: Enc, B: Enc> Enc for (A, B) {
    fn enc(&self, w: &mut BitWriter) {
        self.0.enc(w);
        self.1.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some((A::dec(r)?, B::dec(r)?))
    }
}

impl<T: Enc> Enc for Option<T> {
    fn enc(&self, w: &mut BitWriter) {
        match self {
            None => w.put_bit(false),
            Some(x) => {
                w.put_bit(true);
                x.enc(w);
            }
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.get_bit()? { Some(T::dec(r)?) } else { None })
    }
}

/// Encodes a value and returns `(bytes, bit length)`.
pub fn encode<T: Enc>(value: &T) -> (Vec<u8>, usize) {
    let mut w = BitWriter::new();
    value.enc(&mut w);
    let bits = w.bit_len();
    (w.into_bytes(), bits)
}

/// Decodes a value from bytes.
pub fn decode<T: Enc>(bytes: &[u8]) -> Option<T> {
    let mut r = BitReader::new(bytes);
    T::dec(&mut r)
}

/// Bit length of a value's encoding.
pub fn bit_len<T: Enc>(value: &T) -> usize {
    encode(value).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Enc + PartialEq + std::fmt::Debug>(v: T) {
        let (bytes, bits) = encode(&v);
        assert!(bits <= bytes.len() * 8);
        assert_eq!(decode::<T>(&bytes), Some(v));
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(15u64);
        roundtrip(16u64);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42u8);
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip::<Vec<u32>>(vec![]);
        roundtrip(vec![1u32, 2, 3, 1 << 30]);
        roundtrip(Some(7u16));
        roundtrip::<Option<u16>>(None);
        roundtrip((5u8, vec![true, false]));
    }

    #[test]
    fn varint_is_compact() {
        // Small numbers: one 5-bit group.
        assert_eq!(bit_len(&7u64), 5);
        // A ~log n bit id costs O(log n) bits.
        assert!(bit_len(&(1u64 << 20)) <= 35);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let (bytes, _) = encode(&vec![1u64 << 40; 3]);
        assert_eq!(decode::<Vec<u64>>(&bytes[..1]), None);
    }

    #[test]
    fn bogus_length_fails_cleanly() {
        let mut w = BitWriter::new();
        w.put_varint(u64::MAX); // absurd vector length
        let bytes = w.into_bytes();
        assert_eq!(decode::<Vec<u8>>(&bytes), None);
    }
}
