//! Bit-exact label encoding.
//!
//! Label *size in bits* is the complexity measure of the model, so labels
//! are serialized through a real bit stream: booleans cost one bit, numbers
//! are nibble-varints (`4` data bits + `1` continuation bit per group), and
//! containers are length-prefixed. The experiment tables report
//! `BitWriter::bit_len` of the honest labels.

/// A growable bit sink.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes and returns the raw bytes (last byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        let pos = self.bit_len % 8;
        if pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().unwrap() |= 1 << pos;
        }
        self.bit_len += 1;
    }

    /// Writes the low `width` bits of `value`.
    pub fn put_bits(&mut self, value: u64, width: usize) {
        for i in 0..width {
            self.put_bit(value >> i & 1 == 1);
        }
    }

    /// Writes a nibble-varint (unsigned LEB-style, 4 bits per group).
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0xF;
            value >>= 4;
            self.put_bit(value != 0);
            self.put_bits(group, 4);
            if value == 0 {
                break;
            }
        }
    }
}

/// A bit-stream reader over bytes produced by [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit, or `None` past the end.
    pub fn get_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `width` bits.
    pub fn get_bits(&mut self, width: usize) -> Option<u64> {
        let mut out = 0u64;
        for i in 0..width {
            if self.get_bit()? {
                out |= 1 << i;
            }
        }
        Some(out)
    }

    /// Reads a nibble-varint.
    pub fn get_varint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        let mut shift = 0;
        loop {
            let more = self.get_bit()?;
            let group = self.get_bits(4)?;
            out |= group << shift;
            shift += 4;
            if !more {
                return Some(out);
            }
            if shift > 64 {
                return None;
            }
        }
    }
}

/// Types serializable to/from the bit stream.
pub trait Enc: Sized {
    /// Appends this value to the stream.
    fn enc(&self, w: &mut BitWriter);
    /// Parses a value; `None` on malformed input.
    fn dec(r: &mut BitReader<'_>) -> Option<Self>;
}

macro_rules! enc_uint {
    ($($t:ty),*) => {$(
        impl Enc for $t {
            fn enc(&self, w: &mut BitWriter) {
                w.put_varint(*self as u64);
            }
            fn dec(r: &mut BitReader<'_>) -> Option<Self> {
                <$t>::try_from(r.get_varint()?).ok()
            }
        }
    )*};
}
enc_uint!(u8, u16, u32, u64, usize);

impl Enc for bool {
    fn enc(&self, w: &mut BitWriter) {
        w.put_bit(*self);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        r.get_bit()
    }
}

impl<T: Enc> Enc for Vec<T> {
    fn enc(&self, w: &mut BitWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.enc(w);
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        let len = r.get_varint()? as usize;
        if len > 1 << 24 {
            return None; // malformed length guard
        }
        (0..len).map(|_| T::dec(r)).collect()
    }
}

impl<A: Enc, B: Enc> Enc for (A, B) {
    fn enc(&self, w: &mut BitWriter) {
        self.0.enc(w);
        self.1.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some((A::dec(r)?, B::dec(r)?))
    }
}

impl<T: Enc> Enc for Option<T> {
    fn enc(&self, w: &mut BitWriter) {
        match self {
            None => w.put_bit(false),
            Some(x) => {
                w.put_bit(true);
                x.enc(w);
            }
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.get_bit()? { Some(T::dec(r)?) } else { None })
    }
}

/// Encodes a value and returns `(bytes, bit length)`.
pub fn encode<T: Enc>(value: &T) -> (Vec<u8>, usize) {
    let mut w = BitWriter::new();
    value.enc(&mut w);
    let bits = w.bit_len();
    (w.into_bytes(), bits)
}

/// Decodes a value from bytes.
pub fn decode<T: Enc>(bytes: &[u8]) -> Option<T> {
    let mut r = BitReader::new(bytes);
    T::dec(&mut r)
}

/// Bit length of a value's encoding.
pub fn bit_len<T: Enc>(value: &T) -> usize {
    encode(value).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Enc + PartialEq + std::fmt::Debug>(v: T) {
        let (bytes, bits) = encode(&v);
        assert!(bits <= bytes.len() * 8);
        assert_eq!(decode::<T>(&bytes), Some(v));
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(15u64);
        roundtrip(16u64);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42u8);
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip::<Vec<u32>>(vec![]);
        roundtrip(vec![1u32, 2, 3, 1 << 30]);
        roundtrip(Some(7u16));
        roundtrip::<Option<u16>>(None);
        roundtrip((5u8, vec![true, false]));
    }

    #[test]
    fn varint_is_compact() {
        // Small numbers: one 5-bit group.
        assert_eq!(bit_len(&7u64), 5);
        // A ~log n bit id costs O(log n) bits.
        assert!(bit_len(&(1u64 << 20)) <= 35);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let (bytes, _) = encode(&vec![1u64 << 40; 3]);
        assert_eq!(decode::<Vec<u64>>(&bytes[..1]), None);
    }

    #[test]
    fn bogus_length_fails_cleanly() {
        let mut w = BitWriter::new();
        w.put_varint(u64::MAX); // absurd vector length
        let bytes = w.into_bytes();
        assert_eq!(decode::<Vec<u8>>(&bytes), None);
    }
}
