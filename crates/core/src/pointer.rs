//! Proposition 2.2: certify that a vertex with a given identifier exists,
//! with `O(log n)`-bit edge labels.
//!
//! Our variant stores, on each edge, the target identifier plus the BFS
//! distances of *both* endpoints from the target. Soundness follows from
//! the decreasing-distance argument: if every vertex at distance `d > 0`
//! has an incident edge whose far side is at distance `d − 1`, then chains
//! of strictly decreasing distances terminate at a vertex claiming distance
//! 0, which must carry the target identifier — and identifiers are unique,
//! so every connected region containing such labels contains *the* target.
//! The same sub-labels anchor the `T`-node frames of the Theorem 1 scheme.

use lanecert_graph::traversal;

use crate::bits::{BitReader, BitWriter, Enc};
use crate::scheme::{Verdict, VertexView};
use crate::Configuration;

/// The per-edge label: target id plus endpoint distances, stored in
/// ascending-endpoint-id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointerLabel {
    /// The identifier whose existence is certified.
    pub target: u64,
    /// Identifier of the smaller-id endpoint.
    pub id_lo: u64,
    /// Distance of `id_lo` from the target.
    pub d_lo: u32,
    /// Identifier of the larger-id endpoint.
    pub id_hi: u64,
    /// Distance of `id_hi` from the target.
    pub d_hi: u32,
}

impl Enc for PointerLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.target.enc(w);
        self.id_lo.enc(w);
        self.d_lo.enc(w);
        self.id_hi.enc(w);
        self.d_hi.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(PointerLabel {
            target: u64::dec(r)?,
            id_lo: u64::dec(r)?,
            d_lo: u32::dec(r)?,
            id_hi: u64::dec(r)?,
            d_hi: u32::dec(r)?,
        })
    }
}

/// Honest prover: BFS distances from `target`.
///
/// # Panics
///
/// Panics if the target vertex does not exist or the graph is
/// disconnected (the prover refuses such instances upstream).
pub fn prove(cfg: &Configuration, target: u64) -> Vec<PointerLabel> {
    let v = cfg.vertex_of(target).expect("target must exist");
    let tree = traversal::bfs(cfg.graph(), v);
    cfg.graph()
        .edges()
        .map(|(_, e)| {
            let (mut a, mut b) = (e.u, e.v);
            if cfg.id_of(a) > cfg.id_of(b) {
                std::mem::swap(&mut a, &mut b);
            }
            assert!(
                tree.reached(a) && tree.reached(b),
                "graph must be connected"
            );
            PointerLabel {
                target,
                id_lo: cfg.id_of(a),
                d_lo: tree.dist[a.index()],
                id_hi: cfg.id_of(b),
                d_hi: tree.dist[b.index()],
            }
        })
        .collect()
}

/// Local verification at one vertex.
pub fn verify_at(view: &VertexView<PointerLabel>) -> Verdict {
    let mut my_dist: Option<u32> = None;
    let mut target: Option<u64> = None;
    let mut has_parent = false;
    for label in view.incident {
        let Some(l) = label else {
            return Verdict::reject("undecodable pointer label");
        };
        if *target.get_or_insert(l.target) != l.target {
            return Verdict::reject("inconsistent target id");
        }
        let (mine, other) = if l.id_lo == view.id {
            (l.d_lo, l.d_hi)
        } else if l.id_hi == view.id {
            (l.d_hi, l.d_lo)
        } else {
            return Verdict::reject("edge label does not mention me");
        };
        if *my_dist.get_or_insert(mine) != mine {
            return Verdict::reject("inconsistent own distance");
        }
        if other.checked_add(1) == Some(mine) {
            has_parent = true;
        }
        if mine.abs_diff(other) > 1 {
            return Verdict::reject("distance jump across an edge");
        }
    }
    match (my_dist, target) {
        (Some(0), Some(t)) if t != view.id => Verdict::reject("claims distance 0 but wrong id"),
        (Some(d), Some(_)) if d > 0 && !has_parent => Verdict::reject("no decreasing neighbour"),
        _ => Verdict::Accept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::run_edge_scheme;
    use lanecert_graph::{generators, VertexId};

    #[test]
    fn completeness_on_families() {
        for g in [
            generators::path_graph(8),
            generators::cycle_graph(7),
            generators::star(6),
            generators::grid(3, 3),
        ] {
            let cfg = Configuration::with_random_ids(g, 3);
            let target = cfg.id_of(VertexId(2));
            let labels = prove(&cfg, target);
            let report = run_edge_scheme(&cfg, &labels, verify_at).unwrap();
            assert!(report.accepted(), "{:?}", report.first_rejection());
        }
    }

    #[test]
    fn soundness_nonexistent_target() {
        // Claim an id that exists nowhere: shift all labels' target.
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(6));
        let mut labels = prove(&cfg, 0);
        for l in &mut labels {
            l.target = 999; // nobody has this id; distance-0 vertex lies
        }
        let report = run_edge_scheme(&cfg, &labels, verify_at).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn soundness_broken_gradient() {
        let cfg = Configuration::with_sequential_ids(generators::path_graph(6));
        let mut labels = prove(&cfg, 0);
        // Lift every distance by 1: no vertex has distance 0... but then
        // someone lacks a decreasing neighbour.
        for l in &mut labels {
            l.d_lo += 1;
            l.d_hi += 1;
        }
        let report = run_edge_scheme(&cfg, &labels, verify_at).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn label_size_is_logarithmic() {
        let g = generators::path_graph(1024);
        let cfg = Configuration::with_sequential_ids(g);
        let labels = prove(&cfg, 0);
        let report = run_edge_scheme(&cfg, &labels, verify_at).unwrap();
        assert!(report.accepted());
        // ids ≤ n, distances ≤ n: a handful of varints.
        assert!(report.max_label_bits < 200);
    }
}
