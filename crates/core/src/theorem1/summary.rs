//! Interface summaries and the class computer — the executable `f_B`/`f_P`
//! of Proposition 6.1.
//!
//! A [`Summary`] pairs a homomorphism class with the k-lane interface it
//! summarizes. Slot order inside a class is **canonical**: the live slots
//! are the interface's distinct terminal identifiers in ascending order, so
//! prover and verifier — who run the same deterministic recipes below —
//! always agree on interned class ids.

use lanecert_algebra::{Algebra, Class};
use lanecert_lanes::{Lane, LaneSet};

use super::labels::IfaceLbl;
use crate::inline::InlineVec;

/// Slot-id scratch: interfaces expose at most `2 · max_lanes` distinct
/// terminals, so eight inline slots cover every configuration the test
/// and benchmark corpora use without touching the heap.
pub type SlotIds = InlineVec<u64, 8>;

/// A lane-indexed terminal map: a `Vec<(Lane, u64)>` kept sorted by lane.
///
/// Interfaces have at most `max_lanes` (≤ 64, usually ≤ 4) entries and are
/// built, cloned, compared, and hashed on every frame of every vertex's
/// certificate — the per-vertex verification hot path. A sorted flat vec
/// keeps all of that one contiguous block — inline in the struct for the
/// common ≤ 4 lanes ([`InlineVec`]), so building, cloning, and dropping a
/// map is allocation-free — where a `BTreeMap` paid a node allocation per
/// operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct LaneMap(InlineVec<(Lane, u64), 4>);

impl LaneMap {
    /// The empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Looks up a lane's terminal id.
    pub fn get(&self, lane: &Lane) -> Option<&u64> {
        self.0
            .binary_search_by_key(lane, |&(l, _)| l)
            .ok()
            .map(|i| &self.0[i].1)
    }

    /// Inserts or replaces a lane's terminal id; returns the previous id.
    pub fn insert(&mut self, lane: Lane, id: u64) -> Option<u64> {
        match self.0.binary_search_by_key(&lane, |&(l, _)| l) {
            Ok(i) => Some(std::mem::replace(&mut self.0[i].1, id)),
            Err(i) => {
                self.0.insert(i, (lane, id));
                None
            }
        }
    }

    /// Iterates `(&lane, &id)` in ascending lane order.
    pub fn iter(&self) -> impl Iterator<Item = (&Lane, &u64)> {
        self.0.iter().map(|(l, v)| (l, v))
    }

    /// Iterates the terminal ids in ascending lane order.
    pub fn values(&self) -> impl Iterator<Item = &u64> {
        self.0.iter().map(|(_, v)| v)
    }
}

impl std::ops::Index<&Lane> for LaneMap {
    type Output = u64;
    fn index(&self, lane: &Lane) -> &u64 {
        // Every caller indexes only after a lane-membership check
        // (`lanes.contains`/`is_subset_of` plus `from_lbl`'s invariant
        // that a map covers exactly its lane set), so this is total on
        // verified inputs; `Index` cannot be fallible by signature.
        // lint: allow(no-panic) reason="guarded by callers' lane-membership checks; Index cannot return Result"
        self.get(lane).expect("lane not present")
    }
}

impl<const N: usize> From<[(Lane, u64); N]> for LaneMap {
    fn from(entries: [(Lane, u64); N]) -> Self {
        entries.into_iter().collect()
    }
}

impl FromIterator<(Lane, u64)> for LaneMap {
    fn from_iter<I: IntoIterator<Item = (Lane, u64)>>(iter: I) -> Self {
        let mut m = LaneMap::new();
        for (l, v) in iter {
            m.insert(l, v);
        }
        m
    }
}

impl Extend<(Lane, u64)> for LaneMap {
    fn extend<I: IntoIterator<Item = (Lane, u64)>>(&mut self, iter: I) {
        for (l, v) in iter {
            self.insert(l, v);
        }
    }
}

/// A k-lane interface with vertex identifiers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Iface {
    /// The lane set.
    pub lanes: LaneSet,
    /// In-terminal id per lane.
    pub tin: LaneMap,
    /// Out-terminal id per lane.
    pub tout: LaneMap,
}

impl Iface {
    /// The canonical slot list: distinct terminal ids, ascending.
    pub fn slot_ids(&self) -> SlotIds {
        let mut ids: SlotIds = self
            .tin
            .values()
            .chain(self.tout.values())
            .copied()
            .collect();
        ids.sort_unstable();
        // Slice-level dedup: drop trailing duplicates by `remove`.
        let mut w = 0;
        for r in 0..ids.len() {
            if r == 0 || ids[r] != ids[w - 1] {
                ids[w] = ids[r];
                w += 1;
            }
        }
        while ids.len() > w {
            ids.remove(ids.len() - 1);
        }
        ids
    }

    /// Wire form.
    pub fn to_lbl(&self) -> IfaceLbl {
        IfaceLbl {
            lanes: self.lanes.0,
            tin: self.tin.iter().map(|(&l, &v)| (l as u8, v)).collect(),
            tout: self.tout.iter().map(|(&l, &v)| (l as u8, v)).collect(),
        }
    }

    /// Parses and sanity-checks a wire interface.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn from_lbl(l: &IfaceLbl) -> Result<Iface, String> {
        let lanes = LaneSet(l.lanes);
        if lanes.is_empty() {
            return Err("empty lane set".into());
        }
        let parse = |pairs: &[(u8, u64)]| -> Result<LaneMap, String> {
            let mut map = LaneMap::new();
            for &(lane, id) in pairs {
                if !lanes.contains(lane as Lane) {
                    return Err(format!("terminal on unused lane {lane}"));
                }
                if map.insert(lane as Lane, id).is_some() {
                    return Err(format!("duplicate lane {lane}"));
                }
            }
            if map.len() != lanes.len() {
                return Err("missing terminal for some lane".into());
            }
            Ok(map)
        };
        let tin = parse(&l.tin)?;
        let tout = parse(&l.tout)?;
        // Injectivity per Definition 5.3 (maps hold ≤ 64 entries, so the
        // quadratic scan beats sorting a scratch vec).
        for map in [&tin, &tout] {
            for x in 0..map.0.len() {
                for y in (x + 1)..map.0.len() {
                    if map.0[x].1 == map.0[y].1 {
                        return Err("terminal assignment not injective".into());
                    }
                }
            }
        }
        Ok(Iface { lanes, tin, tout })
    }
}

/// A homomorphism class together with its interface.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Summary {
    /// The class value (slot order = `iface.slot_ids()`). A value, not a
    /// table index: prover and verifier compare classes structurally and
    /// only map through the canonical [`lanecert_algebra::FrozenAlgebra`]
    /// table at the wire boundary.
    pub class: Class,
    /// The interface.
    pub iface: Iface,
}

/// Sorts the slots of `state` (currently ordered as `slots`) into ascending
/// id order via selection sort of `swap`s.
fn sort_slots(alg: &Algebra, mut state: Class, slots: &mut [u64]) -> Class {
    for i in 0..slots.len() {
        let mut min = i;
        for j in (i + 1)..slots.len() {
            if slots[j] < slots[min] {
                min = j;
            }
        }
        if min != i {
            slots.swap(i, min);
            state = alg.swap(state, i, min);
        }
    }
    state
}

/// Builds the summary of a `V`-node: one vertex, one lane.
pub fn base_v(alg: &Algebra, lane: Lane, id: u64) -> Summary {
    let state = alg.add_vertex(alg.empty(), 0);
    Summary {
        class: state,
        iface: Iface {
            lanes: LaneSet::singleton(lane),
            tin: [(lane, id)].into(),
            tout: [(lane, id)].into(),
        },
    }
}

/// Builds the summary of an `E`-node: one edge, one lane.
pub fn base_e(
    alg: &Algebra,
    lane: Lane,
    tin: u64,
    tout: u64,
    marked: bool,
) -> Result<Summary, String> {
    if tin == tout {
        return Err("E-node terminals must differ".into());
    }
    let mut state = alg.add_vertex(alg.add_vertex(alg.empty(), 0), 0);
    state = alg.add_edge(state, 0, 1, marked);
    let mut slots = [tin, tout];
    state = sort_slots(alg, state, &mut slots);
    Ok(Summary {
        class: state,
        iface: Iface {
            lanes: LaneSet::singleton(lane),
            tin: [(lane, tin)].into(),
            tout: [(lane, tout)].into(),
        },
    })
}

/// Builds the summary of the `P`-node: a path over all lanes, with per-edge
/// marks.
pub fn base_p(alg: &Algebra, ids: &[u64], marks: &[bool]) -> Result<Summary, String> {
    if ids.is_empty() || marks.len() + 1 != ids.len() {
        return Err("malformed P-node".into());
    }
    {
        let mut sorted: SlotIds = ids.into();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err("P-node ids not distinct".into());
        }
    }
    let mut state = alg.empty();
    for _ in ids {
        state = alg.add_vertex(state, 0);
    }
    for (pos, &m) in marks.iter().enumerate() {
        state = alg.add_edge(state, pos, pos + 1, m);
    }
    let mut slots: SlotIds = ids.into();
    state = sort_slots(alg, state, &mut slots);
    Ok(Summary {
        class: state,
        iface: Iface {
            lanes: LaneSet::full(ids.len()),
            tin: ids.iter().copied().enumerate().collect(),
            tout: ids.iter().copied().enumerate().collect(),
        },
    })
}

/// `f_B`: Bridge-merge of two summaries (Proposition 6.1).
pub fn bridge(
    alg: &Algebra,
    left: &Summary,
    right: &Summary,
    i: Lane,
    j: Lane,
    marked: bool,
) -> Result<Summary, String> {
    if !left.iface.lanes.is_disjoint(right.iface.lanes) {
        return Err("Bridge-merge: lanes not disjoint".into());
    }
    let (Some(&u), Some(&v)) = (left.iface.tout.get(&i), right.iface.tout.get(&j)) else {
        return Err("Bridge-merge: bridge lane missing".into());
    };
    let ls = left.iface.slot_ids();
    let rs = right.iface.slot_ids();
    // Vertex-disjointness of the sides.
    if ls.iter().any(|x| rs.binary_search(x).is_ok()) {
        return Err("Bridge-merge: sides share a vertex".into());
    }
    let mut state = alg.union(left.class.clone(), right.class.clone());
    let mut slots: SlotIds = ls.iter().chain(rs.iter()).copied().collect();
    let pa = slots
        .iter()
        .position(|&x| x == u)
        .ok_or("Bridge-merge: left bridge slot missing")?;
    let pb = slots
        .iter()
        .position(|&x| x == v)
        .ok_or("Bridge-merge: right bridge slot missing")?;
    state = alg.add_edge(state, pa, pb, marked);
    state = sort_slots(alg, state, &mut slots);
    let mut tin = left.iface.tin.clone();
    tin.extend(right.iface.tin.iter().map(|(&l, &x)| (l, x)));
    let mut tout = left.iface.tout.clone();
    tout.extend(right.iface.tout.iter().map(|(&l, &x)| (l, x)));
    Ok(Summary {
        class: state,
        iface: Iface {
            lanes: left.iface.lanes.union(right.iface.lanes),
            tin,
            tout,
        },
    })
}

/// `f_P`: Parent-merge of a child summary onto a parent summary
/// (Proposition 6.1): glue `τin_ℓ(child)` onto `τout_ℓ(parent)` for every
/// child lane, then retire vertices that are no longer terminals.
pub fn parent(alg: &Algebra, child: &Summary, par: &Summary) -> Result<Summary, String> {
    if !child.iface.lanes.is_subset_of(par.iface.lanes) {
        return Err("Parent-merge: child lanes not a subset".into());
    }
    let cs = child.iface.slot_ids();
    let ps = par.iface.slot_ids();
    let mut state = alg.union(child.class.clone(), par.class.clone());
    // (id, from_child) slot list.
    let mut slots: InlineVec<(u64, bool), 8> = cs
        .iter()
        .map(|&x| (x, true))
        .chain(ps.iter().map(|&x| (x, false)))
        .collect();
    for lane in child.iface.lanes.iter() {
        let x = child.iface.tin[&lane];
        let y = par.iface.tout[&lane];
        if x != y {
            return Err(format!("Parent-merge: junction mismatch on lane {lane}"));
        }
        let pa = slots
            .iter()
            .position(|&(id, c)| id == x && c)
            .ok_or("Parent-merge: child junction slot missing")?;
        let pb = slots
            .iter()
            .position(|&(id, c)| id == x && !c)
            .ok_or("Parent-merge: parent junction slot missing")?;
        let (keep, drop) = if pa < pb { (pa, pb) } else { (pb, pa) };
        state = alg.glue(state, keep, drop);
        slots.remove(drop);
    }
    // Resulting interface.
    let tin = par.iface.tin.clone();
    let mut tout = par.iface.tout.clone();
    for lane in child.iface.lanes.iter() {
        tout.insert(lane, child.iface.tout[&lane]);
    }
    let iface = Iface {
        lanes: par.iface.lanes,
        tin,
        tout,
    };
    let keep_ids = iface.slot_ids();
    // Retire slots that are no longer terminals (descending index).
    for idx in (0..slots.len()).rev() {
        if keep_ids.binary_search(&slots[idx].0).is_err() {
            state = alg.forget(state, idx);
            slots.remove(idx);
        }
    }
    // Duplicate ids should all be resolved by now.
    let mut plain: SlotIds = slots.iter().map(|&(id, _)| id).collect();
    {
        let mut sorted = plain.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err("Parent-merge: unresolved duplicate slots".into());
        }
    }
    state = sort_slots(alg, state, &mut plain);
    Ok(Summary {
        class: state,
        iface,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_algebra::props::{Connected, Forest};

    #[test]
    fn base_and_bridge_compose() {
        let alg = Algebra::new(Connected);
        // Two E-nodes on lanes 0 and 1, bridged: a path of 4 vertices.
        let l = base_e(&alg, 0, 10, 11, true).unwrap();
        let r = base_e(&alg, 1, 20, 21, true).unwrap();
        let b = bridge(&alg, &l, &r, 0, 1, true).unwrap();
        assert!(alg.accept(&b.class));
        assert_eq!(b.iface.slot_ids().as_slice(), &[10, 11, 20, 21]);
        // Unmarked bridge leaves the marked subgraph disconnected.
        let b2 = bridge(&alg, &l, &r, 0, 1, false).unwrap();
        assert!(!alg.accept(&b2.class));
    }

    #[test]
    fn parent_merge_glues_and_retires() {
        let alg = Algebra::new(Forest);
        // Parent: P-node path 1-2 (lanes 0,1); child: E-node on lane 0 with
        // tin 2 (the parent's tout in lane 0 is 1... use tin 1).
        let p = base_p(&alg, &[1, 2], &[true]).unwrap();
        let c = base_e(&alg, 0, 1, 30, true).unwrap();
        let m = parent(&alg, &c, &p).unwrap();
        assert!(alg.accept(&m.class)); // a path is a forest
        assert_eq!(m.iface.tout[&0], 30);
        assert_eq!(m.iface.tout[&1], 2);
        assert_eq!(m.iface.tin[&0], 1);
        // Gluing a cycle: child E-node from 1 to 2 on lane 0 plus an edge...
        // simpler: bridge the two ends then parent-merge to close a cycle is
        // covered by pipeline tests.
    }

    #[test]
    fn summaries_are_deterministic() {
        let alg = Algebra::new(Connected);
        let s1 = base_p(&alg, &[5, 9, 7], &[true, true]).unwrap();
        let s2 = base_p(&alg, &[5, 9, 7], &[true, true]).unwrap();
        assert_eq!(s1.class, s2.class);
        assert_eq!(s1, s2);
    }

    #[test]
    fn iface_roundtrip_and_validation() {
        let iface = Iface {
            lanes: [0usize, 2].into_iter().collect(),
            tin: [(0, 4), (2, 6)].into(),
            tout: [(0, 5), (2, 6)].into(),
        };
        let lbl = iface.to_lbl();
        assert_eq!(Iface::from_lbl(&lbl).unwrap(), iface);
        // Broken: terminal on unused lane.
        let mut bad = lbl.clone();
        bad.tin[0].0 = 1;
        assert!(Iface::from_lbl(&bad).is_err());
        // Broken: non-injective touts.
        let mut bad = lbl;
        bad.tout[0].1 = 6;
        assert!(Iface::from_lbl(&bad).is_err());
    }
}
