//! Certificate wire formats for the Theorem 1 scheme.
//!
//! Every edge of the network carries an [`EdgeLabel`]: its own certificate
//! as an edge of the completion `G'`, plus one transit record per virtual
//! completion edge whose embedding path crosses it (Section 6.2,
//! "certifying the embedding"). A certificate is a stack of frames — one
//! per hierarchy node containing the edge, at most `2k` by
//! Observation 5.5 — each carrying the *basic information* `B(·)`
//! (Definition 6.3): lanes, homomorphism class, and terminal identifiers.

use crate::bits::{BitReader, BitWriter, Enc};
use crate::inline::InlineVec;

/// A k-lane interface: lanes with in/out terminal identifiers
/// (wire form of Definition 5.3).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IfaceLbl {
    /// Lane set bitmask.
    pub lanes: u64,
    /// `(lane, id)` pairs, ascending by lane.
    pub tin: InlineVec<(u8, u64), 4>,
    /// `(lane, id)` pairs, ascending by lane.
    pub tout: InlineVec<(u8, u64), 4>,
}

/// Basic information `B(G)` of a hierarchy node (Definition 6.3):
/// node-id hint, homomorphism class, interface.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BasicInfoLbl {
    /// Hierarchy node id (a hint for grouping; all facts are re-verified).
    pub node: u32,
    /// Interned homomorphism class (`StateId`).
    pub class: u32,
    /// The k-lane interface.
    pub iface: IfaceLbl,
}

/// Frame for a `T`-node: which member this edge lies in, the member's
/// subtree summary `B(Tree-merge(T_m))`, the member's children summaries,
/// and the root-existence pointer (Proposition 2.2 sub-scheme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TFrameLbl {
    /// The `T`-node id.
    pub t_node: u32,
    /// The member node this edge belongs to.
    pub member: u32,
    /// `B(Tree-merge(T_member))`.
    pub subtree: BasicInfoLbl,
    /// Subtree summaries of the member's children in the merge tree.
    pub children: Vec<BasicInfoLbl>,
    /// Is this member the root of the merge tree?
    pub is_root_member: bool,
    /// Identifier of a vertex inside the root member (pointer target).
    pub root_vertex: u64,
    /// Pointer distance of the certificate's `a` endpoint inside the
    /// `T`-node's realized subgraph.
    pub d_a: u32,
    /// Pointer distance of the `b` endpoint.
    pub d_b: u32,
}

/// Frame for a `B`-node (`Bridge-merge`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BFrameLbl {
    /// The `B`-node id.
    pub node: u32,
    /// Bridge lane on the left side.
    pub i: u8,
    /// Bridge lane on the right side.
    pub j: u8,
    /// Whether the left child is a `V`-node (vs. a `T`-node).
    pub left_is_v: bool,
    /// Whether the right child is a `V`-node.
    pub right_is_v: bool,
    /// `B(left child)`.
    pub left: BasicInfoLbl,
    /// `B(right child)`.
    pub right: BasicInfoLbl,
    /// Whether the bridge edge is a marked (original) edge.
    pub bridge_marked: bool,
    /// Which part this edge lies in: 0 = the bridge edge itself,
    /// 1 = inside the left child, 2 = inside the right child.
    pub side: u8,
}

/// Frame for an `E`-node (a single `V-insert` edge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EFrameLbl {
    /// The `E`-node id.
    pub node: u32,
    /// Its lane.
    pub lane: u8,
    /// In-terminal identifier.
    pub tin: u64,
    /// Out-terminal identifier.
    pub tout: u64,
}

/// Frame for the initial `P`-node path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PFrameLbl {
    /// The `P`-node id.
    pub node: u32,
    /// Path vertex identifiers, in lane order.
    pub ids: InlineVec<u64, 6>,
    /// Mark flag of each path edge (an `E2` edge may coincide with an
    /// original edge).
    pub marks: InlineVec<bool, 6>,
    /// Which path edge this certificate describes.
    pub pos: u16,
}

/// One stack entry of a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameLbl {
    /// Inside a `T`-node.
    T(TFrameLbl),
    /// Inside a `B`-node.
    B(BFrameLbl),
    /// Owned by an `E`-node.
    E(EFrameLbl),
    /// Owned by the `P`-node.
    P(PFrameLbl),
}

/// The certificate of one edge of the completion `G'`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeCertLbl {
    /// Smaller endpoint identifier.
    pub a: u64,
    /// Larger endpoint identifier.
    pub b: u64,
    /// Whether the edge belongs to the certified (real) subgraph.
    pub marked: bool,
    /// Frame stack, outermost (root `T`-node) first.
    pub frames: Vec<FrameLbl>,
}

/// A virtual edge's certificate as replicated along its embedding path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitLbl {
    /// Rank of this real edge in the path, counted from the `a` endpoint
    /// (first edge has rank 1).
    pub rank_fwd: u32,
    /// Rank counted from the `b` endpoint.
    pub rank_bwd: u32,
    /// The virtual edge's certificate (`cert.a`/`cert.b` are its
    /// endpoints).
    pub cert: EdgeCertLbl,
}

/// The complete label of one real network edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeLabel {
    /// This edge's own certificate (as a completion edge).
    pub own: EdgeCertLbl,
    /// Transit records of virtual edges embedded across this edge.
    pub transits: Vec<TransitLbl>,
}

impl Enc for IfaceLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.lanes.enc(w);
        self.tin.enc(w);
        self.tout.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            lanes: Enc::dec(r)?,
            tin: Enc::dec(r)?,
            tout: Enc::dec(r)?,
        })
    }
}

impl Enc for BasicInfoLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.node.enc(w);
        self.class.enc(w);
        self.iface.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            node: Enc::dec(r)?,
            class: Enc::dec(r)?,
            iface: Enc::dec(r)?,
        })
    }
}

impl Enc for TFrameLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.t_node.enc(w);
        self.member.enc(w);
        self.subtree.enc(w);
        self.children.enc(w);
        self.is_root_member.enc(w);
        self.root_vertex.enc(w);
        self.d_a.enc(w);
        self.d_b.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            t_node: Enc::dec(r)?,
            member: Enc::dec(r)?,
            subtree: Enc::dec(r)?,
            children: Enc::dec(r)?,
            is_root_member: Enc::dec(r)?,
            root_vertex: Enc::dec(r)?,
            d_a: Enc::dec(r)?,
            d_b: Enc::dec(r)?,
        })
    }
}

impl Enc for BFrameLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.node.enc(w);
        self.i.enc(w);
        self.j.enc(w);
        self.left_is_v.enc(w);
        self.right_is_v.enc(w);
        self.left.enc(w);
        self.right.enc(w);
        self.bridge_marked.enc(w);
        self.side.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            node: Enc::dec(r)?,
            i: Enc::dec(r)?,
            j: Enc::dec(r)?,
            left_is_v: Enc::dec(r)?,
            right_is_v: Enc::dec(r)?,
            left: Enc::dec(r)?,
            right: Enc::dec(r)?,
            bridge_marked: Enc::dec(r)?,
            side: Enc::dec(r)?,
        })
    }
}

impl Enc for EFrameLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.node.enc(w);
        self.lane.enc(w);
        self.tin.enc(w);
        self.tout.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            node: Enc::dec(r)?,
            lane: Enc::dec(r)?,
            tin: Enc::dec(r)?,
            tout: Enc::dec(r)?,
        })
    }
}

impl Enc for PFrameLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.node.enc(w);
        self.ids.enc(w);
        self.marks.enc(w);
        self.pos.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            node: Enc::dec(r)?,
            ids: Enc::dec(r)?,
            marks: Enc::dec(r)?,
            pos: Enc::dec(r)?,
        })
    }
}

impl Enc for FrameLbl {
    fn enc(&self, w: &mut BitWriter) {
        match self {
            FrameLbl::T(f) => {
                w.put_bits(0, 2);
                f.enc(w);
            }
            FrameLbl::B(f) => {
                w.put_bits(1, 2);
                f.enc(w);
            }
            FrameLbl::E(f) => {
                w.put_bits(2, 2);
                f.enc(w);
            }
            FrameLbl::P(f) => {
                w.put_bits(3, 2);
                f.enc(w);
            }
        }
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(match r.get_bits(2)? {
            0 => FrameLbl::T(Enc::dec(r)?),
            1 => FrameLbl::B(Enc::dec(r)?),
            2 => FrameLbl::E(Enc::dec(r)?),
            _ => FrameLbl::P(Enc::dec(r)?),
        })
    }
}

impl Enc for EdgeCertLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.a.enc(w);
        self.b.enc(w);
        self.marked.enc(w);
        self.frames.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            a: Enc::dec(r)?,
            b: Enc::dec(r)?,
            marked: Enc::dec(r)?,
            frames: Enc::dec(r)?,
        })
    }
}

impl Enc for TransitLbl {
    fn enc(&self, w: &mut BitWriter) {
        self.rank_fwd.enc(w);
        self.rank_bwd.enc(w);
        self.cert.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            rank_fwd: Enc::dec(r)?,
            rank_bwd: Enc::dec(r)?,
            cert: Enc::dec(r)?,
        })
    }
}

impl Enc for EdgeLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.own.enc(w);
        self.transits.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            own: Enc::dec(r)?,
            transits: Enc::dec(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{decode, encode};

    fn sample_cert() -> EdgeCertLbl {
        EdgeCertLbl {
            a: 3,
            b: 9,
            marked: true,
            frames: vec![
                FrameLbl::T(TFrameLbl {
                    t_node: 7,
                    member: 2,
                    subtree: BasicInfoLbl {
                        node: 2,
                        class: 5,
                        iface: IfaceLbl {
                            lanes: 0b11,
                            tin: [(0, 3), (1, 4)].into(),
                            tout: [(0, 9), (1, 4)].into(),
                        },
                    },
                    children: vec![],
                    is_root_member: true,
                    root_vertex: 3,
                    d_a: 0,
                    d_b: 1,
                }),
                FrameLbl::E(EFrameLbl {
                    node: 2,
                    lane: 0,
                    tin: 3,
                    tout: 9,
                }),
            ],
        }
    }

    #[test]
    fn labels_roundtrip() {
        let label = EdgeLabel {
            own: sample_cert(),
            transits: vec![TransitLbl {
                rank_fwd: 1,
                rank_bwd: 3,
                cert: sample_cert(),
            }],
        };
        let (bytes, bits) = encode(&label);
        assert!(bits > 0);
        assert_eq!(decode::<EdgeLabel>(&bytes), Some(label));
    }

    #[test]
    fn frame_variants_roundtrip() {
        for f in [
            FrameLbl::B(BFrameLbl {
                node: 1,
                i: 0,
                j: 1,
                left_is_v: true,
                right_is_v: false,
                left: BasicInfoLbl {
                    node: 5,
                    class: 0,
                    iface: IfaceLbl {
                        lanes: 1,
                        tin: [(0, 8)].into(),
                        tout: [(0, 8)].into(),
                    },
                },
                right: BasicInfoLbl {
                    node: 6,
                    class: 1,
                    iface: IfaceLbl {
                        lanes: 2,
                        tin: [(1, 2)].into(),
                        tout: [(1, 4)].into(),
                    },
                },
                bridge_marked: true,
                side: 0,
            }),
            FrameLbl::P(PFrameLbl {
                node: 0,
                ids: [1, 2, 3].into(),
                marks: [false, true].into(),
                pos: 1,
            }),
        ] {
            let (bytes, _) = encode(&f);
            assert_eq!(decode::<FrameLbl>(&bytes), Some(f));
        }
    }
}
