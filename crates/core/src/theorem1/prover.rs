//! The certificate assignment (the centralized prover of Theorem 1).

use std::collections::HashMap;

use lanecert_algebra::FrozenAlgebra;
use lanecert_graph::{EdgeId, VertexId};
use lanecert_lanes::{Layout, NodeId, NodeKind};

use super::labels::*;
use super::summary::{self, Summary};
use crate::{CertError, Configuration};

/// Per-edge frame templates plus the global summaries — everything needed
/// to materialize [`EdgeLabel`]s.
pub(super) struct ProverOutput {
    /// One label per edge of the *network* graph.
    pub labels: Vec<EdgeLabel>,
}

struct Frames<'a> {
    alg: &'a FrozenAlgebra,
    cfg: &'a Configuration,
    layout: &'a Layout,
    marked: Vec<bool>,                  // per built-graph edge
    node_summary: Vec<Option<Summary>>, // per hierarchy node
    member_subtree: HashMap<(NodeId, usize), Summary>,
    t_root_vertex: HashMap<NodeId, VertexId>,
    t_dist: HashMap<NodeId, Vec<u32>>, // per vertex, u32::MAX outside
    edge_frames: Vec<Vec<FrameLbl>>,   // per built-graph edge (d_* = 0 placeholders)
}

pub(super) fn build_labels(
    alg: &FrozenAlgebra,
    cfg: &Configuration,
    layout: &Layout,
) -> Result<ProverOutput, CertError> {
    let bg = &layout.construction.graph;
    let n_nodes = layout.hierarchy.nodes.len();
    // Mark flags: an edge of the built (completion) graph is marked iff it
    // is an original edge of the network graph.
    let marked: Vec<bool> = bg
        .edges()
        .map(|(_, e)| cfg.graph().has_edge(e.u, e.v))
        .collect();
    let mut fr = Frames {
        alg,
        cfg,
        layout,
        marked,
        node_summary: vec![None; n_nodes],
        member_subtree: HashMap::new(),
        t_root_vertex: HashMap::new(),
        t_dist: HashMap::new(),
        edge_frames: vec![Vec::new(); bg.edge_count()],
    };
    let root = fr
        .summarize(layout.hierarchy.root)
        .map_err(CertError::Internal)?;
    if !alg.accept(&root.class) {
        return Err(CertError::PropertyViolated);
    }
    fr.pointers();
    let mut chain = Vec::new();
    fr.walk(layout.hierarchy.root, &mut chain)
        .map_err(CertError::Internal)?;
    debug_assert!(fr.edge_frames.iter().all(|f| !f.is_empty()));

    // Materialize completion-edge certificates.
    let certs: Vec<EdgeCertLbl> = bg
        .edges()
        .map(|(eid, e)| fr.materialize(eid, e.u, e.v))
        .collect();

    // Per network edge: own certificate + transits of virtual edges.
    let mut labels: Vec<EdgeLabel> = cfg
        .graph()
        .edges()
        .map(|(_, e)| {
            let built = bg
                .edge_between(e.u, e.v)
                .expect("every network edge is a completion edge");
            EdgeLabel {
                own: certs[built.index()].clone(),
                transits: Vec::new(),
            }
        })
        .collect();
    let completion = &layout.completion;
    for ve in completion.virtual_edges() {
        let (u, v) = completion.graph.endpoints(ve);
        let built = bg
            .edge_between(u, v)
            .expect("virtual edge exists in built graph");
        let cert = certs[built.index()].clone();
        let path = layout
            .embedding
            .path(ve)
            .expect("embedding covers all virtual edges");
        // Orient the path from the smaller-id endpoint (cert.a).
        let path: Vec<VertexId> = if cfg.id_of(path[0]) == cert.a {
            path.to_vec()
        } else {
            path.iter().rev().copied().collect()
        };
        let hops = path.len() - 1;
        for (idx, w) in path.windows(2).enumerate() {
            let real = cfg
                .graph()
                .edge_between(w[0], w[1])
                .expect("embedding paths follow network edges");
            labels[real.index()].transits.push(TransitLbl {
                rank_fwd: (idx + 1) as u32,
                rank_bwd: (hops - idx) as u32,
                cert: cert.clone(),
            });
        }
    }
    Ok(ProverOutput { labels })
}

impl<'a> Frames<'a> {
    fn id(&self, v: VertexId) -> u64 {
        self.cfg.id_of(v)
    }

    /// Canonical wire id of a summary's class. Total tables resolve by
    /// content; a miss means the class space outran the freeze budget —
    /// surfaced as an internal error, never a bogus label. Sealed tables
    /// intern on demand and cannot miss.
    fn wire_class(&self, s: &Summary) -> Result<u32, String> {
        self.alg.intern(&s.class).map(|id| id.0).ok_or_else(|| {
            format!(
                "class of arity {} missing from the total canonical table ({} states, cap {})",
                s.class.arity(),
                self.alg.canonical_state_count(),
                self.alg.max_arity(),
            )
        })
    }

    /// Full realized summary of a hierarchy node.
    fn summarize(&mut self, node: NodeId) -> Result<Summary, String> {
        if let Some(s) = &self.node_summary[node] {
            return Ok(s.clone());
        }
        let h = &self.layout.hierarchy;
        let out = match h.nodes[node].kind.clone() {
            NodeKind::V { lane, vertex } => summary::base_v(self.alg, lane, self.id(vertex)),
            NodeKind::E {
                lane,
                tin,
                tout,
                edge,
            } => summary::base_e(
                self.alg,
                lane,
                self.id(tin),
                self.id(tout),
                self.marked[edge.index()],
            )?,
            NodeKind::P { vertices, edges } => {
                let ids: Vec<u64> = vertices.iter().map(|&v| self.id(v)).collect();
                let marks: Vec<bool> = edges.iter().map(|e| self.marked[e.index()]).collect();
                summary::base_p(self.alg, &ids, &marks)?
            }
            NodeKind::B {
                i,
                j,
                left,
                right,
                bridge,
            } => {
                let l = self.summarize(left)?;
                let r = self.summarize(right)?;
                summary::bridge(self.alg, &l, &r, i, j, self.marked[bridge.index()])?
            }
            NodeKind::T { .. } => self.subtree(node, 0)?,
        };
        self.node_summary[node] = Some(out.clone());
        Ok(out)
    }

    /// Summary of `Tree-merge(T_m)` for member index `m_idx` of T-node `t`.
    fn subtree(&mut self, t: NodeId, m_idx: usize) -> Result<Summary, String> {
        if let Some(s) = self.member_subtree.get(&(t, m_idx)) {
            return Ok(s.clone());
        }
        let NodeKind::T {
            members,
            member_parent,
        } = self.layout.hierarchy.nodes[t].kind.clone()
        else {
            return Err("subtree on non-T node".into());
        };
        let mut acc = self.summarize(members[m_idx])?;
        // Children sorted by lane mask (deterministic, label-independent).
        let mut kids: Vec<usize> = (0..members.len())
            .filter(|&c| member_parent[c] == Some(m_idx))
            .collect();
        kids.sort_by_key(|&c| self.layout.hierarchy.nodes[members[c]].lanes.0);
        for c in kids {
            let sub = self.subtree(t, c)?;
            acc = summary::parent(self.alg, &sub, &acc)?;
        }
        self.member_subtree.insert((t, m_idx), acc.clone());
        Ok(acc)
    }

    /// Chooses pointer roots and computes BFS distances inside each
    /// T-node's realized subgraph.
    fn pointers(&mut self) {
        let h = &self.layout.hierarchy;
        let realized = h.realized();
        let bg = &self.layout.construction.graph;
        for (id, node) in h.nodes.iter().enumerate() {
            let NodeKind::T { members, .. } = &node.kind else {
                continue;
            };
            let (rv, _) = &realized[members[0]];
            let root = *rv.iter().next().expect("root member has a vertex");
            self.t_root_vertex.insert(id, root);
            let (_, edges) = &realized[id];
            let allowed: std::collections::HashSet<EdgeId> = edges.iter().copied().collect();
            let tree =
                lanecert_graph::traversal::bfs_restricted(bg, root, |e| allowed.contains(&e));
            self.t_dist.insert(id, tree.dist);
        }
    }

    /// DFS assigning frame templates to owned edges.
    fn walk(&mut self, node: NodeId, chain: &mut Vec<FrameLbl>) -> Result<(), String> {
        let h = &self.layout.hierarchy;
        match h.nodes[node].kind.clone() {
            NodeKind::V { .. } => {}
            NodeKind::E {
                lane,
                tin,
                tout,
                edge,
            } => {
                let mut frames = chain.clone();
                frames.push(FrameLbl::E(EFrameLbl {
                    node: node as u32,
                    lane: lane as u8,
                    tin: self.id(tin),
                    tout: self.id(tout),
                }));
                self.edge_frames[edge.index()] = frames;
            }
            NodeKind::P { vertices, edges } => {
                let ids: Vec<u64> = vertices.iter().map(|&v| self.id(v)).collect();
                let marks: Vec<bool> = edges.iter().map(|e| self.marked[e.index()]).collect();
                for (pos, e) in edges.iter().enumerate() {
                    let mut frames = chain.clone();
                    frames.push(FrameLbl::P(PFrameLbl {
                        node: node as u32,
                        ids: ids.as_slice().into(),
                        marks: marks.as_slice().into(),
                        pos: pos as u16,
                    }));
                    self.edge_frames[e.index()] = frames;
                }
            }
            NodeKind::B {
                i,
                j,
                left,
                right,
                bridge,
            } => {
                let info = |fr: &mut Self, side: NodeId| -> Result<BasicInfoLbl, String> {
                    let s = fr.summarize(side)?;
                    Ok(BasicInfoLbl {
                        node: side as u32,
                        class: fr.wire_class(&s)?,
                        iface: s.iface.to_lbl(),
                    })
                };
                let left_info = info(self, left)?;
                let right_info = info(self, right)?;
                let bridge_marked = self.marked[bridge.index()];
                let template = |side: u8| {
                    FrameLbl::B(BFrameLbl {
                        node: node as u32,
                        i: i as u8,
                        j: j as u8,
                        left_is_v: matches!(h.nodes[left].kind, NodeKind::V { .. }),
                        right_is_v: matches!(h.nodes[right].kind, NodeKind::V { .. }),
                        left: left_info.clone(),
                        right: right_info.clone(),
                        bridge_marked,
                        side,
                    })
                };
                let mut frames = chain.clone();
                frames.push(template(0));
                self.edge_frames[bridge.index()] = frames;
                for (side_no, child) in [(1u8, left), (2u8, right)] {
                    if matches!(h.nodes[child].kind, NodeKind::V { .. }) {
                        continue;
                    }
                    chain.push(template(side_no));
                    self.walk(child, chain)?;
                    chain.pop();
                }
            }
            NodeKind::T {
                members,
                member_parent,
            } => {
                let root_vertex = self.id(self.t_root_vertex[&node]);
                for (idx, &m) in members.iter().enumerate() {
                    let sub = self.subtree(node, idx)?;
                    let mut kids: Vec<usize> = (0..members.len())
                        .filter(|&c| member_parent[c] == Some(idx))
                        .collect();
                    kids.sort_by_key(|&c| self.layout.hierarchy.nodes[members[c]].lanes.0);
                    let mut children = Vec::with_capacity(kids.len());
                    for &c in &kids {
                        let s = self.subtree(node, c)?;
                        children.push(BasicInfoLbl {
                            node: members[c] as u32,
                            class: self.wire_class(&s)?,
                            iface: s.iface.to_lbl(),
                        });
                    }
                    chain.push(FrameLbl::T(TFrameLbl {
                        t_node: node as u32,
                        member: m as u32,
                        subtree: BasicInfoLbl {
                            node: m as u32,
                            class: self.wire_class(&sub)?,
                            iface: sub.iface.to_lbl(),
                        },
                        children,
                        is_root_member: idx == 0,
                        root_vertex,
                        d_a: 0,
                        d_b: 0,
                    }));
                    self.walk(m, chain)?;
                    chain.pop();
                }
            }
        }
        Ok(())
    }

    /// Fills per-edge fields (endpoint ids ordered, pointer distances).
    fn materialize(&self, edge: EdgeId, u: VertexId, v: VertexId) -> EdgeCertLbl {
        let (mut a, mut b) = (u, v);
        if self.id(a) > self.id(b) {
            std::mem::swap(&mut a, &mut b);
        }
        let mut frames = self.edge_frames[edge.index()].clone();
        for f in frames.iter_mut() {
            if let FrameLbl::T(t) = f {
                let dist = &self.t_dist[&(t.t_node as usize)];
                t.d_a = dist[a.index()];
                t.d_b = dist[b.index()];
            }
        }
        EdgeCertLbl {
            a: self.id(a),
            b: self.id(b),
            marked: self.marked[edge.index()],
            frames,
        }
    }
}
