//! The Theorem 1 scheme: an `O(log n)`-bit proof labeling scheme for
//! `ϕ ∧ (pathwidth ≤ k)`, for any property `ϕ` given as a homomorphism
//! algebra.
//!
//! The prover runs the Sections 4–5 pipeline (`lanecert-lanes`): interval
//! representation → lane partition → completion → embedding → lanewidth
//! construction → hierarchical decomposition, evaluates the algebra over
//! the hierarchy (Proposition 6.1), and emits per-edge certificates
//! ([`labels`]). The verifier (the private `verifier` submodule, reached
//! through [`Scheme::verify_at`]) checks everything locally.
//!
//! An accepted labeling certifies `ϕ` on the real edge set **and**
//! `pathwidth ≤ w − 1` where `w` is the number of lanes: with the greedy
//! partition `w = width(I) ≤ k + 1`, so the certified bound is exactly
//! `pathwidth ≤ k`; with the Proposition 4.6 partition it is the constant
//! relaxation `f(k + 1) − 1` (see DESIGN.md).
//!
//! [`PathwidthScheme`] implements the unified [`Scheme`] trait; drive it
//! through [`Scheme::prove`]/[`Scheme::run`], the
//! [`Certifier`](crate::Certifier) builder (registry name
//! [`crate::registry::THEOREM1`]), or the typed
//! [`PathwidthScheme::prove_with_rep`] helper when a known interval
//! representation is at hand.

pub mod labels;
mod prover;
pub mod summary;
mod verifier;

use lanecert_algebra::{FreezeOptions, FrozenAlgebra, SharedAlgebra, SharedFrozenAlgebra};
use lanecert_lanes::{LaneStrategy, Layout};
use lanecert_pathwidth::IntervalRep;

pub use labels::EdgeLabel;

use crate::scheme::{Labeling, ProverHint, Scheme, Verdict, VertexView};
use crate::{CertError, Configuration};

/// The old name of the error type, kept for one release while downstreams
/// migrate to the unified [`CertError`].
#[deprecated(note = "use lanecert::CertError; prover refusals are CertError variants now")]
pub type ProveError = CertError;

/// Scheme parameters.
#[derive(Copy, Clone, Debug)]
pub struct SchemeOptions {
    /// Lane-partition strategy (the T9 ablation).
    pub strategy: LaneStrategy,
    /// Maximum number of lanes `w` the verifier accepts. An accepted
    /// labeling certifies `pathwidth ≤ max_lanes − 1`.
    pub max_lanes: usize,
}

impl SchemeOptions {
    /// Options certifying `pathwidth ≤ k` exactly (greedy partition, whose
    /// lane count equals the representation width `k + 1`).
    pub fn exact_pathwidth(k: usize) -> Self {
        Self {
            strategy: LaneStrategy::Greedy,
            max_lanes: k + 1,
        }
    }
}

/// The Theorem 1 proof labeling scheme for one `(ϕ, k)` pair.
///
/// Construction runs the canonical freeze pass
/// ([`FrozenAlgebra::freeze`]) for the pair's interface arity
/// (`2 × max_lanes`): with a total table, `StateId`s — and therefore
/// label bytes and varint label sizes — are a pure function of
/// `(graph, property, hint)`, so proving parallelizes with bit-identical
/// output (freeze results are memoized process-wide, so repeated
/// construction is cheap).
pub struct PathwidthScheme {
    frozen: SharedFrozenAlgebra,
    opts: SchemeOptions,
}

impl std::fmt::Debug for PathwidthScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathwidthScheme")
            .field("algebra", &self.frozen.name())
            .field("states", &self.frozen.state_count())
            .field("total", &self.frozen.is_total())
            .field("opts", &self.opts)
            .finish()
    }
}

impl PathwidthScheme {
    /// Creates the scheme for a property algebra and options, freezing
    /// the algebra's canonical class table for the options' lane bound.
    pub fn new(algebra: SharedAlgebra, opts: SchemeOptions) -> Self {
        Self::with_freeze_options(
            algebra,
            opts,
            &FreezeOptions::for_interface_arity(2 * opts.max_lanes),
        )
    }

    /// Like [`PathwidthScheme::new`] with explicit freeze tuning (state
    /// and op budgets). Used by the MSO compiler front-end
    /// ([`crate::compiled`]), whose machine-generated state spaces need
    /// per-formula budgets; the freeze arity cap is still forced to
    /// `2 × max_lanes` so the table matches the verifier's interfaces.
    pub fn with_freeze_options(
        algebra: SharedAlgebra,
        opts: SchemeOptions,
        freeze: &FreezeOptions,
    ) -> Self {
        let freeze = FreezeOptions {
            max_arity: 2 * opts.max_lanes,
            ..freeze.clone()
        };
        let frozen = FrozenAlgebra::freeze(algebra, &freeze);
        Self { frozen, opts }
    }

    /// The algebra (shared "global knowledge").
    pub fn algebra(&self) -> &SharedAlgebra {
        self.frozen.algebra()
    }

    /// The frozen canonical class table the scheme's wire ids index.
    pub fn frozen_algebra(&self) -> &SharedFrozenAlgebra {
        &self.frozen
    }

    /// The options.
    pub fn options(&self) -> SchemeOptions {
        self.opts
    }

    /// Honest certificate assignment given an interval representation of
    /// the network (e.g. from a known decomposition). Equivalent to
    /// [`Scheme::prove`] with
    /// [`ProverHint::with_representation`].
    ///
    /// # Errors
    ///
    /// See [`CertError`]; a representation that does not fit the graph is
    /// [`CertError::InvalidSpec`].
    pub fn prove_with_rep(
        &self,
        cfg: &Configuration,
        rep: &IntervalRep,
    ) -> Result<Labeling<EdgeLabel>, CertError> {
        crate::scheme::check_rep_fits(rep, cfg)?;
        self.prove_validated(cfg, rep)
    }

    /// Prover over a representation known to fit the graph (see
    /// [`ProverHint::resolve`]).
    fn prove_validated(
        &self,
        cfg: &Configuration,
        rep: &IntervalRep,
    ) -> Result<Labeling<EdgeLabel>, CertError> {
        let g = cfg.graph();
        if g.vertex_count() == 0 {
            return Ok(Labeling::new(Vec::new()));
        }
        if !lanecert_graph::components::is_connected(g) {
            return Err(CertError::Disconnected);
        }
        if g.vertex_count() == 1 {
            // K1: no edges, no labels; the verifier special-cases it.
            let s = self.frozen.add_vertex(self.frozen.empty(), 0);
            return if self.frozen.accept(&s) {
                Ok(Labeling::new(Vec::new()))
            } else {
                Err(CertError::PropertyViolated)
            };
        }
        let layout = Layout::build(g, rep, self.opts.strategy);
        if layout.lane_count() > self.opts.max_lanes {
            return Err(CertError::TooManyLanes {
                needed: layout.lane_count(),
                bound: self.opts.max_lanes,
            });
        }
        prover::build_labels(&self.frozen, cfg, &layout).map(|o| Labeling::new(o.labels))
    }
}

impl Scheme for PathwidthScheme {
    type Label = EdgeLabel;

    fn name(&self) -> String {
        format!(
            "theorem1({}, w ≤ {})",
            self.frozen.name(),
            self.opts.max_lanes
        )
    }

    fn fingerprint(&self) -> u64 {
        // Labels carry canonical table ids, so the label format is the
        // (name, table) pair.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        Scheme::name(self).hash(&mut h);
        self.frozen.fingerprint().hash(&mut h);
        h.finish()
    }

    fn algebra_state_count(&self) -> Option<usize> {
        Some(self.frozen.state_count())
    }

    fn canonical_labels(&self) -> bool {
        // Sealed tables intern their tail in arrival order, so only a
        // total freeze makes labels order-independent.
        self.frozen.is_total()
    }

    fn prove(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<Labeling<EdgeLabel>, CertError> {
        // `resolve` has already validated a supplied representation.
        let rep = hint.resolve(cfg)?;
        self.prove_validated(cfg, &rep)
    }

    fn verify_at(&self, view: &VertexView<EdgeLabel>) -> Verdict {
        let ctx = verifier::Ctx {
            alg: &self.frozen,
            max_lanes: self.opts.max_lanes,
            my_id: view.id,
        };
        verifier::verify(&ctx, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::RunReport;
    use lanecert_algebra::props::{And, Bipartite, Connected, Forest, HamiltonianCycle};
    use lanecert_algebra::Algebra;
    use lanecert_graph::{generators, Graph};
    use lanecert_pathwidth::solver::pathwidth_exact;

    fn rep_of(g: &Graph) -> IntervalRep {
        let (_, pd) = pathwidth_exact(g).unwrap();
        IntervalRep::from_decomposition(&pd, g.vertex_count())
    }

    fn run_case(scheme: &PathwidthScheme, g: Graph, expect_prove: bool) -> Option<RunReport> {
        let rep = rep_of(&g);
        let cfg = Configuration::with_random_ids(g, 99);
        match scheme.prove_with_rep(&cfg, &rep) {
            Ok(labels) => {
                assert!(expect_prove, "prover should have refused");
                let report = scheme.run(&cfg, &labels).unwrap();
                assert!(
                    report.accepted(),
                    "completeness failed: {:?}",
                    report.first_rejection()
                );
                Some(report)
            }
            Err(CertError::PropertyViolated) => {
                assert!(!expect_prove, "prover refused a yes-instance");
                None
            }
            Err(e) => panic!("unexpected prover error: {e}"),
        }
    }

    #[test]
    fn bipartite_on_even_cycles() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(Bipartite),
            SchemeOptions::exact_pathwidth(2),
        );
        run_case(&scheme, generators::cycle_graph(6), true);
        run_case(&scheme, generators::cycle_graph(7), false);
        run_case(&scheme, generators::path_graph(9), true);
    }

    #[test]
    fn hamiltonicity_on_cycles_and_ladders() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(HamiltonianCycle),
            SchemeOptions::exact_pathwidth(2),
        );
        run_case(&scheme, generators::cycle_graph(8), true);
        run_case(&scheme, generators::ladder(4), true);
        run_case(&scheme, generators::path_graph(6), false);
    }

    #[test]
    fn spanning_tree_like_property() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(And(Connected, Forest)),
            SchemeOptions::exact_pathwidth(1),
        );
        run_case(&scheme, generators::caterpillar(4, 2), true);
        run_case(&scheme, generators::star(7), true);
    }

    #[test]
    fn pathwidth_bound_is_enforced_by_prover() {
        // A ladder has pathwidth 2: with bound k = 1 the prover must refuse.
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(1),
        );
        let g = generators::ladder(4);
        let rep = rep_of(&g);
        let cfg = Configuration::with_sequential_ids(g);
        assert!(matches!(
            scheme.prove_with_rep(&cfg, &rep),
            Err(CertError::TooManyLanes { .. })
        ));
    }

    #[test]
    fn disconnected_is_refused() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(2),
        );
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cfg = Configuration::with_sequential_ids(g);
        let rep = IntervalRep::new(vec![
            lanecert_pathwidth::Interval::new(0, 1),
            lanecert_pathwidth::Interval::new(1, 2),
            lanecert_pathwidth::Interval::new(4, 5),
            lanecert_pathwidth::Interval::new(5, 6),
        ]);
        assert_eq!(
            scheme.prove_with_rep(&cfg, &rep),
            Err(CertError::Disconnected)
        );
    }

    #[test]
    fn single_vertex_graph() {
        let yes = PathwidthScheme::new(Algebra::shared(Forest), SchemeOptions::exact_pathwidth(1));
        let cfg = Configuration::with_sequential_ids(Graph::new(1));
        let labels = yes.prove(&cfg, &ProverHint::auto()).unwrap();
        assert!(labels.is_empty());
        assert!(yes.run(&cfg, &labels).unwrap().accepted());
    }

    #[test]
    fn both_strategies_complete() {
        for strategy in [LaneStrategy::Greedy, LaneStrategy::Recursive] {
            let scheme = PathwidthScheme::new(
                Algebra::shared(Bipartite),
                SchemeOptions {
                    strategy,
                    max_lanes: 64,
                },
            );
            let g = generators::caterpillar(3, 2);
            let rep = rep_of(&g);
            let cfg = Configuration::with_random_ids(g, 5);
            let labels = scheme.prove_with_rep(&cfg, &rep).unwrap();
            let report = scheme.run(&cfg, &labels).unwrap();
            assert!(
                report.accepted(),
                "{strategy:?}: {:?}",
                report.first_rejection()
            );
        }
    }

    #[test]
    fn random_graphs_complete() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(2),
        );
        for _ in 0..6 {
            let (g, _) = generators::random_pathwidth_graph(14, 2, 0.4, &mut rng);
            run_case(&scheme, g, true);
        }
    }
}
