//! The Theorem 1 scheme: an `O(log n)`-bit proof labeling scheme for
//! `ϕ ∧ (pathwidth ≤ k)`, for any property `ϕ` given as a homomorphism
//! algebra.
//!
//! The prover runs the Sections 4–5 pipeline (`lanecert-lanes`): interval
//! representation → lane partition → completion → embedding → lanewidth
//! construction → hierarchical decomposition, evaluates the algebra over
//! the hierarchy (Proposition 6.1), and emits per-edge certificates
//! ([`labels`]). The verifier ([`verifier`]) checks everything locally.
//!
//! An accepted labeling certifies `ϕ` on the real edge set **and**
//! `pathwidth ≤ w − 1` where `w` is the number of lanes: with the greedy
//! partition `w = width(I) ≤ k + 1`, so the certified bound is exactly
//! `pathwidth ≤ k`; with the Proposition 4.6 partition it is the constant
//! relaxation `f(k + 1) − 1` (see DESIGN.md).

pub mod labels;
mod prover;
pub mod summary;
mod verifier;

use std::error::Error;
use std::fmt;

use lanecert_algebra::SharedAlgebra;
use lanecert_lanes::{LaneStrategy, Layout};
use lanecert_pathwidth::{solver, IntervalRep};

pub use labels::EdgeLabel;

use crate::scheme::{run_edge_scheme, RunReport, Verdict, VertexView};
use crate::Configuration;

/// Scheme parameters.
#[derive(Copy, Clone, Debug)]
pub struct SchemeOptions {
    /// Lane-partition strategy (the T9 ablation).
    pub strategy: LaneStrategy,
    /// Maximum number of lanes `w` the verifier accepts. An accepted
    /// labeling certifies `pathwidth ≤ max_lanes − 1`.
    pub max_lanes: usize,
}

impl SchemeOptions {
    /// Options certifying `pathwidth ≤ k` exactly (greedy partition, whose
    /// lane count equals the representation width `k + 1`).
    pub fn exact_pathwidth(k: usize) -> Self {
        Self {
            strategy: LaneStrategy::Greedy,
            max_lanes: k + 1,
        }
    }
}

/// Reasons the honest prover refuses to certify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// The network is disconnected (the model requires connectivity).
    Disconnected,
    /// The configuration does not satisfy the property `ϕ` — per the
    /// completeness contract, the prover only labels yes-instances.
    PropertyViolated,
    /// The layout needs more lanes than `max_lanes` (the pathwidth bound
    /// fails, or the recursive partition overshot the verifier's bound).
    TooManyLanes {
        /// Lanes required by the layout.
        needed: usize,
        /// The verifier's bound.
        bound: usize,
    },
    /// No interval representation was supplied and the graph is too large
    /// for the exact pathwidth solver.
    NeedRepresentation,
    /// Internal pipeline failure (a bug; surfaced for diagnosis).
    Internal(String),
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::Disconnected => write!(f, "network must be connected"),
            ProveError::PropertyViolated => write!(f, "configuration violates the property"),
            ProveError::TooManyLanes { needed, bound } => {
                write!(f, "layout needs {needed} lanes, verifier bound is {bound}")
            }
            ProveError::NeedRepresentation => {
                write!(
                    f,
                    "graph too large for the exact solver; supply a representation"
                )
            }
            ProveError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for ProveError {}

/// The Theorem 1 proof labeling scheme for one `(ϕ, k)` pair.
pub struct PathwidthScheme {
    algebra: SharedAlgebra,
    opts: SchemeOptions,
}

impl PathwidthScheme {
    /// Creates the scheme for a property algebra and options.
    pub fn new(algebra: SharedAlgebra, opts: SchemeOptions) -> Self {
        Self { algebra, opts }
    }

    /// The algebra (shared "global knowledge").
    pub fn algebra(&self) -> &SharedAlgebra {
        &self.algebra
    }

    /// The options.
    pub fn options(&self) -> SchemeOptions {
        self.opts
    }

    /// Honest certificate assignment given an interval representation of
    /// the network (e.g. from a known decomposition).
    ///
    /// # Errors
    ///
    /// See [`ProveError`].
    pub fn prove(
        &self,
        cfg: &Configuration,
        rep: &IntervalRep,
    ) -> Result<Vec<EdgeLabel>, ProveError> {
        let g = cfg.graph();
        if g.vertex_count() == 0 {
            return Ok(Vec::new());
        }
        if !lanecert_graph::components::is_connected(g) {
            return Err(ProveError::Disconnected);
        }
        if g.vertex_count() == 1 {
            // K1: no edges, no labels; the verifier special-cases it.
            let s = self.algebra.add_vertex(self.algebra.empty(), 0);
            return if self.algebra.accept(s) {
                Ok(Vec::new())
            } else {
                Err(ProveError::PropertyViolated)
            };
        }
        rep.validate(g)
            .map_err(|e| ProveError::Internal(format!("bad representation: {e}")))?;
        let layout = Layout::build(g, rep, self.opts.strategy);
        if layout.lane_count() > self.opts.max_lanes {
            return Err(ProveError::TooManyLanes {
                needed: layout.lane_count(),
                bound: self.opts.max_lanes,
            });
        }
        prover::build_labels(&self.algebra, cfg, &layout).map(|o| o.labels)
    }

    /// Honest certificate assignment, computing an optimal interval
    /// representation with the exact solver.
    ///
    /// # Errors
    ///
    /// See [`ProveError`]; in particular [`ProveError::NeedRepresentation`]
    /// for graphs beyond the exact-solver limit.
    pub fn prove_auto(&self, cfg: &Configuration) -> Result<Vec<EdgeLabel>, ProveError> {
        if cfg.n() <= 1 {
            let rep = IntervalRep::new(vec![lanecert_pathwidth::Interval::new(0, 0); cfg.n()]);
            return self.prove(cfg, &rep);
        }
        let (_, pd) =
            solver::pathwidth_exact(cfg.graph()).map_err(|_| ProveError::NeedRepresentation)?;
        let rep = IntervalRep::from_decomposition(&pd, cfg.n());
        self.prove(cfg, &rep)
    }

    /// The local verification algorithm at one vertex.
    pub fn verify_at(
        &self,
        _cfg: &Configuration,
        _v: lanecert_graph::VertexId,
        view: &VertexView<EdgeLabel>,
    ) -> Verdict {
        let ctx = verifier::Ctx {
            alg: &self.algebra,
            max_lanes: self.opts.max_lanes,
            my_id: view.id,
        };
        verifier::verify(&ctx, view)
    }

    /// Convenience: run the full scheme (prove + everywhere-verify).
    ///
    /// # Errors
    ///
    /// Propagates prover refusals.
    pub fn run(&self, cfg: &Configuration, rep: &IntervalRep) -> Result<RunReport, ProveError> {
        let labels = self.prove(cfg, rep)?;
        Ok(self.run_with_labels(cfg, &labels))
    }

    /// Runs the verifier against externally supplied (possibly adversarial)
    /// labels.
    pub fn run_with_labels(&self, cfg: &Configuration, labels: &[EdgeLabel]) -> RunReport {
        run_edge_scheme(cfg, labels, |c, v, view| self.verify_at(c, v, view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_algebra::props::{And, Bipartite, Connected, Forest, HamiltonianCycle};
    use lanecert_algebra::Algebra;
    use lanecert_graph::{generators, Graph};
    use lanecert_pathwidth::solver::pathwidth_exact;

    fn rep_of(g: &Graph) -> IntervalRep {
        let (_, pd) = pathwidth_exact(g).unwrap();
        IntervalRep::from_decomposition(&pd, g.vertex_count())
    }

    fn run_case(scheme: &PathwidthScheme, g: Graph, expect_prove: bool) -> Option<RunReport> {
        let rep = rep_of(&g);
        let cfg = Configuration::with_random_ids(g, 99);
        match scheme.prove(&cfg, &rep) {
            Ok(labels) => {
                assert!(expect_prove, "prover should have refused");
                let report = scheme.run_with_labels(&cfg, &labels);
                assert!(
                    report.accepted(),
                    "completeness failed: {:?}",
                    report.first_rejection()
                );
                Some(report)
            }
            Err(ProveError::PropertyViolated) => {
                assert!(!expect_prove, "prover refused a yes-instance");
                None
            }
            Err(e) => panic!("unexpected prover error: {e}"),
        }
    }

    #[test]
    fn bipartite_on_even_cycles() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(Bipartite),
            SchemeOptions::exact_pathwidth(2),
        );
        run_case(&scheme, generators::cycle_graph(6), true);
        run_case(&scheme, generators::cycle_graph(7), false);
        run_case(&scheme, generators::path_graph(9), true);
    }

    #[test]
    fn hamiltonicity_on_cycles_and_ladders() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(HamiltonianCycle),
            SchemeOptions::exact_pathwidth(2),
        );
        run_case(&scheme, generators::cycle_graph(8), true);
        run_case(&scheme, generators::ladder(4), true);
        run_case(&scheme, generators::path_graph(6), false);
    }

    #[test]
    fn spanning_tree_like_property() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(And(Connected, Forest)),
            SchemeOptions::exact_pathwidth(1),
        );
        run_case(&scheme, generators::caterpillar(4, 2), true);
        run_case(&scheme, generators::star(7), true);
    }

    #[test]
    fn pathwidth_bound_is_enforced_by_prover() {
        // A ladder has pathwidth 2: with bound k = 1 the prover must refuse.
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(1),
        );
        let g = generators::ladder(4);
        let rep = rep_of(&g);
        let cfg = Configuration::with_sequential_ids(g);
        assert!(matches!(
            scheme.prove(&cfg, &rep),
            Err(ProveError::TooManyLanes { .. })
        ));
    }

    #[test]
    fn disconnected_is_refused() {
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(2),
        );
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cfg = Configuration::with_sequential_ids(g);
        let rep = IntervalRep::new(vec![
            lanecert_pathwidth::Interval::new(0, 1),
            lanecert_pathwidth::Interval::new(1, 2),
            lanecert_pathwidth::Interval::new(4, 5),
            lanecert_pathwidth::Interval::new(5, 6),
        ]);
        assert_eq!(scheme.prove(&cfg, &rep), Err(ProveError::Disconnected));
    }

    #[test]
    fn single_vertex_graph() {
        let yes = PathwidthScheme::new(Algebra::shared(Forest), SchemeOptions::exact_pathwidth(1));
        let cfg = Configuration::with_sequential_ids(Graph::new(1));
        let labels = yes.prove_auto(&cfg).unwrap();
        assert!(labels.is_empty());
        assert!(yes.run_with_labels(&cfg, &labels).accepted());
    }

    #[test]
    fn both_strategies_complete() {
        for strategy in [LaneStrategy::Greedy, LaneStrategy::Recursive] {
            let scheme = PathwidthScheme::new(
                Algebra::shared(Bipartite),
                SchemeOptions {
                    strategy,
                    max_lanes: 64,
                },
            );
            let g = generators::caterpillar(3, 2);
            let rep = rep_of(&g);
            let cfg = Configuration::with_random_ids(g, 5);
            let labels = scheme.prove(&cfg, &rep).unwrap();
            let report = scheme.run_with_labels(&cfg, &labels);
            assert!(
                report.accepted(),
                "{strategy:?}: {:?}",
                report.first_rejection()
            );
        }
    }

    #[test]
    fn random_graphs_complete() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let scheme = PathwidthScheme::new(
            Algebra::shared(Connected),
            SchemeOptions::exact_pathwidth(2),
        );
        for _ in 0..6 {
            let (g, _) = generators::random_pathwidth_graph(14, 2, 0.4, &mut rng);
            run_case(&scheme, g, true);
        }
    }
}
