//! The local verification algorithm of Theorem 1 (Section 6.2).
//!
//! Each vertex sees the labels of its incident edges, reconstructs its
//! incident virtual edges from the transit records, and then checks the
//! frame stacks: grouped by hierarchy node, every basic-information claim
//! is recomputed from the level below via `f_B`/`f_P`, terminal identifiers
//! are matched against actual endpoint identifiers, junctions between
//! members are cross-checked on both sides, and decreasing-distance
//! pointers anchor every `T`-node to a unique root vertex (which forces
//! each claimed node to be one connected subgraph). The vertices of the
//! outermost root member finally check that the root homomorphism class is
//! accepting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use lanecert_algebra::{FrozenAlgebra, StateId};
use lanecert_lanes::LaneSet;

use super::labels::*;
use super::summary::{self, Iface, Summary};
use crate::inline::{InlineVec, ScratchBuf};
use crate::scheme::{Verdict, VertexView};

/// Verification context.
pub(super) struct Ctx<'a> {
    pub alg: &'a FrozenAlgebra,
    pub max_lanes: usize,
    pub my_id: u64,
}

type VResult<T> = Result<T, String>;

/// Scratch list of borrowed certificates. Verification builds several of
/// these per vertex (incident edges, per-member groups, B-node sides);
/// eight inline slots cover realistic degrees without heap traffic, which
/// keeps the verify path near the decode-side allocation floor.
type CertList<'a> = ScratchBuf<&'a EdgeCertLbl, 8>;

/// Per-thread memo for the *pure* summary recomputations.
///
/// Neighbouring vertices of the same hierarchy member recompute identical
/// facts from identical label bytes: the parsed [`Summary`] of every basic-
/// information claim, the `f_P` fold of a member's children, and the `f_B`
/// bridge-merge. All three are pure functions of label content given the
/// frozen algebra, so caching them per OS thread keeps verdicts bit-for-bit
/// identical (lookups compare full keys — a hash collision can never
/// substitute a wrong summary) while doing the algebra work once per
/// distinct claim per thread instead of once per vertex.
///
/// Entries are scoped to one `(algebra fingerprint, lane bound)` pair and
/// cleared on a switch, so schemes over different properties or widths
/// never observe each other's summaries. Only successful computations are
/// cached; rejections (adversarial labels) always re-run the full check.
type FxMap<V> = HashMap<u64, Vec<V>, BuildHasherDefault<FxHasher>>;

/// Key of a memoized B-node recomputation: the two side claims and the
/// bridge parameters, exactly as they appear on the wire.
type BridgeKey = (BasicInfoLbl, BasicInfoLbl, u8, u8, bool, bool, bool);

/// Key of a memoized base-summary recomputation (`E`- and `P`-node
/// members), exactly the wire fields the recipe depends on.
#[derive(Clone, PartialEq, Eq, Hash)]
enum BaseKey {
    /// `(lane, tin, tout, marked)` of an E-node edge.
    E(u8, u64, u64, bool),
    /// `(ids, marks)` of a P-node path.
    P(InlineVec<u64, 6>, InlineVec<bool, 6>),
}

struct Memo {
    fp: u64,
    max_lanes: usize,
    fold: FxMap<((Summary, Vec<BasicInfoLbl>), Summary)>,
    bridge: FxMap<(BridgeKey, (Summary, u64, u64))>,
    base: FxMap<(BaseKey, Summary)>,
    entries: usize,
}

/// Entry cap per thread; reaching it clears the memo (a perf event only —
/// verdicts never depend on cache state).
const MEMO_CAP: usize = 1 << 15;

thread_local! {
    static MEMO: RefCell<Memo> = RefCell::new(Memo {
        fp: 0,
        max_lanes: 0,
        fold: FxMap::default(),
        bridge: FxMap::default(),
        base: FxMap::default(),
        entries: 0,
    });
}

impl Memo {
    /// Rebinds the memo to the context's algebra/lane bound, clearing any
    /// entries from a different one, and clears on overflow.
    fn sync(&mut self, ctx: &Ctx<'_>) {
        let fp = ctx.alg.fingerprint();
        if self.fp != fp || self.max_lanes != ctx.max_lanes || self.entries >= MEMO_CAP {
            self.fold.clear();
            self.bridge.clear();
            self.base.clear();
            self.entries = 0;
            self.fp = fp;
            self.max_lanes = ctx.max_lanes;
        }
    }
}

/// Multiply-xor hasher in the Fx style: a few ns for the small fixed-shape
/// memo keys where SipHash costs as much as the computation it would skip.
/// Not DoS-hardened — fine here, because a collision only means a bucket
/// scan whose entries are compared by full structural equality.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut last = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                last |= (b as u64) << (8 * i);
            }
            self.add(last);
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_key<T: Hash + ?Sized>(t: &T) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

/// Entry point: full per-vertex verification.
pub(super) fn verify(ctx: &Ctx<'_>, view: &VertexView<EdgeLabel>) -> Verdict {
    match verify_inner(ctx, view) {
        Ok(()) => Verdict::Accept,
        Err(reason) => Verdict::Reject(reason),
    }
}

fn verify_inner(ctx: &Ctx<'_>, view: &VertexView<EdgeLabel>) -> VResult<()> {
    if view.incident.is_empty() {
        // A connected network with an isolated vertex is K1: evaluate the
        // property on the single-vertex graph directly.
        let s = ctx.alg.add_vertex(ctx.alg.empty(), 0);
        return if ctx.alg.accept(&s) {
            Ok(())
        } else {
            Err("single-vertex graph violates the property".into())
        };
    }
    let mut certs: CertList<'_> = CertList::new();
    // Flat (key, record) list; groups are recovered below by scanning for
    // each key's first appearance. Vertex degrees and transit counts are
    // small, so the linear scans beat hashing — and the first malformation
    // reported does not depend on a hash map's iteration order.
    let mut transits: ScratchBuf<((u64, u64), &TransitLbl), 8> = ScratchBuf::new();
    for label in view.incident {
        let Some(label) = label else {
            return Err("undecodable label".into());
        };
        let own = &label.own;
        if !own.marked {
            return Err("real edge claims to be unmarked".into());
        }
        check_cert_shape(ctx, own)?;
        certs.push(own);
        for t in &label.transits {
            transits.push(((t.cert.a, t.cert.b), t));
        }
    }
    // Reconstruct incident virtual edges (Section 6.2, embedding checks),
    // one group per distinct endpoint pair in first-appearance order.
    for i in 0..transits.len() {
        let Some(&((a, b), first)) = transits.get(i) else {
            return Err("transit record out of range".into());
        };
        if transits.iter().take(i).any(|&(k, _)| k == (a, b)) {
            continue; // group already processed at its first appearance
        }
        let mut entries: ScratchBuf<&TransitLbl, 4> = ScratchBuf::new();
        for &(k, t) in transits.iter() {
            if k == (a, b) {
                entries.push(t);
            }
        }
        let cert = &first.cert;
        if cert.marked {
            return Err("virtual edge claims to be marked".into());
        }
        check_cert_shape_basics(cert)?;
        let total = first.rank_fwd + first.rank_bwd;
        for e in entries.iter() {
            if e.cert != *cert {
                return Err("inconsistent transit certificates".into());
            }
            if e.rank_fwd + e.rank_bwd != total {
                return Err("inconsistent path length".into());
            }
        }
        if ctx.my_id == a || ctx.my_id == b {
            if entries.len() != 1 {
                return Err("virtual endpoint sees multiple path edges".into());
            }
            let ok =
                (first.rank_fwd == 1 && ctx.my_id == a) || (first.rank_bwd == 1 && ctx.my_id == b);
            if !ok {
                return Err("virtual endpoint not at a path end".into());
            }
            check_cert_shape(ctx, cert)?;
            certs.push(cert);
        } else {
            if entries.len() != 2 {
                return Err("path transit without two consecutive edges".into());
            }
            let second = entries
                .get(1)
                .ok_or("path transit without two consecutive edges")?;
            if first.rank_fwd.abs_diff(second.rank_fwd) != 1 {
                return Err("non-consecutive path ranks".into());
            }
        }
    }
    check_tnode(ctx, &certs, 0, None, true)
}

fn check_cert_shape_basics(cert: &EdgeCertLbl) -> VResult<()> {
    if cert.a >= cert.b {
        return Err("certificate endpoints not ordered".into());
    }
    if cert.frames.is_empty() || cert.frames.len() > 160 {
        return Err("bad frame stack length".into());
    }
    Ok(())
}

fn check_cert_shape(ctx: &Ctx<'_>, cert: &EdgeCertLbl) -> VResult<()> {
    check_cert_shape_basics(cert)?;
    if ctx.my_id != cert.a && ctx.my_id != cert.b {
        return Err("incident certificate does not mention me".into());
    }
    Ok(())
}

/// Parses a basic-information label into a [`Summary`] with validation.
///
/// Wire ids resolve through the canonical frozen table; ids outside it
/// (adversarial labels, or corpora from another table version that
/// slipped past the fingerprint check) are a rejection, never a panic —
/// [`FrozenAlgebra::class_of`] is total.
fn parse_info(ctx: &Ctx<'_>, info: &BasicInfoLbl) -> VResult<Summary> {
    parse_info_inner(ctx, info)
}

fn parse_info_inner(ctx: &Ctx<'_>, info: &BasicInfoLbl) -> VResult<Summary> {
    let iface = Iface::from_lbl(&info.iface)?;
    if !iface.lanes.is_subset_of(LaneSet::full(ctx.max_lanes)) {
        return Err(format!("lane set exceeds the {}-lane bound", ctx.max_lanes));
    }
    let Some(class) = ctx.alg.class_of(StateId(info.class)) else {
        return Err("unknown homomorphism class".into());
    };
    // The class must summarize exactly the interface's boundary: without
    // this check an adversarial class id of the wrong arity could drive
    // slot-indexed algebra operations out of bounds (a panic, not a
    // rejection).
    if class.arity() != iface.slot_ids().len() {
        return Err("class arity does not match the claimed interface".into());
    }
    Ok(Summary { class, iface })
}

fn same_info(a: &BasicInfoLbl, b: &BasicInfoLbl) -> bool {
    a == b
}

/// Compares a recomputed summary against a wire claim without building a
/// [`Summary`] from the claim: the class id resolves through the canonical
/// table and the interface compares in the canonical ascending lane order
/// (the only order the prover emits).
fn summary_matches_lbl(ctx: &Ctx<'_>, s: &Summary, claim: &BasicInfoLbl) -> bool {
    fn map_matches(m: &summary::LaneMap, wire: &[(u8, u64)]) -> bool {
        m.len() == wire.len()
            && m.iter()
                .zip(wire)
                .all(|((&l, &v), &(wl, wv))| l == wl as usize && v == wv)
    }
    s.iface.lanes.0 == claim.iface.lanes
        && map_matches(&s.iface.tin, &claim.iface.tin)
        && map_matches(&s.iface.tout, &claim.iface.tout)
        && ctx.alg.class_of(StateId(claim.class)).as_ref() == Some(&s.class)
}

/// Memoized [`summary::base_e`]: the recipe is a pure function of the
/// wire fields in its [`BaseKey`], and E-node members are shared by both
/// endpoint vertices (and re-checked at every enclosing frame), so the
/// algebra work — each op builds a fresh state — runs once per distinct
/// edge per thread. Same regime as the fold/bridge memos: full-key
/// comparison, successful results only.
fn memo_base_e(ctx: &Ctx<'_>, lane: u8, tin: u64, tout: u64, marked: bool) -> VResult<Summary> {
    memo_base(ctx, BaseKey::E(lane, tin, tout, marked), |alg| {
        summary::base_e(alg, lane as usize, tin, tout, marked)
    })
}

/// Memoized [`summary::base_p`] (see [`memo_base_e`] for the regime).
fn memo_base_p(
    ctx: &Ctx<'_>,
    ids: &InlineVec<u64, 6>,
    marks: &InlineVec<bool, 6>,
) -> VResult<Summary> {
    memo_base(ctx, BaseKey::P(ids.clone(), marks.clone()), |alg| {
        summary::base_p(alg, ids, marks)
    })
}

fn memo_base(
    ctx: &Ctx<'_>,
    key: BaseKey,
    compute: impl Fn(&lanecert_algebra::Algebra) -> VResult<Summary>,
) -> VResult<Summary> {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        m.sync(ctx);
        let h = hash_key(&key);
        if let Some(bucket) = m.base.get(&h) {
            for (k, v) in bucket {
                if *k == key {
                    return Ok(v.clone());
                }
            }
        }
        let s = compute(ctx.alg)?;
        m.base.entry(h).or_default().push((key, s.clone()));
        m.entries += 1;
        Ok(s)
    })
}

/// Parses a member's children claims, checks their mutual lane
/// disjointness and their junctions against the member's own summary, and
/// recomputes the subtree fold `f_P` over them in lane-mask order.
///
/// The whole block is a pure function of `(own, frame.children)` given the
/// frozen algebra, so it is memoized per thread on exactly that key.
/// Neighbouring vertices of the same member — identical label bytes —
/// then do the algebra work once per thread instead of once per vertex,
/// with verdicts bit-for-bit unchanged: lookups compare full keys, and
/// only *successful* recomputations are cached, so malformed children
/// reject identically whether or not the cache is warm.
fn fold_children(ctx: &Ctx<'_>, own: &Summary, frame: &TFrameLbl) -> VResult<Summary> {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        m.sync(ctx);
        let h = hash_key(&(own, &frame.children));
        if let Some(bucket) = m.fold.get(&h) {
            for ((k_own, k_kids), v) in bucket {
                if k_own == own && k_kids == &frame.children {
                    return Ok(v.clone());
                }
            }
        }
        let mut kids: ScratchBuf<Summary, 8> = ScratchBuf::new();
        for entry in &frame.children {
            kids.push(parse_info(ctx, entry)?);
        }
        for (x, kx) in kids.iter().enumerate() {
            for ky in kids.iter().skip(x + 1) {
                if !kx.iface.lanes.is_disjoint(ky.iface.lanes) {
                    return Err("children lanes overlap".into());
                }
            }
        }
        // Children attach to the member's own out-terminals.
        for kid in kids.iter() {
            if !kid.iface.lanes.is_subset_of(own.iface.lanes) {
                return Err("child lanes exceed member lanes".into());
            }
            for lane in kid.iface.lanes.iter() {
                if kid.iface.tin[&lane] != own.iface.tout[&lane] {
                    return Err("child junction id mismatch".into());
                }
            }
        }
        let mut acc = own.clone();
        let mut order: InlineVec<u32, 8> = (0..kids.len() as u32).collect();
        order
            .as_mut_slice()
            .sort_by_key(|&x| kids.get(x as usize).map(|k| k.iface.lanes.0).unwrap_or(0));
        // The f_P fold itself: pure algebra work over already-parsed
        // summaries, no per-child heap traffic.
        // lint: zero-alloc {
        for &x in order.iter() {
            let kid = kids.get(x as usize).ok_or("child index out of range")?;
            acc = summary::parent(ctx.alg, kid, &acc)?;
        }
        // lint: }
        m.fold
            .entry(h)
            .or_default()
            .push(((own.clone(), frame.children.clone()), acc.clone()));
        m.entries += 1;
        Ok(acc)
    })
}

/// The pure half of a B-node check: parses both side claims, validates the
/// bridge lanes and V-node sides, and recomputes `f_B`. Returns the merged
/// summary plus the two bridge endpoint ids. Memoized per thread on the
/// frame's wire content (same regime as [`fold_children`]: full-key
/// comparison, successful results only).
fn bridge_summary(ctx: &Ctx<'_>, f0: &BFrameLbl) -> VResult<(Summary, u64, u64)> {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        m.sync(ctx);
        let h = hash_key(&(
            &f0.left,
            &f0.right,
            f0.i,
            f0.j,
            f0.left_is_v,
            f0.right_is_v,
            f0.bridge_marked,
        ));
        if let Some(bucket) = m.bridge.get(&h) {
            for ((kl, kr, ki, kj, klv, krv, km), v) in bucket {
                if (*ki, *kj, *klv, *krv, *km)
                    == (f0.i, f0.j, f0.left_is_v, f0.right_is_v, f0.bridge_marked)
                    && kl == &f0.left
                    && kr == &f0.right
                {
                    return Ok(v.clone());
                }
            }
        }
        let left = parse_info(ctx, &f0.left)?;
        let right = parse_info(ctx, &f0.right)?;
        let (i, j) = (f0.i as usize, f0.j as usize);
        if !left.iface.lanes.contains(i) || !right.iface.lanes.contains(j) {
            return Err("bridge lane not in the respective side".into());
        }
        if !left.iface.lanes.is_disjoint(right.iface.lanes) {
            return Err("B sides share lanes".into());
        }
        for (is_v, info, lane) in [(f0.left_is_v, &left, i), (f0.right_is_v, &right, j)] {
            if is_v {
                if info.iface.lanes.len() != 1 || info.iface.tin != info.iface.tout {
                    return Err("V-node side with a non-V interface".into());
                }
                let recomputed = summary::base_v(ctx.alg, lane, info.iface.tin[&lane]);
                if recomputed.class != info.class {
                    return Err("V-node class mismatch".into());
                }
            }
        }
        let u = left.iface.tout[&i];
        let w = right.iface.tout[&j];
        let s = summary::bridge(ctx.alg, &left, &right, i, j, f0.bridge_marked)?;
        m.bridge.entry(h).or_default().push((
            (
                f0.left.clone(),
                f0.right.clone(),
                f0.i,
                f0.j,
                f0.left_is_v,
                f0.right_is_v,
                f0.bridge_marked,
            ),
            (s.clone(), u, w),
        ));
        m.entries += 1;
        Ok((s, u, w))
    })
}

/// Per-member bookkeeping inside one T-node group.
struct MemberCheck<'a> {
    frame: &'a TFrameLbl,
    own: Summary,
}

/// Verifies a group of certificates that all lie inside one `T`-node at
/// stack depth `depth`. `expect` is the interface claimed for this `T`-node
/// by the enclosing `B`-frame (nested case); `outermost` marks the root.
fn check_tnode(
    ctx: &Ctx<'_>,
    certs: &CertList<'_>,
    depth: usize,
    expect: Option<&BasicInfoLbl>,
    outermost: bool,
) -> VResult<()> {
    fn tf_at(c: &EdgeCertLbl, depth: usize) -> VResult<&TFrameLbl> {
        match c.frames.get(depth) {
            Some(FrameLbl::T(t)) => Ok(t),
            _ => Err("expected a T frame".into()),
        }
    }
    let first = tf_at(certs.first().ok_or("empty T-node group")?, depth)?;
    let (t_node, root_vertex) = (first.t_node, first.root_vertex);
    // Pointer consistency (Proposition 2.2 within this T-node).
    let mut my_d: Option<u32> = None;
    let mut has_parent = false;
    for &c in certs.iter() {
        let t = tf_at(c, depth)?;
        if t.t_node != t_node || t.root_vertex != root_vertex {
            return Err("inconsistent T-node context".into());
        }
        let (mine, other) = if ctx.my_id == c.a {
            (t.d_a, t.d_b)
        } else {
            (t.d_b, t.d_a)
        };
        if *my_d.get_or_insert(mine) != mine {
            return Err("inconsistent pointer distance".into());
        }
        if mine.abs_diff(other) > 1 {
            return Err("pointer distance jump".into());
        }
        if other.checked_add(1) == Some(mine) {
            has_parent = true;
        }
    }
    let d = my_d.ok_or("empty T-node group")?;
    if d == 0 && ctx.my_id != root_vertex {
        return Err("claims pointer distance 0 with wrong id".into());
    }
    if d > 0 && !has_parent {
        return Err("no decreasing pointer neighbour".into());
    }

    // Distinct members in first-appearance order (few members per vertex,
    // so the rescans below stay cheap and allocation-free).
    let mut members: InlineVec<u32, 8> = InlineVec::new();
    for &c in certs.iter() {
        let m = tf_at(c, depth)?.member;
        if !members.iter().any(|&x| x == m) {
            members.push(m);
        }
    }
    let mut checked: ScratchBuf<(u32, MemberCheck<'_>), 8> = ScratchBuf::new();
    for &member in members.iter() {
        let mut group: CertList<'_> = CertList::new();
        for &c in certs.iter() {
            if tf_at(c, depth)?.member == member {
                group.push(c);
            }
        }
        let frame = tf_at(group.first().ok_or("empty member group")?, depth)?;
        for &c in group.iter().skip(1) {
            let t = tf_at(c, depth)?;
            if t.subtree != frame.subtree
                || t.children != frame.children
                || t.is_root_member != frame.is_root_member
            {
                return Err("inconsistent member frames".into());
            }
        }
        if frame.subtree.node != member {
            return Err("subtree info names the wrong node".into());
        }
        // Member's own summary from the deeper frame.
        let own = check_member_own(ctx, &group, depth + 1, member)?;
        // Children claims: parsing, mutual lane disjointness, junction
        // ids against the member's own out-terminals, and the subtree
        // fold (f_P in lane-mask order) — one pure, memoized block.
        let acc = fold_children(ctx, &own, frame)?;
        // The recomputed subtree summary must equal the claimed one,
        // compared directly against the wire bytes (the prover emits the
        // canonical ascending lane order, so no claim needs re-parsing).
        if !summary_matches_lbl(ctx, &acc, &frame.subtree) {
            return Err("subtree class/interface recomputation mismatch".into());
        }
        if frame.is_root_member {
            if let Some(exp) = expect {
                // Compare class and interface only — the node-id hint
                // legitimately differs between the two claims.
                if exp.class != frame.subtree.class || exp.iface != frame.subtree.iface {
                    return Err("nested T-node interface mismatch".into());
                }
            }
            if outermost && !ctx.alg.accept(&acc.class) {
                return Err("root homomorphism class rejects the property".into());
            }
        }
        checked.push((member, MemberCheck { frame, own }));
    }

    // Junction / attachment rules.
    let mut roots = 0;
    for (_, mc) in checked.iter() {
        if mc.frame.is_root_member {
            roots += 1;
        }
    }
    if roots > 1 {
        return Err("two root members at one vertex".into());
    }
    if ctx.my_id == root_vertex && roots == 0 {
        return Err("pointer root vertex is not in the root member".into());
    }
    for &(member, ref mc) in checked.iter() {
        // R2: if I am a glue point (an in-terminal) of a non-root member,
        // my parent member must be present and list this member.
        let is_tin = mc.own.iface.tin.values().any(|&x| x == ctx.my_id);
        if is_tin && !mc.frame.is_root_member {
            let listed = checked.iter().any(|(_, p)| {
                p.frame
                    .children
                    .iter()
                    .any(|e| e.node == member && same_info(e, &mc.frame.subtree))
            });
            if !listed {
                return Err("dangling member: no parent lists it here".into());
            }
        }
        // R1: every child hanging at one of my out-terminals must be
        // physically present here.
        for entry in &mc.frame.children {
            let lanes = LaneSet(entry.iface.lanes);
            let attaches_here = lanes
                .iter()
                .any(|l| mc.own.iface.tout.get(&l) == Some(&ctx.my_id));
            if attaches_here {
                let present = checked
                    .iter()
                    .find(|(m, _)| *m == entry.node)
                    .map(|(_, c)| same_info(&c.frame.subtree, entry))
                    .unwrap_or(false);
                if !present {
                    return Err("listed child member is absent at its junction".into());
                }
            }
        }
    }
    Ok(())
}

/// Computes the member's own summary from its owning frame at `depth`
/// (an `E`, `P`, or `B` frame whose node id must equal `member`).
fn check_member_own(
    ctx: &Ctx<'_>,
    group: &CertList<'_>,
    depth: usize,
    member: u32,
) -> VResult<Summary> {
    let kind_of = |c: &EdgeCertLbl| -> VResult<u8> {
        match c.frames.get(depth) {
            Some(FrameLbl::E(_)) => Ok(0),
            Some(FrameLbl::P(_)) => Ok(1),
            Some(FrameLbl::B(_)) => Ok(2),
            _ => Err("member frame missing or of wrong kind".into()),
        }
    };
    let first = *group.first().ok_or("empty member group")?;
    let kind = kind_of(first)?;
    for &c in group.iter().skip(1) {
        if kind_of(c)? != kind {
            return Err("mixed member frame kinds".into());
        }
    }
    match kind {
        0 => {
            if group.len() != 1 {
                return Err("an E-node owns exactly one edge".into());
            }
            let c = first;
            let Some(FrameLbl::E(f)) = c.frames.get(depth) else {
                return Err("expected an E frame".into());
            };
            if f.node != member {
                return Err("E frame names the wrong node".into());
            }
            if c.frames.len() != depth + 1 {
                return Err("frames continue past an E-node".into());
            }
            let (lo, hi) = if f.tin < f.tout {
                (f.tin, f.tout)
            } else {
                (f.tout, f.tin)
            };
            if (lo, hi) != (c.a, c.b) {
                return Err("E-node terminals do not match the physical edge".into());
            }
            if f.lane as usize >= ctx.max_lanes {
                return Err("E-node lane exceeds the lane bound".into());
            }
            memo_base_e(ctx, f.lane, f.tin, f.tout, c.marked)
        }
        1 => {
            let Some(FrameLbl::P(f0)) = first.frames.get(depth) else {
                return Err("expected a P frame".into());
            };
            if f0.node != member {
                return Err("P frame names the wrong node".into());
            }
            if f0.ids.len() > ctx.max_lanes {
                return Err("P-node wider than the lane bound".into());
            }
            let t = f0
                .ids
                .iter()
                .position(|&x| x == ctx.my_id)
                .ok_or("I am not on the claimed P-node path")?;
            // A path-interior vertex must see exactly the edges at
            // positions t-1 and t; an endpoint sees just its one edge.
            // The two expected positions are distinct, so multiset
            // equality reduces to marking each expected slot at most once.
            let expected: [Option<u16>; 2] = [
                if t > 0 { Some((t - 1) as u16) } else { None },
                if t + 1 < f0.ids.len() {
                    Some(t as u16)
                } else {
                    None
                },
            ];
            let mut found = [false; 2];
            for &c in group.iter() {
                let Some(FrameLbl::P(f)) = c.frames.get(depth) else {
                    return Err("expected a P frame".into());
                };
                if f.ids != f0.ids || f.marks != f0.marks {
                    return Err("inconsistent P-node frames".into());
                }
                if c.frames.len() != depth + 1 {
                    return Err("frames continue past the P-node".into());
                }
                let pos = f.pos as usize;
                if pos + 1 >= f.ids.len() {
                    return Err("P edge position out of range".into());
                }
                let (u, v) = (f.ids[pos], f.ids[pos + 1]);
                let (lo, hi) = if u < v { (u, v) } else { (v, u) };
                if (lo, hi) != (c.a, c.b) || c.marked != f.marks[pos] {
                    return Err("P edge does not match its position".into());
                }
                let mut matched = false;
                for s in 0..2 {
                    if !found[s] && expected[s] == Some(f.pos) {
                        found[s] = true;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    return Err("incident P edges do not match my path position".into());
                }
            }
            for s in 0..2 {
                if expected[s].is_some() && !found[s] {
                    return Err("incident P edges do not match my path position".into());
                }
            }
            memo_base_p(ctx, &f0.ids, &f0.marks)
        }
        _ => check_bnode(ctx, group, depth, member),
    }
}

/// Verifies a `B`-node group and returns its recomputed summary (`f_B`).
fn check_bnode(ctx: &Ctx<'_>, group: &CertList<'_>, depth: usize, member: u32) -> VResult<Summary> {
    fn bf_at(c: &EdgeCertLbl, depth: usize) -> VResult<&BFrameLbl> {
        match c.frames.get(depth) {
            Some(FrameLbl::B(b)) => Ok(b),
            _ => Err("expected a B frame".into()),
        }
    }
    let f0 = bf_at(group.first().ok_or("empty member group")?, depth)?;
    if f0.node != member {
        return Err("B frame names the wrong node".into());
    }
    for &c in group.iter().skip(1) {
        let f = bf_at(c, depth)?;
        if (f.node, f.i, f.j, f.left_is_v, f.right_is_v, f.bridge_marked)
            != (
                f0.node,
                f0.i,
                f0.j,
                f0.left_is_v,
                f0.right_is_v,
                f0.bridge_marked,
            )
            || f.left != f0.left
            || f.right != f0.right
        {
            return Err("inconsistent B frames".into());
        }
    }
    // The pure half — side parsing, lane/V-node validation, `f_B` — is
    // memoized on the frame's wire content.
    let (merged, u, w) = bridge_summary(ctx, f0)?;
    // Partition into sides.
    let mut sides: [CertList<'_>; 3] = [CertList::new(), CertList::new(), CertList::new()];
    for &c in group.iter() {
        let f = bf_at(c, depth)?;
        if f.side > 2 {
            return Err("invalid B side".into());
        }
        sides[f.side as usize].push(c);
    }
    // The bridge edge.
    if ctx.my_id == u || ctx.my_id == w {
        if sides[0].len() != 1 {
            return Err("bridge endpoint must see exactly one bridge edge".into());
        }
        let c = *sides[0]
            .first()
            .ok_or("bridge endpoint must see exactly one bridge edge")?;
        let (lo, hi) = if u < w { (u, w) } else { (w, u) };
        if (lo, hi) != (c.a, c.b) || c.marked != f0.bridge_marked {
            return Err("bridge edge endpoints or mark mismatch".into());
        }
        if c.frames.len() != depth + 1 {
            return Err("frames continue past the bridge edge".into());
        }
    } else if !sides[0].is_empty() {
        return Err("bridge edge at a non-endpoint vertex".into());
    }
    // The two sides.
    for (side_no, is_v, info, endpoint) in [
        (1usize, f0.left_is_v, &f0.left, u),
        (2, f0.right_is_v, &f0.right, w),
    ] {
        let side = &sides[side_no];
        if is_v {
            if !side.is_empty() {
                return Err("edges claimed inside a V-node".into());
            }
            continue;
        }
        if ctx.my_id == endpoint && side.is_empty() {
            return Err("T-node side missing at its bridge endpoint".into());
        }
        if !side.is_empty() {
            check_tnode(ctx, side, depth + 1, Some(info), false)?;
        }
    }
    Ok(merged)
}
