//! Adversarial harnesses: soundness fuzzing for schemes behind the
//! unified [`Scheme`]/[`DynScheme`] API (T6) and the classic `Ω(log n)`
//! cut-and-splice lower bound (T8).

use lanecert_graph::generators;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::bits::{BitReader, BitWriter, Enc};
use crate::erased::{DynScheme, EncodedLabeling};
use crate::scheme::Scheme;
use crate::theorem1::EdgeLabel;
use crate::Configuration;

/// Mutations applied to honest Theorem 1 labelings.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Swap the labels of two edges.
    SwapLabels,
    /// Replace one label with another edge's label.
    CloneLabel,
    /// Flip the marked bit of one certificate.
    FlipMark,
    /// Perturb a homomorphism class id in some frame.
    BumpClass,
    /// Replace a homomorphism class id with one far outside the frozen
    /// table (canonical ids are dense from 0, so `u32::MAX` can never be
    /// interned — the verifier must reject it, never panic or index out
    /// of bounds).
    HugeClass,
    /// Drop all transit records from one edge.
    DropTransits,
}

/// Applies one corruption; returns `None` when the labeling has no
/// applicable site (e.g. no transits anywhere).
pub fn corrupt(labels: &[EdgeLabel], kind: Corruption, rng: &mut StdRng) -> Option<Vec<EdgeLabel>> {
    if labels.is_empty() {
        return None;
    }
    let mut out = labels.to_vec();
    let pick = rng.random_range(0..out.len());
    match kind {
        Corruption::SwapLabels => {
            if out.len() < 2 {
                return None;
            }
            let other = (pick + 1 + rng.random_range(0..out.len() - 1)) % out.len();
            out.swap(pick, other);
        }
        Corruption::CloneLabel => {
            if out.len() < 2 {
                return None;
            }
            let other = (pick + 1 + rng.random_range(0..out.len() - 1)) % out.len();
            out[pick] = out[other].clone();
        }
        Corruption::FlipMark => {
            out[pick].own.marked = !out[pick].own.marked;
        }
        Corruption::BumpClass => {
            use crate::theorem1::labels::FrameLbl;
            let label = &mut out[pick];
            let frame = label.own.frames.first_mut()?;
            match frame {
                FrameLbl::T(t) => t.subtree.class = t.subtree.class.wrapping_add(1),
                FrameLbl::B(b) => b.left.class = b.left.class.wrapping_add(1),
                _ => return None,
            }
        }
        Corruption::HugeClass => {
            use crate::theorem1::labels::FrameLbl;
            let label = &mut out[pick];
            let frame = label.own.frames.first_mut()?;
            match frame {
                FrameLbl::T(t) => t.subtree.class = u32::MAX,
                FrameLbl::B(b) => b.right.class = u32::MAX,
                _ => return None,
            }
        }
        Corruption::DropTransits => {
            let with = (0..out.len()).find(|&i| !out[i].transits.is_empty())?;
            out[with].transits.clear();
        }
    }
    Some(out)
}

/// Runs a battery of typed corruptions against an honest labeling of any
/// Theorem-1-labeled scheme; returns `(attempted, rejected)` counts.
/// Soundness demands `rejected == attempted` for any corruption that
/// changes what the labels certify — swaps and clones always change
/// *something* structurally here because every certificate names its
/// endpoints.
pub fn fuzz_scheme<S: Scheme<Label = EdgeLabel>>(
    scheme: &S,
    cfg: &Configuration,
    labels: &[EdgeLabel],
    seed: u64,
    rounds: usize,
) -> (usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = [
        Corruption::SwapLabels,
        Corruption::CloneLabel,
        Corruption::FlipMark,
        Corruption::BumpClass,
        Corruption::HugeClass,
        Corruption::DropTransits,
    ];
    let mut attempted = 0;
    let mut rejected = 0;
    for round in 0..rounds {
        let kind = kinds[round % kinds.len()];
        let Some(mutated) = corrupt(labels, kind, &mut rng) else {
            continue;
        };
        if mutated == labels {
            continue;
        }
        attempted += 1;
        let report = scheme
            .run(cfg, &mutated)
            .expect("corruptions preserve label count");
        if !report.accepted() {
            rejected += 1;
        }
    }
    (attempted, rejected)
}

/// Scheme-agnostic wire-level fuzzing through the erased layer: flips one
/// random payload bit of one random encoded label per round and re-runs
/// the verifier. Returns `(attempted, rejected)` — rounds that land on an
/// empty (zero-bit) label are skipped; every other flip changes the byte
/// image and counts as attempted.
///
/// Unlike [`fuzz_scheme`], a surviving flip is not automatically a
/// soundness bug: a flip may decode to a *different honest* certificate
/// for the same configuration (not possible for the schemes shipped here
/// on the graphs tested, but possible in principle), so callers decide
/// what ratio to demand.
pub fn fuzz_encoded(
    scheme: &dyn DynScheme,
    cfg: &Configuration,
    labels: &EncodedLabeling,
    seed: u64,
    rounds: usize,
) -> (usize, usize) {
    if labels.is_empty() || labels.total_bits() == 0 {
        return (0, 0);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attempted = 0;
    let mut rejected = 0;
    for _ in 0..rounds {
        let mut mutated = labels.clone();
        let pick = rng.random_range(0..mutated.len());
        let bits = mutated.get(pick).bits;
        if bits == 0 {
            continue;
        }
        mutated.flip_bit(pick, rng.random_range(0..bits));
        attempted += 1;
        let report = scheme
            .verify_encoded(cfg, &mutated)
            .expect("flips preserve label count");
        if !report.accepted() {
            rejected += 1;
        }
    }
    (attempted, rejected)
}

// ---------------------------------------------------------------------------
// The Ω(log n) cut-and-splice demonstration (KKP10).
// ---------------------------------------------------------------------------

/// A toy "this network is a path" scheme whose labels are distances to the
/// left endpoint truncated to `bits` bits. With `bits ≥ log₂ n` it is sound;
/// below that, the pigeonhole splice builds an accepted cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TruncatedDistLabel {
    /// `min(dist(u), dist(v)) mod 2^bits` for the edge `{u, v}`.
    pub d: u32,
    /// The truncation width (part of the scheme, not the certificate; kept
    /// in the label for simplicity of the demo harness).
    pub bits: u8,
}

impl Enc for TruncatedDistLabel {
    fn enc(&self, w: &mut BitWriter) {
        w.put_bits(self.d as u64, self.bits as usize);
        self.bits.enc(w);
    }
    fn dec(_r: &mut BitReader<'_>) -> Option<Self> {
        // bits field is needed first logically; for the demo we re-read in
        // the writing order using a two-pass trick: peek is unnecessary
        // because `bits` is fixed per scheme run — store d full-width.
        None
    }
}

/// Honest prover for the toy path scheme.
pub fn prove_path_scheme(cfg: &Configuration, bits: u8) -> Vec<TruncatedDistLabel> {
    let g = cfg.graph();
    // Find the left endpoint (degree-1 vertex with the smaller id) and
    // label edges by truncated distance.
    let ends: Vec<_> = g.vertices().filter(|&v| g.degree(v) == 1).collect();
    let start = ends
        .iter()
        .copied()
        .min_by_key(|&v| cfg.id_of(v))
        .unwrap_or_else(|| g.vertices().next().expect("non-empty"));
    let tree = lanecert_graph::traversal::bfs(g, start);
    let mask = (1u64 << bits) as u32 - 1;
    g.edges()
        .map(|(_, e)| TruncatedDistLabel {
            d: tree.dist[e.u.index()].min(tree.dist[e.v.index()]) & mask,
            bits,
        })
        .collect()
}

/// Runs the toy verifier directly on raw labels (bypassing the wire trip,
/// which this demo scheme does not define): a degree-2 vertex accepts iff
/// its two incident labels are `d` and `d + 1 (mod 2^bits)` for some `d`;
/// a degree-1 vertex accepts any single label in this toy; degree ≠ 1, 2
/// rejects.
pub fn run_path_scheme_raw(cfg: &Configuration, labels: &[TruncatedDistLabel]) -> bool {
    let g = cfg.graph();
    let modulus = |bits: u8| 1u32 << bits;
    g.vertices().all(|v| {
        let inc: Vec<&TruncatedDistLabel> = g
            .incident(v)
            .iter()
            .map(|h| &labels[h.edge.index()])
            .collect();
        match inc.len() {
            1 => true, // endpoints accept any single label in this toy
            2 => {
                let m = modulus(inc[0].bits);
                (inc[0].d + 1) % m == inc[1].d || (inc[1].d + 1) % m == inc[0].d
            }
            _ => false,
        }
    })
}

/// The pigeonhole attack: given an accepted labeling of `P_n` with `b`-bit
/// labels and `2^b < (n − 2) / 1`, find two edges with equal labels and
/// splice the segment between them into a cycle whose every local view
/// already occurred on the path. Returns the accepted cycle size on
/// success.
pub fn splice_attack(n: usize, bits: u8) -> Option<usize> {
    let g = generators::path_graph(n);
    let cfg = Configuration::with_sequential_ids(g);
    let labels = prove_path_scheme(&cfg, bits);
    assert!(
        run_path_scheme_raw(&cfg, &labels),
        "honest path must accept"
    );
    // Find i < j with equal labels; the interior vertices between edges i
    // and j (path edges are v_i—v_{i+1}) all accept on the spliced cycle.
    for i in 0..labels.len() {
        for j in (i + 1)..labels.len() {
            if labels[i] == labels[j] {
                let cycle_len = j - i;
                if cycle_len < 3 {
                    continue;
                }
                // Build the cycle on the interior segment.
                let cycle = generators::cycle_graph(cycle_len);
                let ccfg = Configuration::with_sequential_ids(cycle);
                // Cycle edge t corresponds to path edge i + t; the closing
                // edge reuses label j (= label i).
                let clabels: Vec<TruncatedDistLabel> =
                    (0..cycle_len).map(|t| labels[i + t].clone()).collect();
                if run_path_scheme_raw(&ccfg, &clabels) {
                    return Some(cycle_len);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProverHint;
    use crate::theorem1::{PathwidthScheme, SchemeOptions};
    use lanecert_algebra::{props::Bipartite, Algebra};
    use lanecert_pathwidth::{solver, IntervalRep};

    fn bipartite_scheme() -> PathwidthScheme {
        PathwidthScheme::new(
            Algebra::shared(Bipartite),
            SchemeOptions::exact_pathwidth(2),
        )
    }

    #[test]
    fn fuzzing_rejects_all_corruptions() {
        let g = generators::cycle_graph(8);
        let (_, pd) = solver::pathwidth_exact(&g).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
        let cfg = Configuration::with_random_ids(g, 21);
        let scheme = bipartite_scheme();
        let labels = scheme.prove_with_rep(&cfg, &rep).unwrap();
        assert!(scheme.run(&cfg, &labels).unwrap().accepted());
        let (attempted, rejected) = fuzz_scheme(&scheme, &cfg, &labels, 5, 40);
        assert!(attempted > 10);
        assert_eq!(rejected, attempted, "a corruption slipped through");
    }

    #[test]
    fn encoded_fuzzing_runs_through_the_erased_layer() {
        let g = generators::cycle_graph(8);
        let cfg = Configuration::with_random_ids(g, 3);
        let scheme = bipartite_scheme();
        let enc = DynScheme::prove_encoded(&scheme, &cfg, &ProverHint::auto()).unwrap();
        let (attempted, rejected) = fuzz_encoded(&scheme, &cfg, &enc, 7, 30);
        assert!(attempted > 10);
        // Every single-bit flip of a Theorem 1 certificate on this graph
        // is caught.
        assert_eq!(rejected, attempted);
    }

    #[test]
    fn out_of_range_class_ids_reject_cleanly() {
        // Canonical ids are dense from 0; adversarial labels may claim
        // any u32. Every such claim must come back as a verdict-level
        // rejection through both the typed and the erased layer — never
        // a panic, never CertError::Internal.
        let g = generators::cycle_graph(8);
        let (_, pd) = solver::pathwidth_exact(&g).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, g.vertex_count());
        let cfg = Configuration::with_random_ids(g, 13);
        let scheme = bipartite_scheme();
        let labels = scheme.prove_with_rep(&cfg, &rep).unwrap();
        let table_len = DynScheme::algebra_state_count(&scheme).unwrap() as u32;
        for bogus in [table_len, table_len + 1, u32::MAX / 2, u32::MAX] {
            let mut forged = labels.as_slice().to_vec();
            for label in &mut forged {
                for frame in &mut label.own.frames {
                    match frame {
                        crate::theorem1::labels::FrameLbl::T(t) => {
                            t.subtree.class = bogus;
                            for c in &mut t.children {
                                c.class = bogus;
                            }
                        }
                        crate::theorem1::labels::FrameLbl::B(b) => {
                            b.left.class = bogus;
                            b.right.class = bogus;
                        }
                        _ => {}
                    }
                }
            }
            let report = scheme.run(&cfg, &forged).unwrap();
            assert!(!report.accepted(), "class id {bogus} was accepted");
            let encoded = crate::erased::EncodedLabeling::encode(&forged);
            let erased: &dyn DynScheme = &scheme;
            let report = erased.verify_encoded(&cfg, &encoded).unwrap();
            assert!(!report.accepted(), "class id {bogus} (erased) was accepted");
        }
    }

    #[test]
    fn splice_succeeds_below_log_n() {
        // 3-bit labels on a 40-vertex path: pigeonhole guarantees a
        // repeated label within any 8 consecutive edges.
        assert!(splice_attack(40, 3).is_some());
    }

    #[test]
    fn splice_fails_with_enough_bits() {
        // 7 bits ≥ log2(40): labels never repeat, no splice exists.
        assert!(splice_attack(40, 7).is_none());
    }

    #[test]
    fn honest_wrong_graph_labels_rejected() {
        // Transplant honest labels from an even cycle onto an odd cycle of
        // the same size class: endpoints/ids no longer match.
        let g1 = generators::cycle_graph(8);
        let (_, pd) = solver::pathwidth_exact(&g1).unwrap();
        let rep = IntervalRep::from_decomposition(&pd, 8);
        let cfg1 = Configuration::with_sequential_ids(g1);
        let scheme = bipartite_scheme();
        let labels = scheme.prove_with_rep(&cfg1, &rep).unwrap();
        // Odd cycle (property false): reuse the first 7 labels.
        let g2 = generators::cycle_graph(7);
        let cfg2 = Configuration::with_sequential_ids(g2);
        let transplanted: Vec<EdgeLabel> = labels[..7].to_vec();
        let report = scheme.run(&cfg2, &transplanted).unwrap();
        assert!(!report.accepted());
    }
}
