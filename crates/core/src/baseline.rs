//! An FMR+24-style `O(log² n)` baseline for label-size comparison (T1),
//! behind the unified [`Scheme`] trait as [`BaselineScheme`] (registry
//! name [`crate::registry::FMR_BASELINE`]).
//!
//! Fraigniaud, Montealegre, Rapaport & Todinca certify MSO₂ on bounded
//! treewidth with `O(log² n)`-bit labels by replicating per-level
//! information along an `O(log n)`-depth balanced decomposition. This
//! module reproduces that *label-size shape* for path decompositions: a
//! balanced binary recursion over the bag sequence; each vertex stores one
//! frame per canonical range its bag-interval touches on the two
//! root-to-leaf paths of its endpoints — `O(log n)` frames of
//! `O(k log n)` bits (range bounds + the full separator bag).
//!
//! The verifier checks structural consistency (shared frames agree across
//! neighbours, separator bags list their members, intervals of adjacent
//! vertices overlap). As discussed in DESIGN.md this baseline is
//! completeness-grade: it exists to measure the `Θ(log² n)` label growth
//! against the paper's `Θ(log n)`, not as a contribution.

use lanecert_graph::VertexId;
use lanecert_pathwidth::IntervalRep;

use crate::bits::{BitReader, BitWriter, Enc};
use crate::scheme::{Labeling, ProverHint, Scheme, Verdict, VertexView};
use crate::{CertError, Configuration};

/// One recursion frame: a canonical bag range and its separator bag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeFrame {
    /// Range start (bag index).
    pub lo: u32,
    /// Range end (exclusive).
    pub hi: u32,
    /// Identifiers of the separator bag `X_mid`.
    pub separator: Vec<u64>,
}

/// The baseline's per-edge label: both endpoints' intervals plus the
/// recursion frames touching them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineLabel {
    /// Interval of the smaller-id endpoint.
    pub iv_a: (u32, u32),
    /// Interval of the larger-id endpoint.
    pub iv_b: (u32, u32),
    /// Endpoint ids (ascending).
    pub a: u64,
    /// Larger endpoint id.
    pub b: u64,
    /// Frames on the root-to-leaf paths of both endpoints' intervals.
    pub frames: Vec<RangeFrame>,
}

impl Enc for RangeFrame {
    fn enc(&self, w: &mut BitWriter) {
        self.lo.enc(w);
        self.hi.enc(w);
        self.separator.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            lo: Enc::dec(r)?,
            hi: Enc::dec(r)?,
            separator: Enc::dec(r)?,
        })
    }
}

impl Enc for BaselineLabel {
    fn enc(&self, w: &mut BitWriter) {
        self.iv_a.enc(w);
        self.iv_b.enc(w);
        self.a.enc(w);
        self.b.enc(w);
        self.frames.enc(w);
    }
    fn dec(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Self {
            iv_a: Enc::dec(r)?,
            iv_b: Enc::dec(r)?,
            a: Enc::dec(r)?,
            b: Enc::dec(r)?,
            frames: Enc::dec(r)?,
        })
    }
}

fn frames_for(
    cfg: &Configuration,
    bags: &[Vec<VertexId>],
    lo: u32,
    hi: u32,
    points: &[u32],
    out: &mut Vec<RangeFrame>,
) {
    if hi - lo <= 1 {
        return;
    }
    let mid = (lo + hi) / 2;
    out.push(RangeFrame {
        lo,
        hi,
        separator: bags[mid as usize].iter().map(|&v| cfg.id_of(v)).collect(),
    });
    let left: Vec<u32> = points.iter().copied().filter(|&p| p < mid).collect();
    let right: Vec<u32> = points.iter().copied().filter(|&p| p >= mid).collect();
    if !left.is_empty() {
        frames_for(cfg, bags, lo, mid, &left, out);
    }
    if !right.is_empty() {
        frames_for(cfg, bags, mid, hi, &right, out);
    }
}

/// The FMR+24-style baseline scheme.
///
/// The prover needs an interval representation — supply one via
/// [`ProverHint::with_representation`] or let [`ProverHint::auto`] invoke
/// the exact solver on small graphs.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineScheme;

impl BaselineScheme {
    /// Honest baseline prover against a known representation. Equivalent
    /// to [`Scheme::prove`] with [`ProverHint::with_representation`].
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidSpec`] when `rep` does not fit the graph.
    pub fn prove_with_rep(
        cfg: &Configuration,
        rep: &IntervalRep,
    ) -> Result<Labeling<BaselineLabel>, CertError> {
        crate::scheme::check_rep_fits(rep, cfg)?;
        Ok(Self::build_labels(cfg, rep))
    }

    /// Label construction over a representation known to fit the graph.
    fn build_labels(cfg: &Configuration, rep: &IntervalRep) -> Labeling<BaselineLabel> {
        let g = cfg.graph();
        let pd = rep.to_decomposition();
        let bags = pd.bags();
        let s = bags.len() as u32;
        Labeling::new(
            g.edges()
                .map(|(_, e)| {
                    let (mut x, mut y) = (e.u, e.v);
                    if cfg.id_of(x) > cfg.id_of(y) {
                        std::mem::swap(&mut x, &mut y);
                    }
                    let (ia, ib) = (rep.interval(x), rep.interval(y));
                    let mut frames = Vec::new();
                    // Endpoints of both intervals: O(log s) canonical
                    // ranges each.
                    let points = vec![ia.lo, ia.hi, ib.lo, ib.hi];
                    frames_for(cfg, bags, 0, s.max(1), &points, &mut frames);
                    frames.dedup();
                    BaselineLabel {
                        iv_a: (ia.lo, ia.hi),
                        iv_b: (ib.lo, ib.hi),
                        a: cfg.id_of(x),
                        b: cfg.id_of(y),
                        frames,
                    }
                })
                .collect(),
        )
    }
}

impl Scheme for BaselineScheme {
    type Label = BaselineLabel;

    fn name(&self) -> String {
        "fmr-baseline".into()
    }

    fn prove(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<Labeling<BaselineLabel>, CertError> {
        // `resolve` has already validated a supplied representation.
        let rep = hint.resolve(cfg)?;
        Ok(Self::build_labels(cfg, &rep))
    }

    /// Interval overlap on every edge, my id mentioned, separator bags
    /// that contain my bag-interval's midpoint list me.
    fn verify_at(&self, view: &VertexView<BaselineLabel>) -> Verdict {
        let mut my_iv: Option<(u32, u32)> = None;
        for l in view.incident {
            let Some(l) = l else {
                return Verdict::reject("undecodable baseline label");
            };
            let mine = if l.a == view.id {
                l.iv_a
            } else if l.b == view.id {
                l.iv_b
            } else {
                return Verdict::reject("label does not mention me");
            };
            if *my_iv.get_or_insert(mine) != mine {
                return Verdict::reject("inconsistent own interval");
            }
            let other = if l.a == view.id { l.iv_b } else { l.iv_a };
            if mine.0 > other.1 || other.0 > mine.1 {
                return Verdict::reject("adjacent intervals disjoint");
            }
            for f in &l.frames {
                if f.lo >= f.hi {
                    return Verdict::reject("empty frame range");
                }
                // lo < hi, so this midpoint form cannot overflow on
                // adversarial range bounds.
                let mid = f.lo + (f.hi - f.lo) / 2;
                let me_in_sep = mine.0 <= mid && mid <= mine.1;
                if me_in_sep && !f.separator.contains(&view.id) {
                    return Verdict::reject("separator bag omits me");
                }
            }
        }
        Verdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_graph::generators;
    use lanecert_pathwidth::solver;

    fn rep_of(g: &lanecert_graph::Graph) -> IntervalRep {
        let (_, pd) = solver::pathwidth_exact(g).unwrap();
        IntervalRep::from_decomposition(&pd, g.vertex_count())
    }

    #[test]
    fn completeness_on_families() {
        for g in [
            generators::path_graph(12),
            generators::cycle_graph(9),
            generators::caterpillar(4, 2),
        ] {
            let rep = rep_of(&g);
            let cfg = Configuration::with_random_ids(g, 4);
            let hint = ProverHint::with_representation(rep);
            let report = BaselineScheme.certify_and_run(&cfg, &hint).unwrap();
            assert!(report.accepted(), "{:?}", report.first_rejection());
        }
    }

    #[test]
    fn corrupted_interval_is_rejected() {
        let g = generators::path_graph(10);
        let rep = rep_of(&g);
        let cfg = Configuration::with_sequential_ids(g);
        let mut labels = BaselineScheme::prove_with_rep(&cfg, &rep).unwrap();
        labels[4].iv_a = (90, 95); // disjoint from its neighbour
        let report = BaselineScheme.run(&cfg, &labels).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn label_size_grows_like_log_squared() {
        // Compare total frame payload between n and n²: super-logarithmic.
        let sizes: Vec<usize> = [64usize, 4096]
            .iter()
            .map(|&n| {
                let g = generators::path_graph(n);
                // Direct width-2 representation of a path: I_{v_i} = [i, i+1].
                let rep = IntervalRep::new(
                    (0..n as u32)
                        .map(|i| lanecert_pathwidth::Interval::new(i, i + 1))
                        .collect(),
                );
                let cfg = Configuration::with_sequential_ids(g);
                let labels = BaselineScheme::prove_with_rep(&cfg, &rep).unwrap();
                labels.iter().map(crate::bits::bit_len).max().unwrap()
            })
            .collect();
        // log² growth: quadrupling the exponent should much more than
        // double the size... at least it must strictly grow.
        assert!(sizes[1] > sizes[0] * 2, "sizes: {sizes:?}");
    }
}
