//! The object-safe erased layer over [`Scheme`]: schemes operating on
//! encoded byte labels.
//!
//! A typed [`Scheme`] fixes its label format at compile time, which is
//! what the per-scheme provers and verifiers want — but registries,
//! builders, and batch runners need to hold *many* schemes behind one
//! type. [`DynScheme`] erases the label type by moving the wire encoding
//! to the boundary: provers emit [`EncodedLabeling`]s (raw bytes + exact
//! bit counts), verifiers decode per edge and reject undecodable labels,
//! exactly as the typed harness does. A blanket impl makes every
//! `Scheme` a `DynScheme`, and [`BoxedScheme`] is the unit of currency of
//! the [`SchemeRegistry`](crate::SchemeRegistry) and
//! [`Certifier`](crate::Certifier).
//!
//! # Memory layout
//!
//! An [`EncodedLabeling`] is **one contiguous byte buffer** plus an
//! offsets table — not a `Vec` of per-label allocations:
//!
//! ```text
//! buf:     [ label 0 bytes | label 1 bytes | ... | label m-1 bytes ]
//! offsets: [ 0, end0, end1, ..., end(m-1) ]      (m + 1 entries)
//! bits:    [ exact bit length per label ]        (m entries)
//! ```
//!
//! Label `e` is the borrowed slice `buf[offsets[e]..offsets[e+1]]`,
//! handed out as an [`EncodedLabelRef`] — verification never copies label
//! bytes, and the erased prover writes all labels through one reused
//! [`BitWriter`] straight into the buffer.
//!
//! The erased path is bit-identical to the typed path: encoding happens
//! with the same [`Enc`] impls, so verdicts and label-size statistics
//! agree between `scheme.run(...)` and
//! `(&scheme as &dyn DynScheme).verify_encoded(...)` (property-tested in
//! `tests/erased_parity.rs` and `tests/csr_parity.rs`).

use lanecert_graph::{CsrGraph, VertexId};

use crate::bits::{self, BitWriter, Enc};
use crate::scheme::{ProverHint, RunReport, Scheme, Verdict, VertexView};
use crate::{CertError, Configuration};

/// One label on the wire: its byte image and exact bit length, **owned**.
///
/// This is the construction/tampering currency: hand-built corpora and
/// adversarial tests build `EncodedLabel`s and splice them into an
/// [`EncodedLabeling`] with [`EncodedLabeling::set`]. The verification
/// hot path never materialises these — it reads borrowed
/// [`EncodedLabelRef`]s out of the shared buffer instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedLabel {
    /// The encoded bytes (last byte zero-padded past `bits`).
    pub bytes: Vec<u8>,
    /// Exact encoded size in bits.
    pub bits: usize,
}

impl EncodedLabel {
    /// Encodes a typed label.
    pub fn of<L: Enc>(label: &L) -> Self {
        let (bytes, bits) = bits::encode(label);
        Self { bytes, bits }
    }

    /// Decodes back to a typed label; `None` on malformed bytes.
    pub fn decode<L: Enc>(&self) -> Option<L> {
        bits::decode::<L>(&self.bytes)
    }

    /// `true` when the claimed bit length matches the byte image the way
    /// the encoder produces it (`bytes.len() == ceil(bits / 8)`). Both
    /// fields are adversary-controlled, so the erased verifier treats
    /// non-canonical labels as undecodable and measures their size from
    /// the byte image rather than the claim.
    pub fn is_canonical(&self) -> bool {
        self.bytes.len() == self.bits.div_ceil(8)
    }

    /// The label's wire size in bits: the claimed `bits` when canonical,
    /// otherwise the full byte image (so a label cannot under-report its
    /// size by lying about `bits`).
    pub fn measured_bits(&self) -> usize {
        if self.is_canonical() {
            self.bits
        } else {
            self.bytes.len() * 8
        }
    }

    /// Flips one payload bit (adversary helper). Positions outside the
    /// byte image (including ones a lying `bits` field would claim) are
    /// ignored so fuzzers can pick blindly without panicking.
    pub fn flip_bit(&mut self, pos: usize) {
        if pos < self.bits && pos / 8 < self.bytes.len() {
            self.bytes[pos / 8] ^= 1 << (pos % 8);
        }
    }
}

/// A borrowed view of one label inside an [`EncodedLabeling`]'s shared
/// buffer: the zero-copy counterpart of [`EncodedLabel`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EncodedLabelRef<'a> {
    /// The label's byte image — a slice of the labeling's buffer.
    pub bytes: &'a [u8],
    /// The claimed exact bit length.
    pub bits: usize,
}

impl EncodedLabelRef<'_> {
    /// Decodes to a typed label; `None` on malformed bytes.
    pub fn decode<L: Enc>(&self) -> Option<L> {
        bits::decode::<L>(self.bytes)
    }

    /// Decodes only canonical labels (see [`EncodedLabel::is_canonical`]);
    /// non-canonical ones are treated as undecodable, exactly as the
    /// erased verifier does.
    pub fn decode_canonical<L: Enc>(&self) -> Option<L> {
        if self.is_canonical() {
            self.decode()
        } else {
            None
        }
    }

    /// See [`EncodedLabel::is_canonical`].
    pub fn is_canonical(&self) -> bool {
        self.bytes.len() == self.bits.div_ceil(8)
    }

    /// See [`EncodedLabel::measured_bits`].
    pub fn measured_bits(&self) -> usize {
        if self.is_canonical() {
            self.bits
        } else {
            self.bytes.len() * 8
        }
    }

    /// Copies out an owned [`EncodedLabel`].
    pub fn to_label(&self) -> EncodedLabel {
        EncodedLabel {
            bytes: self.bytes.to_vec(),
            bits: self.bits,
        }
    }
}

/// An erased labeling: one encoded label per edge in **one contiguous
/// buffer** (see the [module docs](self) for the layout), optionally
/// stamped with the [`Scheme::fingerprint`] of the scheme that produced
/// it (the erased prover always stamps; hand-built labelings may leave it
/// off, in which case verification skips the check).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedLabeling {
    /// All label bytes, concatenated in edge order.
    buf: Vec<u8>,
    /// `m + 1` prefix sums: label `e` is `buf[offsets[e]..offsets[e+1]]`.
    offsets: Vec<u32>,
    /// Claimed exact bit length per label.
    bits: Vec<usize>,
    fingerprint: Option<u64>,
}

impl Default for EncodedLabeling {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            offsets: vec![0],
            bits: Vec::new(),
            fingerprint: None,
        }
    }
}

impl EncodedLabeling {
    /// Packs per-edge encoded labels into the contiguous layout (no
    /// fingerprint recorded).
    pub fn new(labels: Vec<EncodedLabel>) -> Self {
        let mut out = Self::default();
        out.buf.reserve(labels.iter().map(|l| l.bytes.len()).sum());
        out.offsets.reserve(labels.len());
        out.bits.reserve(labels.len());
        for label in &labels {
            out.push_raw(&label.bytes, label.bits);
        }
        out
    }

    /// Encodes a typed label slice straight into the shared buffer: one
    /// reused [`BitWriter`], zero per-label allocations (no fingerprint
    /// recorded).
    pub fn encode<L: Enc>(labels: &[L]) -> Self {
        let mut out = Self::default();
        out.offsets.reserve(labels.len());
        out.bits.reserve(labels.len());
        let mut w = BitWriter::new();
        for label in labels {
            label.enc(&mut w);
            let bits = w.flush_into(&mut out.buf);
            // lint: allow(no-panic) reason="prover-side encode; a >4 GiB label buffer is a resource exhaustion bug, not adversarial input"
            out.offsets
                .push(u32::try_from(out.buf.len()).expect("label buffer overflow"));
            out.bits.push(bits);
        }
        out
    }

    fn push_raw(&mut self, bytes: &[u8], bits: usize) {
        self.buf.extend_from_slice(bytes);
        // lint: allow(no-panic) reason="prover-side encode; a >4 GiB label buffer is a resource exhaustion bug, not adversarial input"
        self.offsets
            .push(u32::try_from(self.buf.len()).expect("label buffer overflow"));
        self.bits.push(bits);
    }

    /// Records the producing scheme's fingerprint (see
    /// [`Scheme::fingerprint`]).
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// The recorded scheme fingerprint, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when there are no labels.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Borrows label `i` out of the shared buffer (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> EncodedLabelRef<'_> {
        EncodedLabelRef {
            bytes: &self.buf[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            bits: self.bits[i],
        }
    }

    /// Iterates over borrowed labels in edge order.
    pub fn iter(&self) -> impl Iterator<Item = EncodedLabelRef<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Copies the labels back out as owned values (tests and corpora that
    /// want to rebuild or tamper wholesale).
    pub fn to_vec(&self) -> Vec<EncodedLabel> {
        self.iter().map(|l| l.to_label()).collect()
    }

    /// Replaces label `i` (adversary helper): splices the new byte image
    /// into the buffer and shifts the offsets table.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, label: &EncodedLabel) {
        let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        let old_len = end - start;
        self.buf.splice(start..end, label.bytes.iter().copied());
        if label.bytes.len() != old_len {
            let delta = label.bytes.len() as i64 - old_len as i64;
            for off in &mut self.offsets[i + 1..] {
                // lint: allow(no-panic) reason="test/adversary splice helper, never on the verify path"
                *off = u32::try_from(i64::from(*off) + delta).expect("label buffer overflow");
            }
        }
        self.bits[i] = label.bits;
    }

    /// Flips one payload bit of label `i` in place (adversary helper);
    /// positions outside the label's byte image are ignored, as in
    /// [`EncodedLabel::flip_bit`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip_bit(&mut self, i: usize, pos: usize) {
        let start = self.offsets[i] as usize;
        let len = self.offsets[i + 1] as usize - start;
        if pos < self.bits[i] && pos / 8 < len {
            self.buf[start + pos / 8] ^= 1 << (pos % 8);
        }
    }

    /// Maximum label size in bits ([`EncodedLabel::measured_bits`], so
    /// adversarial labelings cannot under-report their sizes).
    pub fn max_bits(&self) -> usize {
        self.iter().map(|l| l.measured_bits()).max().unwrap_or(0)
    }

    /// Total label bits ([`EncodedLabel::measured_bits`] per label).
    pub fn total_bits(&self) -> usize {
        self.iter().map(|l| l.measured_bits()).sum()
    }
}

/// An object-safe proof labeling scheme over encoded byte labels.
///
/// Obtained from any typed [`Scheme`] via the blanket impl; boxed as
/// [`BoxedScheme`] for registries and batch runners. `Send + Sync` are
/// supertraits: every vertex verifies from its local view alone, so
/// erased schemes are shareable across threads by construction — the
/// parallel entry points ([`DynScheme::par_verify_encoded`], the
/// `lanecert-engine` pipeline) rely on it.
pub trait DynScheme: Send + Sync {
    /// Registry/display name of the scheme instance.
    fn name(&self) -> String;

    /// The scheme's label-format digest (see [`Scheme::fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// Canonically interned algebra states backing the labels, when the
    /// scheme has such a table (see [`Scheme::algebra_state_count`]).
    fn algebra_state_count(&self) -> Option<usize>;

    /// Whether labels are a pure function of `(graph, hint)` (see
    /// [`Scheme::canonical_labels`]).
    fn canonical_labels(&self) -> bool;

    /// Honest certificate assignment, already wire-encoded.
    ///
    /// # Errors
    ///
    /// Prover refusals and hint failures; see [`CertError`].
    fn prove_encoded(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<EncodedLabeling, CertError>;

    /// Runs the verifier at every vertex against encoded (possibly
    /// adversarial) labels.
    ///
    /// Equivalent to [`DynScheme::verify_encoded_range`] over the full
    /// vertex range plus the labeling's size statistics, and subject to
    /// the same hot-path invariants.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
    ) -> Result<RunReport, CertError>;

    /// Runs the verifier at the contiguous vertex slice
    /// `range.start..range.end` only, returning one verdict per vertex in
    /// index order — the sharding primitive behind
    /// [`DynScheme::par_verify_encoded`] and the engine's per-vertex
    /// fan-out. A vertex's view (and therefore its verdict) is
    /// bit-identical to the full [`DynScheme::verify_encoded`] pass.
    ///
    /// # Hot-path invariants
    ///
    /// The blanket implementation streams the configuration's CSR arena
    /// ([`Configuration::csr`]) and upholds two invariants the throughput
    /// benchmarks (`mem_stats`) measure:
    ///
    /// * **Decode once per shard.** Each edge label incident to the range
    ///   is decoded at most once — *not* once per endpoint. Both
    ///   endpoints of an in-range edge borrow the same arena slot, and
    ///   label bytes are read in place from the labeling's shared buffer
    ///   ([`EncodedLabelRef`]), never copied.
    /// * **No allocations in the per-vertex loop.** The verify loop reuses
    ///   one scratch slice of label references, sized once from the CSR
    ///   arena's max degree; all decode work (the only part that may
    ///   allocate, for labels with heap payloads) happens in the decode
    ///   pass before the loop.
    ///
    /// `range` is clamped to the vertex count.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn verify_encoded_range(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<Verdict>, CertError>;

    /// Runs the verifier everywhere, sharding the vertex set across
    /// `threads` OS threads (scoped; clamped to `1..=n`, and down to a
    /// sequential pass when shards would fall under
    /// [`PAR_VERIFY_MIN_SHARD`] vertices — see
    /// [`par_verify_threads`]). Verdict order,
    /// verdict values, and label-size statistics are bit-identical to
    /// [`DynScheme::verify_encoded`] — shards are contiguous vertex
    /// ranges concatenated in index order, and every per-vertex check is
    /// a pure function of the vertex's view.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn par_verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        threads: usize,
    ) -> Result<RunReport, CertError> {
        let g = cfg.csr();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        let n = g.vertex_count();
        let threads = par_verify_threads(threads, n);
        if threads == 1 {
            return self.verify_encoded(cfg, labels);
        }
        // Stride-align shard boundaries (64 vertices ≈ one cache line of
        // the u32 CSR offsets table) so threads stream disjoint line
        // ranges of the arena; verdicts are a pure function of each view,
        // so alignment never changes the concatenated output.
        let chunk = n.div_ceil(threads);
        let chunk = if chunk >= 64 {
            chunk.next_multiple_of(64)
        } else {
            chunk
        };
        let shards: Vec<Result<Vec<Verdict>, CertError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = (t * chunk)..((t + 1) * chunk).min(n);
                    s.spawn(move || self.verify_encoded_range(cfg, labels, range))
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(no-panic) reason="propagates a shard panic to the caller; shards themselves are panic-free on wire bytes"
                .map(|h| h.join().expect("verifier shard panicked"))
                .collect()
        });
        let mut verdicts = Vec::with_capacity(n);
        for shard in shards {
            verdicts.extend(shard?);
        }
        Ok(RunReport {
            verdicts,
            max_label_bits: labels.max_bits(),
            total_label_bits: labels.total_bits(),
            edges: g.edge_count(),
        })
    }
}

/// Minimum vertices per shard before [`DynScheme::par_verify_encoded`]
/// fans out. A whole-graph verification pass over a few thousand
/// vertices takes well under a millisecond, so below this point thread
/// spawn/join overhead costs more than it saves — the committed bench
/// numbers showed 2-worker verify-only running at 0.6× sequential on a
/// 512-vertex instance before this cutoff existed.
pub const PAR_VERIFY_MIN_SHARD: usize = 2048;

/// Effective thread count for [`DynScheme::par_verify_encoded`]: the
/// request, clamped to `1..=n` and further so that every shard keeps at
/// least [`PAR_VERIFY_MIN_SHARD`] vertices. Returns 1 (sequential) for
/// instances too small to amortize fan-out. Pure, so the cutoff is
/// testable without timing.
pub fn par_verify_threads(requested: usize, n: usize) -> usize {
    requested
        .clamp(1, n.max(1))
        .min((n / PAR_VERIFY_MIN_SHARD).max(1))
}

/// Rejects labelings recorded under a different scheme fingerprint (see
/// [`CertError::FingerprintMismatch`]); unstamped labelings pass.
fn check_fingerprint<S: Scheme + Send + Sync>(
    scheme: &S,
    labels: &EncodedLabeling,
) -> Result<(), CertError> {
    if let Some(got) = labels.fingerprint() {
        let expected = Scheme::fingerprint(scheme);
        if got != expected {
            return Err(CertError::FingerprintMismatch { expected, got });
        }
    }
    Ok(())
}

/// The shared shard body: decode pass (each incident edge label decoded
/// at most once, straight from the shared buffer) followed by the
/// allocation-free verify loop. See the invariants documented on
/// [`DynScheme::verify_encoded_range`].
fn verify_span<S: Scheme + Send + Sync>(
    scheme: &S,
    cfg: &Configuration,
    g: &CsrGraph,
    labels: &EncodedLabeling,
    lo: usize,
    hi: usize,
) -> Vec<Verdict> {
    // Decode pass. `arena[e]` is `None` until edge `e` is first touched,
    // then `Some(decode result)` — endpoints inside the span share it.
    // The per-span decode tallies feed the obs counters after the loop;
    // `COMPILED` is a const, so uninstrumented builds fold all of this
    // away (and the zero-alloc region below is untouched either way).
    let (mut decoded, mut bytes_read) = (0u64, 0u64);
    let mut arena: Vec<Option<Option<S::Label>>> = (0..g.edge_count()).map(|_| None).collect();
    for v in lo..hi {
        for h in g.incident(VertexId::new(v)) {
            let e = h.edge.index();
            if arena[e].is_none() {
                let raw = labels.get(e);
                if lanecert_obs::COMPILED {
                    decoded += 1;
                    bytes_read += raw.bytes.len() as u64;
                }
                arena[e] = Some(raw.decode_canonical::<S::Label>());
            }
        }
    }
    if lanecert_obs::COMPILED && decoded > 0 {
        lanecert_obs::counter_add(lanecert_obs::names::LABELS_DECODED, decoded);
        lanecert_obs::counter_add(lanecert_obs::names::LABEL_BYTES_READ, bytes_read);
    }
    // Verify loop: reuses one scratch slice; views borrow from the arena.
    // An arena slot the decode pass somehow missed reads as an undecodable
    // label — a rejection, never a panic (adversarial bytes flow here).
    let mut scratch: Vec<Option<&S::Label>> = Vec::with_capacity(g.max_degree());
    // lint: zero-alloc {
    (lo..hi)
        .map(|v| {
            let v = VertexId::new(v);
            scratch.clear();
            scratch.extend(
                g.incident(v)
                    .iter()
                    .map(|h| arena[h.edge.index()].as_ref().and_then(|d| d.as_ref())),
            );
            scheme.verify_at(&VertexView {
                id: cfg.id_of(v),
                incident: &scratch,
            })
        })
        .collect()
    // lint: }
}

impl<S: Scheme + Send + Sync> DynScheme for S {
    fn name(&self) -> String {
        Scheme::name(self)
    }

    fn fingerprint(&self) -> u64 {
        Scheme::fingerprint(self)
    }

    fn algebra_state_count(&self) -> Option<usize> {
        Scheme::algebra_state_count(self)
    }

    fn canonical_labels(&self) -> bool {
        Scheme::canonical_labels(self)
    }

    fn prove_encoded(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<EncodedLabeling, CertError> {
        let labels = self.prove(cfg, hint)?;
        Ok(EncodedLabeling::encode(&labels).with_fingerprint(Scheme::fingerprint(self)))
    }

    fn verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
    ) -> Result<RunReport, CertError> {
        check_fingerprint(self, labels)?;
        let g = cfg.csr();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        Ok(RunReport {
            verdicts: verify_span(self, cfg, g, labels, 0, g.vertex_count()),
            max_label_bits: labels.max_bits(),
            total_label_bits: labels.total_bits(),
            edges: g.edge_count(),
        })
    }

    fn verify_encoded_range(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<Verdict>, CertError> {
        check_fingerprint(self, labels)?;
        let g = cfg.csr();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        let lo = range.start.min(g.vertex_count());
        let hi = range.end.min(g.vertex_count());
        Ok(verify_span(self, cfg, g, labels, lo, hi))
    }
}

/// A heap-allocated erased scheme — the registry's and builder's unit of
/// currency. `Send + Sync` come from the [`DynScheme`] supertraits.
pub type BoxedScheme = Box<dyn DynScheme>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Labeling;
    use lanecert_graph::generators;

    /// A toy scheme for harness tests: each edge carries `7u64`, every
    /// vertex checks all incident labels decode to 7.
    struct Sevens;

    impl Scheme for Sevens {
        type Label = u64;
        fn name(&self) -> String {
            "sevens".into()
        }
        fn prove(
            &self,
            cfg: &Configuration,
            _hint: &ProverHint,
        ) -> Result<Labeling<u64>, CertError> {
            Ok(vec![7u64; cfg.graph().edge_count()].into())
        }
        fn verify_at(&self, view: &VertexView<'_, u64>) -> Verdict {
            if view.incident.iter().all(|l| *l == Some(&7)) {
                Verdict::Accept
            } else {
                Verdict::reject("not seven")
            }
        }
    }

    #[test]
    fn erased_roundtrip_matches_typed() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let typed = Sevens.certify_and_run(&cfg, &ProverHint::auto()).unwrap();
        let boxed: BoxedScheme = Box::new(Sevens);
        let enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        let erased = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert_eq!(typed.verdicts, erased.verdicts);
        assert_eq!(typed.max_label_bits, erased.max_label_bits);
        assert_eq!(typed.total_label_bits, erased.total_label_bits);
        assert_eq!(typed.edges, erased.edges);
    }

    #[test]
    fn contiguous_layout_roundtrips() {
        // `new` (owned labels) and `encode` (typed labels) agree on the
        // packed representation, and `get`/`to_vec` read back exactly
        // what went in.
        let labels: Vec<u64> = vec![7, 0, u64::MAX, 300];
        let owned: Vec<EncodedLabel> = labels.iter().map(EncodedLabel::of).collect();
        let a = EncodedLabeling::new(owned.clone());
        let b = EncodedLabeling::encode(&labels);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_vec(), owned);
        for (i, l) in owned.iter().enumerate() {
            assert_eq!(a.get(i).bytes, &l.bytes[..]);
            assert_eq!(a.get(i).bits, l.bits);
            assert_eq!(a.get(i).decode::<u64>(), Some(labels[i]));
        }
    }

    #[test]
    fn set_splices_shorter_and_longer_labels() {
        let mut enc = EncodedLabeling::encode(&[1u64, 2, 3]);
        // Replace the middle label with a longer one, then a shorter one;
        // the neighbours must be untouched both times.
        for replacement in [EncodedLabel::of(&u64::MAX), EncodedLabel::of(&0u64)] {
            enc.set(1, &replacement);
            assert_eq!(enc.get(0).decode::<u64>(), Some(1));
            assert_eq!(enc.get(1).to_label(), replacement);
            assert_eq!(enc.get(2).decode::<u64>(), Some(3));
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.flip_bit(0, 1);
        let report = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn non_canonical_labels_are_rejected_and_sized_from_bytes() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        // Lie about the size: kilobyte payload claiming one bit.
        enc.set(
            0,
            &EncodedLabel {
                bytes: vec![0xFF; 128],
                bits: 1,
            },
        );
        assert!(!enc.get(0).is_canonical());
        assert_eq!(enc.get(0).measured_bits(), 128 * 8);
        assert!(enc.max_bits() >= 128 * 8);
        let report = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert!(!report.accepted());
        assert!(report.max_label_bits >= 128 * 8);
        // Flipping a bit the lying `bits` field claims but the byte image
        // lacks must not panic (owned and packed forms alike).
        let mut tiny = EncodedLabel {
            bytes: Vec::new(),
            bits: 5,
        };
        tiny.flip_bit(3);
        assert!(tiny.bytes.is_empty());
        let mut packed = EncodedLabeling::new(vec![tiny.clone()]);
        packed.flip_bit(0, 3);
        assert_eq!(packed.get(0).to_label(), tiny);
    }

    #[test]
    fn range_verify_matches_full_pass() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(9));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.flip_bit(4, 0); // make verdicts non-uniform
        let full = boxed.verify_encoded(&cfg, &enc).unwrap();
        for split in [0, 1, 4, 9] {
            let mut verdicts = boxed.verify_encoded_range(&cfg, &enc, 0..split).unwrap();
            verdicts.extend(
                boxed
                    .verify_encoded_range(&cfg, &enc, split..usize::MAX)
                    .unwrap(),
            );
            assert_eq!(verdicts, full.verdicts, "split at {split}");
        }
    }

    #[test]
    fn par_verify_is_bit_identical_to_sequential() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(17));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.flip_bit(3, 2);
        let sequential = boxed.verify_encoded(&cfg, &enc).unwrap();
        for threads in [1, 2, 4, 32] {
            let parallel = boxed.par_verify_encoded(&cfg, &enc, threads).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // Count mismatches surface as the same error, not a panic.
        assert_eq!(
            boxed
                .par_verify_encoded(&cfg, &EncodedLabeling::default(), 4)
                .unwrap_err(),
            CertError::LabelCountMismatch {
                expected: 17,
                got: 0
            }
        );
    }

    #[test]
    fn par_verify_stays_sequential_below_the_shard_cutoff() {
        // The BENCH regression this pins: 2-worker verify-only ran at
        // 0.6× sequential on a 512-vertex instance because fan-out
        // overhead dominated the sub-millisecond pass.
        assert_eq!(par_verify_threads(2, 512), 1);
        assert_eq!(par_verify_threads(8, PAR_VERIFY_MIN_SHARD), 1);
        assert_eq!(par_verify_threads(8, 2 * PAR_VERIFY_MIN_SHARD), 2);
        // Large instances still fan all the way out…
        assert_eq!(par_verify_threads(8, 16 * PAR_VERIFY_MIN_SHARD), 8);
        // …and the existing clamps survive the cutoff.
        assert_eq!(par_verify_threads(0, 10 * PAR_VERIFY_MIN_SHARD), 1);
        assert_eq!(par_verify_threads(64, 0), 1);
        assert_eq!(par_verify_threads(usize::MAX, 3), 1);
    }

    #[test]
    fn fingerprint_mismatch_fails_loudly() {
        // A labeling recorded under a different scheme/table version must
        // surface as a typed error, not misdecode into rejections.
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        assert_eq!(enc.fingerprint(), Some(boxed.fingerprint()));
        let foreign = enc.clone().with_fingerprint(boxed.fingerprint() ^ 1);
        let err = boxed.verify_encoded(&cfg, &foreign).unwrap_err();
        assert!(
            matches!(err, CertError::FingerprintMismatch { .. }),
            "{err:?}"
        );
        let err = boxed
            .verify_encoded_range(&cfg, &foreign, 0..2)
            .unwrap_err();
        assert!(matches!(err, CertError::FingerprintMismatch { .. }));
        let err = boxed.par_verify_encoded(&cfg, &foreign, 3).unwrap_err();
        assert!(matches!(err, CertError::FingerprintMismatch { .. }));
        // Unstamped labelings (hand-built corpora) skip the check.
        let unstamped = EncodedLabeling::new(enc.to_vec());
        assert!(boxed.verify_encoded(&cfg, &unstamped).unwrap().accepted());
    }

    #[test]
    fn erased_count_mismatch_is_an_error() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let err = boxed
            .verify_encoded(&cfg, &EncodedLabeling::default())
            .unwrap_err();
        assert_eq!(
            err,
            CertError::LabelCountMismatch {
                expected: 5,
                got: 0
            }
        );
    }
}
