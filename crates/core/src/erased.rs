//! The object-safe erased layer over [`Scheme`]: schemes operating on
//! encoded byte labels.
//!
//! A typed [`Scheme`] fixes its label format at compile time, which is
//! what the per-scheme provers and verifiers want — but registries,
//! builders, and batch runners need to hold *many* schemes behind one
//! type. [`DynScheme`] erases the label type by moving the wire encoding
//! to the boundary: provers emit [`EncodedLabeling`]s (raw bytes + exact
//! bit counts), verifiers decode per edge and reject undecodable labels,
//! exactly as the typed harness does. A blanket impl makes every
//! `Scheme` a `DynScheme`, and [`BoxedScheme`] is the unit of currency of
//! the [`SchemeRegistry`](crate::SchemeRegistry) and
//! [`Certifier`](crate::Certifier).
//!
//! The erased path is bit-identical to the typed path: encoding happens
//! with the same [`Enc`] impls, so verdicts and label-size statistics
//! agree between `scheme.run(...)` and
//! `(&scheme as &dyn DynScheme).verify_encoded(...)` (property-tested in
//! `tests/erased_parity.rs`).

use lanecert_graph::Graph;

use crate::bits::{self, Enc};
use crate::scheme::{ProverHint, RunReport, Scheme, Verdict, VertexView};
use crate::{CertError, Configuration};

/// One label on the wire: its byte image and exact bit length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedLabel {
    /// The encoded bytes (last byte zero-padded past `bits`).
    pub bytes: Vec<u8>,
    /// Exact encoded size in bits.
    pub bits: usize,
}

impl EncodedLabel {
    /// Encodes a typed label.
    pub fn of<L: Enc>(label: &L) -> Self {
        let (bytes, bits) = bits::encode(label);
        Self { bytes, bits }
    }

    /// Decodes back to a typed label; `None` on malformed bytes.
    pub fn decode<L: Enc>(&self) -> Option<L> {
        bits::decode::<L>(&self.bytes)
    }

    /// `true` when the claimed bit length matches the byte image the way
    /// the encoder produces it (`bytes.len() == ceil(bits / 8)`). Both
    /// fields are public and adversary-controlled, so the erased verifier
    /// treats non-canonical labels as undecodable and measures their size
    /// from the byte image rather than the claim.
    pub fn is_canonical(&self) -> bool {
        self.bytes.len() == self.bits.div_ceil(8)
    }

    /// The label's wire size in bits: the claimed `bits` when canonical,
    /// otherwise the full byte image (so a label cannot under-report its
    /// size by lying about `bits`).
    pub fn measured_bits(&self) -> usize {
        if self.is_canonical() {
            self.bits
        } else {
            self.bytes.len() * 8
        }
    }

    /// Flips one payload bit (adversary helper). Positions outside the
    /// byte image (including ones a lying `bits` field would claim) are
    /// ignored so fuzzers can pick blindly without panicking.
    pub fn flip_bit(&mut self, pos: usize) {
        if pos < self.bits && pos / 8 < self.bytes.len() {
            self.bytes[pos / 8] ^= 1 << (pos % 8);
        }
    }
}

/// An erased labeling: one [`EncodedLabel`] per edge, optionally stamped
/// with the [`Scheme::fingerprint`] of the scheme that produced it (the
/// erased prover always stamps; hand-built labelings may leave it off,
/// in which case verification skips the check).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EncodedLabeling {
    labels: Vec<EncodedLabel>,
    fingerprint: Option<u64>,
}

impl EncodedLabeling {
    /// Wraps per-edge encoded labels (no fingerprint recorded).
    pub fn new(labels: Vec<EncodedLabel>) -> Self {
        Self {
            labels,
            fingerprint: None,
        }
    }

    /// Encodes a typed label slice (no fingerprint recorded).
    pub fn encode<L: Enc>(labels: &[L]) -> Self {
        Self::new(labels.iter().map(EncodedLabel::of).collect())
    }

    /// Records the producing scheme's fingerprint (see
    /// [`Scheme::fingerprint`]).
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// The recorded scheme fingerprint, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when there are no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels as a slice.
    pub fn as_slice(&self) -> &[EncodedLabel] {
        &self.labels
    }

    /// Mutable access for adversarial tampering.
    pub fn as_mut_slice(&mut self) -> &mut [EncodedLabel] {
        &mut self.labels
    }

    /// Maximum label size in bits ([`EncodedLabel::measured_bits`], so
    /// adversarial labelings cannot under-report their sizes).
    pub fn max_bits(&self) -> usize {
        self.labels
            .iter()
            .map(EncodedLabel::measured_bits)
            .max()
            .unwrap_or(0)
    }

    /// Total label bits ([`EncodedLabel::measured_bits`] per label).
    pub fn total_bits(&self) -> usize {
        self.labels.iter().map(EncodedLabel::measured_bits).sum()
    }
}

/// An object-safe proof labeling scheme over encoded byte labels.
///
/// Obtained from any typed [`Scheme`] via the blanket impl; boxed as
/// [`BoxedScheme`] for registries and batch runners. `Send + Sync` are
/// supertraits: every vertex verifies from its local view alone, so
/// erased schemes are shareable across threads by construction — the
/// parallel entry points ([`DynScheme::par_verify_encoded`], the
/// `lanecert-engine` pipeline) rely on it.
pub trait DynScheme: Send + Sync {
    /// Registry/display name of the scheme instance.
    fn name(&self) -> String;

    /// The scheme's label-format digest (see [`Scheme::fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// Canonically interned algebra states backing the labels, when the
    /// scheme has such a table (see [`Scheme::algebra_state_count`]).
    fn algebra_state_count(&self) -> Option<usize>;

    /// Whether labels are a pure function of `(graph, hint)` (see
    /// [`Scheme::canonical_labels`]).
    fn canonical_labels(&self) -> bool;

    /// Honest certificate assignment, already wire-encoded.
    ///
    /// # Errors
    ///
    /// Prover refusals and hint failures; see [`CertError`].
    fn prove_encoded(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<EncodedLabeling, CertError>;

    /// Runs the verifier at every vertex against encoded (possibly
    /// adversarial) labels.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
    ) -> Result<RunReport, CertError>;

    /// Runs the verifier at the contiguous vertex slice
    /// `range.start..range.end` only, returning one verdict per vertex in
    /// index order — the sharding primitive behind
    /// [`DynScheme::par_verify_encoded`] and the engine's per-vertex
    /// fan-out. Each shard decodes exactly the labels incident to its
    /// vertices, so a vertex's view (and therefore its verdict) is
    /// bit-identical to the full [`DynScheme::verify_encoded`] pass.
    ///
    /// `range` is clamped to the vertex count.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn verify_encoded_range(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<Verdict>, CertError>;

    /// Runs the verifier everywhere, sharding the vertex set across
    /// `threads` OS threads (scoped; clamped to `1..=n`). Verdict order,
    /// verdict values, and label-size statistics are bit-identical to
    /// [`DynScheme::verify_encoded`] — shards are contiguous vertex
    /// ranges concatenated in index order, and every per-vertex check is
    /// a pure function of the vertex's view.
    ///
    /// # Errors
    ///
    /// [`CertError::LabelCountMismatch`] when `labels` has the wrong
    /// length for `cfg`.
    fn par_verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        threads: usize,
    ) -> Result<RunReport, CertError> {
        let g = cfg.graph();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        let n = g.vertex_count();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            return self.verify_encoded(cfg, labels);
        }
        let chunk = n.div_ceil(threads);
        let shards: Vec<Result<Vec<Verdict>, CertError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = (t * chunk)..((t + 1) * chunk).min(n);
                    s.spawn(move || self.verify_encoded_range(cfg, labels, range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verifier shard panicked"))
                .collect()
        });
        let mut verdicts = Vec::with_capacity(n);
        for shard in shards {
            verdicts.extend(shard?);
        }
        Ok(RunReport {
            verdicts,
            max_label_bits: labels.max_bits(),
            total_label_bits: labels.total_bits(),
            edges: g.edge_count(),
        })
    }
}

/// Builds a vertex's view by decoding the incident encoded labels.
fn view_of<L: Enc + Clone>(
    cfg: &Configuration,
    g: &Graph,
    v: lanecert_graph::VertexId,
    decoded: &[Option<L>],
) -> VertexView<L> {
    VertexView {
        id: cfg.id_of(v),
        incident: g
            .incident(v)
            .iter()
            .map(|h| decoded[h.edge.index()].clone())
            .collect(),
    }
}

/// Rejects labelings recorded under a different scheme fingerprint (see
/// [`CertError::FingerprintMismatch`]); unstamped labelings pass.
fn check_fingerprint<S: Scheme + Send + Sync>(
    scheme: &S,
    labels: &EncodedLabeling,
) -> Result<(), CertError> {
    if let Some(got) = labels.fingerprint() {
        let expected = Scheme::fingerprint(scheme);
        if got != expected {
            return Err(CertError::FingerprintMismatch { expected, got });
        }
    }
    Ok(())
}

impl<S: Scheme + Send + Sync> DynScheme for S {
    fn name(&self) -> String {
        Scheme::name(self)
    }

    fn fingerprint(&self) -> u64 {
        Scheme::fingerprint(self)
    }

    fn algebra_state_count(&self) -> Option<usize> {
        Scheme::algebra_state_count(self)
    }

    fn canonical_labels(&self) -> bool {
        Scheme::canonical_labels(self)
    }

    fn prove_encoded(
        &self,
        cfg: &Configuration,
        hint: &ProverHint,
    ) -> Result<EncodedLabeling, CertError> {
        let labels = self.prove(cfg, hint)?;
        Ok(EncodedLabeling::encode(&labels).with_fingerprint(Scheme::fingerprint(self)))
    }

    fn verify_encoded(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
    ) -> Result<RunReport, CertError> {
        check_fingerprint(self, labels)?;
        let g = cfg.graph();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        let decoded: Vec<Option<S::Label>> = labels
            .as_slice()
            .iter()
            .map(|l| if l.is_canonical() { l.decode() } else { None })
            .collect();
        let verdicts: Vec<Verdict> = g
            .vertices()
            .map(|v| self.verify_at(&view_of(cfg, g, v, &decoded)))
            .collect();
        Ok(RunReport {
            verdicts,
            max_label_bits: labels.max_bits(),
            total_label_bits: labels.total_bits(),
            edges: g.edge_count(),
        })
    }

    fn verify_encoded_range(
        &self,
        cfg: &Configuration,
        labels: &EncodedLabeling,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<Verdict>, CertError> {
        check_fingerprint(self, labels)?;
        let g = cfg.graph();
        if labels.len() != g.edge_count() {
            return Err(CertError::LabelCountMismatch {
                expected: g.edge_count(),
                got: labels.len(),
            });
        }
        let lo = range.start.min(g.vertex_count());
        let hi = range.end.min(g.vertex_count());
        let slice = labels.as_slice();
        // Decode per incident edge rather than all labels up front: a
        // shard touches only its own boundary, and each decode is a pure
        // function of the bytes, so views match the full pass exactly.
        let decode = |e: usize| -> Option<S::Label> {
            let l = &slice[e];
            if l.is_canonical() {
                l.decode()
            } else {
                None
            }
        };
        Ok((lo..hi)
            .map(|v| {
                let v = lanecert_graph::VertexId::new(v);
                let view = VertexView {
                    id: cfg.id_of(v),
                    incident: g
                        .incident(v)
                        .iter()
                        .map(|h| decode(h.edge.index()))
                        .collect(),
                };
                self.verify_at(&view)
            })
            .collect())
    }
}

/// A heap-allocated erased scheme — the registry's and builder's unit of
/// currency. `Send + Sync` come from the [`DynScheme`] supertraits.
pub type BoxedScheme = Box<dyn DynScheme>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Labeling;
    use lanecert_graph::generators;

    /// A toy scheme for harness tests: each edge carries `7u64`, every
    /// vertex checks all incident labels decode to 7.
    struct Sevens;

    impl Scheme for Sevens {
        type Label = u64;
        fn name(&self) -> String {
            "sevens".into()
        }
        fn prove(
            &self,
            cfg: &Configuration,
            _hint: &ProverHint,
        ) -> Result<Labeling<u64>, CertError> {
            Ok(vec![7u64; cfg.graph().edge_count()].into())
        }
        fn verify_at(&self, view: &VertexView<u64>) -> Verdict {
            if view.incident.iter().all(|l| *l == Some(7)) {
                Verdict::Accept
            } else {
                Verdict::reject("not seven")
            }
        }
    }

    #[test]
    fn erased_roundtrip_matches_typed() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let typed = Sevens.certify_and_run(&cfg, &ProverHint::auto()).unwrap();
        let boxed: BoxedScheme = Box::new(Sevens);
        let enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        let erased = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert_eq!(typed.verdicts, erased.verdicts);
        assert_eq!(typed.max_label_bits, erased.max_label_bits);
        assert_eq!(typed.total_label_bits, erased.total_label_bits);
        assert_eq!(typed.edges, erased.edges);
    }

    #[test]
    fn bit_flip_is_detected() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.as_mut_slice()[0].flip_bit(1);
        let report = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert!(!report.accepted());
    }

    #[test]
    fn non_canonical_labels_are_rejected_and_sized_from_bytes() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        // Lie about the size: kilobyte payload claiming one bit.
        enc.as_mut_slice()[0] = EncodedLabel {
            bytes: vec![0xFF; 128],
            bits: 1,
        };
        assert!(!enc.as_slice()[0].is_canonical());
        assert_eq!(enc.as_slice()[0].measured_bits(), 128 * 8);
        assert!(enc.max_bits() >= 128 * 8);
        let report = boxed.verify_encoded(&cfg, &enc).unwrap();
        assert!(!report.accepted());
        assert!(report.max_label_bits >= 128 * 8);
        // Flipping a bit the lying `bits` field claims but the byte image
        // lacks must not panic.
        let mut tiny = EncodedLabel {
            bytes: Vec::new(),
            bits: 5,
        };
        tiny.flip_bit(3);
        assert!(tiny.bytes.is_empty());
    }

    #[test]
    fn range_verify_matches_full_pass() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(9));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.as_mut_slice()[4].flip_bit(0); // make verdicts non-uniform
        let full = boxed.verify_encoded(&cfg, &enc).unwrap();
        for split in [0, 1, 4, 9] {
            let mut verdicts = boxed.verify_encoded_range(&cfg, &enc, 0..split).unwrap();
            verdicts.extend(
                boxed
                    .verify_encoded_range(&cfg, &enc, split..usize::MAX)
                    .unwrap(),
            );
            assert_eq!(verdicts, full.verdicts, "split at {split}");
        }
    }

    #[test]
    fn par_verify_is_bit_identical_to_sequential() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(17));
        let boxed: BoxedScheme = Box::new(Sevens);
        let mut enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        enc.as_mut_slice()[3].flip_bit(2);
        let sequential = boxed.verify_encoded(&cfg, &enc).unwrap();
        for threads in [1, 2, 4, 32] {
            let parallel = boxed.par_verify_encoded(&cfg, &enc, threads).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // Count mismatches surface as the same error, not a panic.
        assert_eq!(
            boxed
                .par_verify_encoded(&cfg, &EncodedLabeling::default(), 4)
                .unwrap_err(),
            CertError::LabelCountMismatch {
                expected: 17,
                got: 0
            }
        );
    }

    #[test]
    fn fingerprint_mismatch_fails_loudly() {
        // A labeling recorded under a different scheme/table version must
        // surface as a typed error, not misdecode into rejections.
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let enc = boxed.prove_encoded(&cfg, &ProverHint::auto()).unwrap();
        assert_eq!(enc.fingerprint(), Some(boxed.fingerprint()));
        let foreign = enc.clone().with_fingerprint(boxed.fingerprint() ^ 1);
        let err = boxed.verify_encoded(&cfg, &foreign).unwrap_err();
        assert!(
            matches!(err, CertError::FingerprintMismatch { .. }),
            "{err:?}"
        );
        let err = boxed
            .verify_encoded_range(&cfg, &foreign, 0..2)
            .unwrap_err();
        assert!(matches!(err, CertError::FingerprintMismatch { .. }));
        let err = boxed.par_verify_encoded(&cfg, &foreign, 3).unwrap_err();
        assert!(matches!(err, CertError::FingerprintMismatch { .. }));
        // Unstamped labelings (hand-built corpora) skip the check.
        let unstamped = EncodedLabeling::new(enc.as_slice().to_vec());
        assert!(boxed.verify_encoded(&cfg, &unstamped).unwrap().accepted());
    }

    #[test]
    fn erased_count_mismatch_is_an_error() {
        let cfg = Configuration::with_sequential_ids(generators::cycle_graph(5));
        let boxed: BoxedScheme = Box::new(Sevens);
        let err = boxed
            .verify_encoded(&cfg, &EncodedLabeling::default())
            .unwrap_err();
        assert_eq!(
            err,
            CertError::LabelCountMismatch {
                expected: 5,
                got: 0
            }
        );
    }
}
