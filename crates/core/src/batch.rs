//! Batched certification: run one scheme over many configurations in a
//! single call, with aggregated reporting.
//!
//! This is the serving-shaped entry point from the ROADMAP: experiments
//! (table T1/T5), maintenance sweeps, and future high-throughput workloads
//! hand a [`BatchRunner`] a list of [`BatchJob`]s and get one
//! [`BatchReport`] back — per-job outcomes plus fleet-level aggregates —
//! instead of re-implementing the prove→encode→verify→report loop per
//! call site.

use crate::certifier::Certifier;
use crate::scheme::{ProverHint, RunReport};
use crate::{CertError, Configuration};

/// One unit of batch work: a configuration plus an optional per-job
/// prover hint and an optional display name.
#[derive(Debug)]
pub struct BatchJob {
    /// Display name for reports (falls back to the job index).
    pub name: Option<String>,
    /// The network to certify.
    pub cfg: Configuration,
    /// Hint for this job's prover run; `None` uses the certifier's
    /// default hint (set via
    /// [`CertifierBuilder::representation`](crate::CertifierBuilder::representation)).
    pub hint: Option<ProverHint>,
}

impl BatchJob {
    /// A job using the certifier's default hint.
    pub fn new(cfg: Configuration) -> Self {
        Self {
            name: None,
            cfg,
            hint: None,
        }
    }

    /// Sets a per-job prover hint, overriding the certifier's default.
    pub fn with_hint(mut self, hint: ProverHint) -> Self {
        self.hint = Some(hint);
        self
    }

    /// Sets the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }
}

/// Per-job outcome plus its display name.
///
/// Equality is field-by-field (names, verdicts, sizes, errors), so two
/// outcomes compare equal exactly when they are bit-identical — the
/// engine's sequential-vs-parallel parity suite relies on this.
#[derive(Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The job's display name (or its index, stringified).
    pub name: String,
    /// The run outcome: a full report, or the prover's refusal/error.
    pub result: Result<RunReport, CertError>,
}

/// Aggregated results of a batch run.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// One outcome per job, in job order.
    pub outcomes: Vec<BatchOutcome>,
    /// Observability summary for the run, attached by the engine when
    /// tracing is enabled (`None` on the sequential runner and on
    /// untraced engine runs). Diagnostic only: it describes *how* the
    /// run executed, never what it certified — see the `PartialEq`
    /// impl below.
    pub obs: Option<lanecert_obs::ObsReport>,
}

/// Equality compares certified outputs only — the `obs` field is
/// execution diagnostics (timings, scheduling counters) and is
/// deliberately excluded, so the engine's traced-vs-untraced and
/// sequential-vs-parallel parity suites can assert reports equal while
/// instrumentation varies.
impl PartialEq for BatchReport {
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
    }
}

impl Eq for BatchReport {}

impl BatchReport {
    /// Number of jobs that were certified and accepted everywhere.
    pub fn accepted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.result, Ok(r) if r.accepted()))
            .count()
    }

    /// Number of jobs the prover refused (model-level no-instances).
    pub fn refused(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.result, Err(e) if e.is_refusal()))
            .count()
    }

    /// Number of jobs that failed for non-refusal reasons (harness/spec
    /// errors).
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.result, Err(e) if !e.is_refusal()))
            .count()
    }

    /// `true` when every job was certified and accepted (vacuously `true`
    /// for an empty batch — gate on `!outcomes.is_empty()` too when an
    /// empty job list would itself be a bug).
    pub fn all_accepted(&self) -> bool {
        self.accepted() == self.outcomes.len()
    }

    /// Maximum label size in bits across all certified jobs.
    pub fn max_label_bits(&self) -> usize {
        self.reports().map(|r| r.max_label_bits).max().unwrap_or(0)
    }

    /// Total label bits across all certified jobs.
    pub fn total_label_bits(&self) -> usize {
        self.reports().map(|r| r.total_label_bits).sum()
    }

    /// Total edges across all certified jobs.
    pub fn total_edges(&self) -> usize {
        self.reports().map(|r| r.edges).sum()
    }

    /// Average label size in bits per edge across the batch.
    pub fn avg_label_bits(&self) -> f64 {
        let edges = self.total_edges();
        if edges == 0 {
            0.0
        } else {
            self.total_label_bits() as f64 / edges as f64
        }
    }

    /// Successful reports, in job order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} accepted, {} refused, {} failed; max label {} bits, avg {:.1} bits/edge",
            self.outcomes.len(),
            self.accepted(),
            self.refused(),
            self.failed(),
            self.max_label_bits(),
            self.avg_label_bits(),
        )
    }
}

/// Runs one certifier over many configurations.
pub struct BatchRunner {
    certifier: Certifier,
}

impl BatchRunner {
    /// Wraps a certifier.
    pub fn new(certifier: Certifier) -> Self {
        Self { certifier }
    }

    /// The wrapped certifier.
    pub fn certifier(&self) -> &Certifier {
        &self.certifier
    }

    /// Certifies and everywhere-verifies each job (with the job's hint,
    /// or the certifier's default hint when the job carries none).
    /// Per-job failures are captured in the report, never panicking and
    /// never aborting the rest of the batch.
    pub fn run(&self, jobs: impl IntoIterator<Item = BatchJob>) -> BatchReport {
        let outcomes = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let hint = job.hint.as_ref().unwrap_or_else(|| self.certifier.hint());
                BatchOutcome {
                    name: job.name.unwrap_or_else(|| i.to_string()),
                    result: self.certifier.run_with(&job.cfg, hint),
                }
            })
            .collect();
        BatchReport {
            outcomes,
            obs: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanecert_algebra::{props::Bipartite, Algebra};
    use lanecert_graph::generators;

    fn bipartite_certifier() -> Certifier {
        Certifier::builder()
            .property(Algebra::shared(Bipartite))
            .pathwidth(2)
            .build()
            .unwrap()
    }

    #[test]
    fn batch_aggregates_mixed_outcomes() {
        let runner = BatchRunner::new(bipartite_certifier());
        let report = runner.run([
            BatchJob::new(Configuration::with_random_ids(
                generators::cycle_graph(6),
                1,
            ))
            .named("C6"),
            BatchJob::new(Configuration::with_random_ids(
                generators::cycle_graph(7),
                2,
            ))
            .named("C7"),
            BatchJob::new(Configuration::with_random_ids(generators::path_graph(8), 3)),
        ]);
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.accepted(), 2);
        assert_eq!(report.refused(), 1); // C7 is an odd cycle
        assert_eq!(report.failed(), 0);
        assert!(!report.all_accepted());
        assert!(report.max_label_bits() > 0);
        assert!(report.avg_label_bits() > 0.0);
        assert_eq!(report.outcomes[0].name, "C6");
        assert_eq!(report.outcomes[2].name, "2");
        assert!(report.summary().contains("3 jobs"));
    }

    #[test]
    fn batch_survives_harness_errors() {
        // A job no solver tier can handle (past the heuristic fallback
        // limit, no representation) becomes a failed outcome, not a panic.
        let runner = BatchRunner::new(bipartite_certifier());
        let big = Configuration::with_sequential_ids(generators::cycle_graph(
            crate::scheme::AUTO_HEURISTIC_LIMIT + 2,
        ));
        let report = runner.run([BatchJob::new(big)]);
        assert_eq!(report.failed(), 1);
        assert!(matches!(
            report.outcomes[0].result,
            Err(CertError::NeedRepresentation)
        ));
    }

    #[test]
    fn hintless_jobs_past_exact_limit_use_the_heuristic() {
        // 40 vertices exceeds the exact solver; the heuristic fallback
        // derives a decomposition so hintless batch jobs still certify.
        let runner = BatchRunner::new(bipartite_certifier());
        let report = runner.run([BatchJob::new(Configuration::with_random_ids(
            generators::cycle_graph(40),
            4,
        ))
        .named("C40")]);
        assert!(report.all_accepted(), "{}", report.summary());
    }
}
