//! Type-erased, **value-semantics** wrapper around a [`Property`].
//!
//! An [`Algebra`] applies the five primitive operations to erased state
//! values ([`Class`]) — it holds no table, no lock, and no mutable state,
//! so every operation is a pure function and an `Algebra` can be shared
//! freely across threads. Canonical `O(1)`-bit identifiers for classes
//! (what certificates carry on the wire) are the job of
//! [`FrozenAlgebra`](crate::FrozenAlgebra), which is built *once* per
//! `(property, interface width)` and never depends on the order in which
//! a prover happens to visit states.

use std::any::Any;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::{Property, Slot};

/// An `Algebra` shared between the prover and all verifier invocations.
pub type SharedAlgebra = Arc<Algebra>;

/// A type-erased homomorphism-class *value*: the property state together
/// with its boundary arity (number of live terminal slots).
///
/// `Class` is a value, not a table index: cloning is an `Arc` bump,
/// equality and hashing are structural (two classes are equal exactly
/// when they came from the same state type and compare equal as states
/// at the same arity). The wire-level [`StateId`](crate::StateId)s are
/// assigned by [`FrozenAlgebra`](crate::FrozenAlgebra).
#[derive(Clone)]
pub struct Class {
    state: Arc<dyn ErasedState>,
    arity: usize,
}

impl Class {
    /// Number of boundary slots of this class. Verifiers check a
    /// certificate's claimed class against its claimed interface size
    /// before applying slot-indexed operations, so adversarial class ids
    /// can never drive a property implementation out of bounds.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The canonical structural key used for the freeze pass's sort and
    /// fingerprinting: the arity plus the state's `Debug` rendering.
    /// Derived `Debug` impls are faithful renderings of the state, so the
    /// key orders distinct states deterministically across runs and
    /// builds.
    pub(crate) fn structural_key(&self) -> (usize, String) {
        (self.arity, format!("{:?}", self.state))
    }
}

impl PartialEq for Class {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.state.eq_dyn(other.state.as_ref())
    }
}

impl Eq for Class {}

impl Hash for Class {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.arity.hash(h);
        self.state.hash_dyn(h);
    }
}

impl fmt::Debug for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Class")
            .field("arity", &self.arity)
            .field("state", &self.state)
            .finish()
    }
}

/// Object-safe view of a property state: `Any` for downcasting plus
/// dynamic equality/hashing (states of different property types never
/// compare equal).
trait ErasedState: Any + Send + Sync + fmt::Debug {
    fn eq_dyn(&self, other: &dyn ErasedState) -> bool;
    fn hash_dyn(&self, h: &mut dyn Hasher);
    fn as_any(&self) -> &dyn Any;
}

impl<S: Eq + Hash + fmt::Debug + Send + Sync + 'static> ErasedState for S {
    fn eq_dyn(&self, other: &dyn ErasedState) -> bool {
        other.as_any().downcast_ref::<S>() == Some(self)
    }

    fn hash_dyn(&self, mut h: &mut dyn Hasher) {
        self.as_any().type_id().hash(&mut h);
        self.hash(&mut h);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

trait ErasedProp: Send + Sync {
    fn name(&self) -> String;
    fn enumerable(&self) -> bool;
    fn empty(&self) -> Class;
    fn add_vertex(&self, s: Class, label: u32) -> Class;
    fn add_edge(&self, s: Class, a: Slot, b: Slot, marked: bool) -> Class;
    fn glue(&self, s: Class, a: Slot, b: Slot) -> Class;
    fn forget(&self, s: Class, a: Slot) -> Class;
    fn union(&self, s1: Class, s2: Class) -> Class;
    fn swap(&self, s: Class, a: Slot, b: Slot) -> Class;
    fn accept(&self, s: &Class) -> bool;
}

struct TypedProp<P: Property>(P);

impl<P: Property> TypedProp<P> {
    fn state<'a>(&self, c: &'a Class) -> &'a P::State {
        c.state
            .as_any()
            .downcast_ref()
            .expect("class value belongs to a different property algebra")
    }

    fn wrap(&self, state: P::State, arity: usize) -> Class {
        Class {
            state: Arc::new(state),
            arity,
        }
    }
}

impl<P: Property> ErasedProp for TypedProp<P> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn enumerable(&self) -> bool {
        self.0.enumerable()
    }
    fn empty(&self) -> Class {
        self.wrap(self.0.empty(), 0)
    }
    fn add_vertex(&self, s: Class, label: u32) -> Class {
        let out = self.0.add_vertex(self.state(&s), label);
        self.wrap(out, s.arity + 1)
    }
    fn add_edge(&self, s: Class, a: Slot, b: Slot, marked: bool) -> Class {
        let out = self.0.add_edge(self.state(&s), a, b, marked);
        self.wrap(out, s.arity)
    }
    fn glue(&self, s: Class, a: Slot, b: Slot) -> Class {
        let out = self.0.glue(self.state(&s), a, b);
        self.wrap(out, s.arity.saturating_sub(1))
    }
    fn forget(&self, s: Class, a: Slot) -> Class {
        let out = self.0.forget(self.state(&s), a);
        self.wrap(out, s.arity.saturating_sub(1))
    }
    fn union(&self, s1: Class, s2: Class) -> Class {
        let out = self.0.union(self.state(&s1), self.state(&s2));
        self.wrap(out, s1.arity + s2.arity)
    }
    fn swap(&self, s: Class, a: Slot, b: Slot) -> Class {
        let out = self.0.swap(self.state(&s), a, b);
        self.wrap(out, s.arity)
    }
    fn accept(&self, s: &Class) -> bool {
        self.0.accept(self.state(s))
    }
}

/// A type-erased homomorphism algebra operating on [`Class`] values.
///
/// All methods are pure: they take state values and return new state
/// values, with no interior mutability anywhere — one `Arc<Algebra>`
/// serves the prover and every simulated verifier concurrently without
/// a single lock.
///
/// # Panics
///
/// Operations panic when handed a [`Class`] produced by a *different*
/// property algebra (a programming error, not an adversarial input —
/// adversarial wire ids are resolved through
/// [`FrozenAlgebra::class_of`](crate::FrozenAlgebra::class_of), which
/// returns `None` for unknown ids).
pub struct Algebra {
    inner: Box<dyn ErasedProp>,
}

impl Algebra {
    /// Wraps a property.
    pub fn new<P: Property>(prop: P) -> Self {
        Self {
            inner: Box::new(TypedProp(prop)),
        }
    }

    /// Wraps a property into a shareable handle.
    pub fn shared<P: Property>(prop: P) -> SharedAlgebra {
        Arc::new(Self::new(prop))
    }

    /// The property's name.
    pub fn name(&self) -> String {
        self.inner.name()
    }

    /// Whether the property declares its reachable state space small
    /// enough for the freeze pass to enumerate (see
    /// [`Property::enumerable`]).
    pub fn enumerable(&self) -> bool {
        self.inner.enumerable()
    }

    /// State of the empty graph.
    pub fn empty(&self) -> Class {
        self.inner.empty()
    }

    /// Introduce a labelled vertex as a new trailing slot.
    pub fn add_vertex(&self, s: Class, label: u32) -> Class {
        self.inner.add_vertex(s, label)
    }

    /// Introduce an edge between two slots.
    pub fn add_edge(&self, s: Class, a: Slot, b: Slot, marked: bool) -> Class {
        self.inner.add_edge(s, a, b, marked)
    }

    /// Identify two slots.
    pub fn glue(&self, s: Class, a: Slot, b: Slot) -> Class {
        self.inner.glue(s, a, b)
    }

    /// Retire a slot.
    pub fn forget(&self, s: Class, a: Slot) -> Class {
        self.inner.forget(s, a)
    }

    /// Disjoint union (slots of `s2` appended).
    pub fn union(&self, s1: Class, s2: Class) -> Class {
        self.inner.union(s1, s2)
    }

    /// Exchanges two slots (pure relabelling).
    pub fn swap(&self, s: Class, a: Slot, b: Slot) -> Class {
        self.inner.swap(s, a, b)
    }

    /// Acceptance of the summarized graph.
    pub fn accept(&self, s: &Class) -> bool {
        self.inner.accept(s)
    }
}

impl fmt::Debug for Algebra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Algebra")
            .field("property", &self.inner.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{Bipartite, Connected};

    #[test]
    fn class_values_compare_structurally() {
        let alg = Algebra::new(Connected);
        let a = alg.add_vertex(alg.empty(), 0);
        let b = alg.add_vertex(alg.empty(), 0);
        assert_eq!(a, b);
        assert_eq!(a.arity(), 1);
        let c = alg.add_vertex(a.clone(), 0);
        assert_ne!(a, c);
        use std::collections::HashSet;
        let set: HashSet<Class> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn classes_of_different_properties_never_equal() {
        let conn = Algebra::new(Connected);
        let bip = Algebra::new(Bipartite);
        // Both are "one fresh vertex", but the state types differ.
        let a = conn.add_vertex(conn.empty(), 0);
        let b = bip.add_vertex(bip.empty(), 0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "different property algebra")]
    fn foreign_class_is_a_programming_error() {
        let conn = Algebra::new(Connected);
        let bip = Algebra::new(Bipartite);
        let s = conn.empty();
        let _ = bip.add_vertex(s, 0);
    }

    #[test]
    fn operations_are_pure_and_shareable() {
        let alg = Algebra::shared(Connected);
        let base = alg.add_vertex(alg.empty(), 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let alg = Arc::clone(&alg);
                let base = base.clone();
                std::thread::spawn(move || {
                    let s = alg.add_vertex(base, 0);
                    let s = alg.add_edge(s, 0, 1, true);
                    alg.accept(&s)
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
