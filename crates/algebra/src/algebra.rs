//! Type-erased, state-interning wrapper around a [`Property`].

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use std::sync::RwLock;

use crate::{Property, Slot};

/// An interned homomorphism class — the `O(1)`-bit value certificates carry
/// (the class space `C` of Proposition 2.4 depends only on `ϕ` and `k`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An `Algebra` shared between the prover and all verifier invocations.
pub type SharedAlgebra = Arc<Algebra>;

struct Interner<S> {
    /// Keyed by `(arity, state)`: a property state that under-determines
    /// its boundary size still gets one id per arity, so [`Algebra::arity`]
    /// is well defined for every interned id.
    ids: HashMap<(usize, S), u32>,
    states: Vec<S>,
    arities: Vec<usize>,
}

impl<S: Clone + Eq + std::hash::Hash> Interner<S> {
    fn intern(&mut self, s: S, arity: usize) -> u32 {
        use std::collections::hash_map::Entry;
        let next = self.states.len() as u32;
        match self.ids.entry((arity, s)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                // Clone only on first sight; the hot path (already
                // interned, once per algebra op) is clone-free.
                self.states.push(e.key().1.clone());
                self.arities.push(arity);
                e.insert(next);
                next
            }
        }
    }
}

trait Erased: Send + Sync {
    fn name(&self) -> String;
    fn empty(&self) -> u32;
    fn add_vertex(&self, s: u32, label: u32) -> u32;
    fn add_edge(&self, s: u32, a: Slot, b: Slot, marked: bool) -> u32;
    fn glue(&self, s: u32, a: Slot, b: Slot) -> u32;
    fn forget(&self, s: u32, a: Slot) -> u32;
    fn union(&self, s1: u32, s2: u32) -> u32;
    fn swap(&self, s: u32, a: Slot, b: Slot) -> u32;
    fn accept(&self, s: u32) -> bool;
    fn state_count(&self) -> usize;
    fn arity(&self, s: u32) -> usize;
}

struct ErasedProperty<P: Property> {
    prop: P,
    table: RwLock<Interner<P::State>>,
}

impl<P: Property> ErasedProperty<P> {
    fn get(&self, id: u32) -> (P::State, usize) {
        let table = self.table.read().expect("algebra interner lock poisoned");
        (
            table.states[id as usize].clone(),
            table.arities[id as usize],
        )
    }

    fn put(&self, s: P::State, arity: usize) -> u32 {
        self.table
            .write()
            .expect("algebra interner lock poisoned")
            .intern(s, arity)
    }
}

impl<P: Property> Erased for ErasedProperty<P> {
    fn name(&self) -> String {
        self.prop.name()
    }
    fn empty(&self) -> u32 {
        let s = self.prop.empty();
        self.put(s, 0)
    }
    fn add_vertex(&self, s: u32, label: u32) -> u32 {
        let (s, arity) = self.get(s);
        let s = self.prop.add_vertex(&s, label);
        self.put(s, arity + 1)
    }
    fn add_edge(&self, s: u32, a: Slot, b: Slot, marked: bool) -> u32 {
        let (s, arity) = self.get(s);
        let s = self.prop.add_edge(&s, a, b, marked);
        self.put(s, arity)
    }
    fn glue(&self, s: u32, a: Slot, b: Slot) -> u32 {
        let (s, arity) = self.get(s);
        let s = self.prop.glue(&s, a, b);
        self.put(s, arity.saturating_sub(1))
    }
    fn forget(&self, s: u32, a: Slot) -> u32 {
        let (s, arity) = self.get(s);
        let s = self.prop.forget(&s, a);
        self.put(s, arity.saturating_sub(1))
    }
    fn union(&self, s1: u32, s2: u32) -> u32 {
        let (s1, a1) = self.get(s1);
        let (s2, a2) = self.get(s2);
        let s = self.prop.union(&s1, &s2);
        self.put(s, a1 + a2)
    }
    fn swap(&self, s: u32, a: Slot, b: Slot) -> u32 {
        let (s, arity) = self.get(s);
        let s = self.prop.swap(&s, a, b);
        self.put(s, arity)
    }
    fn accept(&self, s: u32) -> bool {
        self.prop.accept(&self.get(s).0)
    }
    fn state_count(&self) -> usize {
        self.table
            .read()
            .expect("algebra interner lock poisoned")
            .states
            .len()
    }
    fn arity(&self, s: u32) -> usize {
        self.table
            .read()
            .expect("algebra interner lock poisoned")
            .arities[s as usize]
    }
}

/// A type-erased homomorphism algebra with interned states.
///
/// All methods take `&self`; interior mutability (a [`std::sync::RwLock`]
/// around the interner) lets one `Arc<Algebra>` serve the prover and every
/// simulated verifier concurrently.
pub struct Algebra {
    inner: Box<dyn Erased>,
}

impl Algebra {
    /// Wraps a property.
    pub fn new<P: Property>(prop: P) -> Self {
        Self {
            inner: Box::new(ErasedProperty {
                prop,
                table: RwLock::new(Interner {
                    ids: HashMap::new(),
                    states: Vec::new(),
                    arities: Vec::new(),
                }),
            }),
        }
    }

    /// Wraps a property into a shareable handle.
    pub fn shared<P: Property>(prop: P) -> SharedAlgebra {
        Arc::new(Self::new(prop))
    }

    /// The property's name.
    pub fn name(&self) -> String {
        self.inner.name()
    }

    /// State of the empty graph.
    pub fn empty(&self) -> StateId {
        StateId(self.inner.empty())
    }

    /// Introduce a labelled vertex as a new trailing slot.
    pub fn add_vertex(&self, s: StateId, label: u32) -> StateId {
        StateId(self.inner.add_vertex(s.0, label))
    }

    /// Introduce an edge between two slots.
    pub fn add_edge(&self, s: StateId, a: Slot, b: Slot, marked: bool) -> StateId {
        StateId(self.inner.add_edge(s.0, a, b, marked))
    }

    /// Identify two slots.
    pub fn glue(&self, s: StateId, a: Slot, b: Slot) -> StateId {
        StateId(self.inner.glue(s.0, a, b))
    }

    /// Retire a slot.
    pub fn forget(&self, s: StateId, a: Slot) -> StateId {
        StateId(self.inner.forget(s.0, a))
    }

    /// Disjoint union (slots of `s2` appended).
    pub fn union(&self, s1: StateId, s2: StateId) -> StateId {
        StateId(self.inner.union(s1.0, s2.0))
    }

    /// Exchanges two slots (pure relabelling).
    pub fn swap(&self, s: StateId, a: Slot, b: Slot) -> StateId {
        StateId(self.inner.swap(s.0, a, b))
    }

    /// Acceptance of the summarized graph.
    pub fn accept(&self, s: StateId) -> bool {
        self.inner.accept(s.0)
    }

    /// Number of distinct states interned so far (diagnostics; the paper's
    /// `|C|` restricted to reachable classes).
    pub fn state_count(&self) -> usize {
        self.inner.state_count()
    }

    /// Returns `true` if `id` has been interned (verifiers reject
    /// certificates naming unknown classes).
    pub fn knows(&self, id: StateId) -> bool {
        (id.0 as usize) < self.inner.state_count()
    }

    /// Number of boundary slots of an interned state. Verifiers check a
    /// certificate's claimed class against its claimed interface size
    /// before applying slot-indexed operations, so adversarial class ids
    /// can never drive a property implementation out of bounds.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never interned (callers gate on
    /// [`Algebra::knows`]).
    pub fn arity(&self, id: StateId) -> usize {
        self.inner.arity(id.0)
    }
}

impl fmt::Debug for Algebra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Algebra")
            .field("property", &self.inner.name())
            .field("states", &self.inner.state_count())
            .finish()
    }
}
