//! Homomorphism-class algebras for MSO₂ properties over terminal graphs —
//! the executable form of Propositions 2.4 and 6.1 of the paper.
//!
//! A [`Property`] summarizes a *terminal graph* (a graph with an ordered
//! list of live terminal slots) into a finite state, under five primitive
//! operations: introduce a vertex, introduce a (marked or unmarked) edge
//! between slots, glue two slots, forget a slot, and disjoint union. The
//! paper's `Bridge-merge`/`Parent-merge` class functions `f_B`/`f_P`
//! (Proposition 6.1) are compositions of these primitives, computed by the
//! certification crate.
//!
//! [`Algebra`] erases the concrete state type behind pure value
//! operations on [`Class`] handles; [`FrozenAlgebra`] assigns each class
//! a **canonical** `O(1)`-bit [`StateId`] — exactly what the certificates
//! store — by enumerating the reachable state space up front in a
//! deterministic, structurally sorted order. Prover and verifier share
//! one frozen table (the finite transition tables are "global
//! knowledge": they depend only on `ϕ` and `k`, never on the network —
//! and, since the freeze, never on prover execution order either).
//!
//! Every implementation is validated two ways:
//! * against a brute-force oracle on randomly generated operation traces
//!   (the [`mirror`] harness replays the trace as a concrete graph);
//! * against the naive MSO₂ model checker of `lanecert-mso` (experiment T7).
//!
//! Semantics note: properties are evaluated on the **marked subgraph**
//! (unmarked edges are completion-only edges and are ignored), with
//! multigraph conventions; the certification pipeline only ever builds
//! simple graphs, and the trace generator mirrors that.

mod algebra;
mod frozen;
mod property;

pub use algebra::{Algebra, Class, SharedAlgebra};
pub use frozen::{
    FreezeOptions, FrozenAlgebra, SharedFrozenAlgebra, StateId, DEFAULT_OP_BUDGET,
    DEFAULT_STATE_BUDGET, MAX_FREEZE_ARITY,
};
pub use property::{glue_order, Property, Slot};

pub mod mirror;
pub mod props;
