//! Canonical state interning: the two-phase freeze pass.
//!
//! # The canonical-id invariant
//!
//! A [`StateId`] on the wire must be a function of `(property, interface
//! width)` alone — never of the order in which a prover happened to visit
//! states. This is what makes proving a *pure* function of
//! `(graph, property, hint)`: two provers labelling different graphs on
//! different threads, in any interleaving, assign the same id to the same
//! homomorphism class, so label bytes (and therefore varint label sizes)
//! are reproducible at any worker count.
//!
//! The freeze pass ([`FrozenAlgebra::freeze`]) enumerates the reachable
//! `(arity, state)` space of a property under the five primitive
//! operations, bounded by an arity cap and a state/op budget, then sorts
//! the discovered classes by a **structural key** (arity, then the
//! state's `Debug` rendering — insertion order plays no part) and assigns
//! dense ids `0..n` in that order. The resulting table is immutable and
//! shared via `Arc`; lookups are content-addressed and lock-free.
//!
//! # The sealed fallback
//!
//! Some algebras are too large to pre-enumerate (set-valued states such
//! as [`HamiltonianCycle`](crate::props::HamiltonianCycle) explode
//! combinatorially; such properties opt out via
//! [`Property::enumerable`](crate::Property::enumerable), and budget
//! overruns catch the rest). These fall back to a *sealed* table: the
//! canonically sorted prefix of whatever the budgeted enumeration
//! reached, plus a lock-guarded dynamic tail that interns unseen states
//! in arrival order. Sealed tables keep prover/verifier agreement (they
//! share the instance), but tail ids are order-dependent — so label
//! *sizes* under a sealed algebra are only reproducible for sequential
//! proving. [`FrozenAlgebra::is_total`] reports which regime a table is
//! in; everything shipped in the standard registry at the widths the
//! benchmarks use freezes totally.
//!
//! Total freeze results are memoized process-wide per `(property name,
//! options)` — property names must therefore faithfully identify
//! semantics (all built-in names do). Sealed tables are never shared
//! between scheme instances.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
// lint: allow(interior-mut) reason="imports for the documented sealed tail and the freeze cache; every use site carries its own suppression"
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::{Algebra, Class, SharedAlgebra};

/// An interned homomorphism class id — the `O(1)`-bit value certificates
/// carry (the class space `C` of Proposition 2.4 depends only on `ϕ` and
/// `k`). Assigned canonically by [`FrozenAlgebra`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A [`FrozenAlgebra`] shared between the prover and all verifier
/// invocations.
pub type SharedFrozenAlgebra = Arc<FrozenAlgebra>;

/// Largest arity cap the freeze pass will attempt to enumerate; wider
/// requests seal immediately (the reachable space of a partition-shaped
/// property already has millions of states past eight slots).
pub const MAX_FREEZE_ARITY: usize = 8;

/// Default bound on enumerated states before the freeze pass gives up
/// and seals.
pub const DEFAULT_STATE_BUDGET: usize = 60_000;

/// Default bound on primitive-operation applications before the freeze
/// pass gives up and seals (the abort path for algebras whose state
/// count grows slowly but whose states are expensive).
pub const DEFAULT_OP_BUDGET: usize = 4_000_000;

/// Tuning for [`FrozenAlgebra::freeze`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FreezeOptions {
    /// Enumerate states with at most this many boundary slots. Requests
    /// above [`MAX_FREEZE_ARITY`] seal immediately.
    pub max_arity: usize,
    /// Abort enumeration (and seal) past this many distinct states.
    pub state_budget: usize,
    /// Abort enumeration (and seal) past this many operation
    /// applications.
    pub op_budget: usize,
    /// Vertex labels the enumeration introduces (the certification
    /// pipeline only ever uses label `0`).
    pub vertex_labels: Vec<u32>,
}

impl Default for FreezeOptions {
    fn default() -> Self {
        Self {
            max_arity: MAX_FREEZE_ARITY,
            state_budget: DEFAULT_STATE_BUDGET,
            op_budget: DEFAULT_OP_BUDGET,
            vertex_labels: vec![0],
        }
    }
}

impl FreezeOptions {
    /// Options for interfaces of at most `arity` slots (the Theorem 1
    /// scheme passes `2 × max_lanes`: an interface has at most one in-
    /// and one out-terminal per lane).
    pub fn for_interface_arity(arity: usize) -> Self {
        Self {
            max_arity: arity,
            ..Self::default()
        }
    }
}

/// The dynamic tail of a sealed table.
#[derive(Default)]
struct Tail {
    classes: Vec<Class>,
    index: HashMap<Class, u32>,
}

/// An immutable, canonically ordered class table over an [`Algebra`] —
/// see the crate docs for the invariant. Dereferences to the
/// underlying [`Algebra`], so the primitive operations are available
/// directly on a `FrozenAlgebra`.
pub struct FrozenAlgebra {
    algebra: SharedAlgebra,
    /// Canonically sorted classes; `canonical[i]` has id `i`.
    canonical: Vec<Class>,
    index: HashMap<Class, u32>,
    /// `true` when the enumeration completed: the table is the entire
    /// reachable space under the arity cap and the tail stays empty.
    total: bool,
    fingerprint: u64,
    max_arity: usize,
    // lint: allow(interior-mut) reason="the documented sealed tail: append-only interning of post-freeze classes, canonical ids never change"
    tail: RwLock<Tail>,
}

impl FrozenAlgebra {
    /// Runs the freeze pass: enumerates the reachable state space under
    /// `opts`, canonically sorts it, and returns the immutable table.
    /// Falls back to a *sealed* table — keeping the canonically sorted
    /// prefix the budgeted enumeration reached — when a budget is
    /// exceeded, or with an empty prefix when the property opts out of
    /// enumeration or the arity cap is oversized. Enumeration results
    /// (complete or aborted) are memoized process-wide per
    /// `(property name, options)`, so repeated scheme construction never
    /// re-runs the pass; sealed *tables* are still one per call (their
    /// dynamic tails must never be shared).
    pub fn freeze(algebra: SharedAlgebra, opts: &FreezeOptions) -> SharedFrozenAlgebra {
        if !algebra.enumerable() || opts.max_arity > MAX_FREEZE_ARITY {
            return Self::sealed_with_prefix(algebra, Vec::new(), opts.max_arity);
        }
        let key = (algebra.name(), opts.clone());
        {
            let cache = freeze_cache().lock().expect("freeze cache poisoned");
            match cache.get(&key) {
                Some(CachedFreeze::Total(hit)) => return Arc::clone(hit),
                Some(CachedFreeze::Partial(prefix)) => {
                    return Self::sealed_with_prefix(
                        algebra,
                        prefix.as_ref().clone(),
                        opts.max_arity,
                    )
                }
                None => {}
            }
        }
        let (classes, complete) = enumerate(&algebra, opts);
        let mut cache = freeze_cache().lock().expect("freeze cache poisoned");
        if complete {
            let frozen = Self::total_with(algebra, classes, opts.max_arity);
            cache.insert(key, CachedFreeze::Total(Arc::clone(&frozen)));
            frozen
        } else {
            cache.insert(key, CachedFreeze::Partial(Arc::new(classes.clone())));
            drop(cache);
            Self::sealed_with_prefix(algebra, classes, opts.max_arity)
        }
    }

    /// A sealed table with an empty canonical prefix: every class interns
    /// dynamically, in arrival order (the pre-freeze behaviour, kept for
    /// algebras that cannot be enumerated at all).
    pub fn sealed(algebra: SharedAlgebra) -> SharedFrozenAlgebra {
        Self::sealed_with_prefix(algebra, Vec::new(), MAX_FREEZE_ARITY)
    }

    fn total_with(
        algebra: SharedAlgebra,
        classes: Vec<Class>,
        max_arity: usize,
    ) -> SharedFrozenAlgebra {
        Self::build(algebra, classes, true, max_arity)
    }

    fn sealed_with_prefix(
        algebra: SharedAlgebra,
        classes: Vec<Class>,
        max_arity: usize,
    ) -> SharedFrozenAlgebra {
        Self::build(algebra, classes, false, max_arity)
    }

    fn build(
        algebra: SharedAlgebra,
        classes: Vec<Class>,
        total: bool,
        max_arity: usize,
    ) -> SharedFrozenAlgebra {
        // Canonical order: structural sort, never insertion order.
        let mut keyed: Vec<((usize, String), Class)> = classes
            .into_iter()
            .map(|c| (c.structural_key(), c))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        algebra.name().hash(&mut hasher);
        max_arity.hash(&mut hasher);
        total.hash(&mut hasher);
        keyed.len().hash(&mut hasher);
        for (key, _) in &keyed {
            key.hash(&mut hasher);
        }
        if !total {
            // A sealed table's tail ids are *instance-local* (arrival
            // order), so two sealed instances must never look
            // interchangeable to the fingerprint check — not within this
            // process (counter) and not across processes or persisted
            // corpora (process id + wall-clock entropy): a sealed corpus
            // only ever verifies against the instance that produced it.
            // lint: allow(interior-mut) reason="sealed-instance nonce counter; feeds the fingerprint, never observable as state"
            use std::sync::atomic::{AtomicU64, Ordering};
            // lint: allow(interior-mut) reason="sealed-instance nonce counter; feeds the fingerprint, never observable as state"
            static SEALED_NONCE: AtomicU64 = AtomicU64::new(0);
            SEALED_NONCE
                .fetch_add(1, Ordering::Relaxed)
                .hash(&mut hasher);
            std::process::id().hash(&mut hasher);
            // Wall-clock entropy for the sealed-instance nonce —
            // deliberately unique per instance, hashed into the
            // fingerprint, never ordered or compared. Routed through
            // the workspace's single audited clock site in the obs
            // crate rather than reading `SystemTime` here.
            lanecert_obs::wall_entropy_ns().hash(&mut hasher);
        }
        let canonical: Vec<Class> = keyed.into_iter().map(|(_, c)| c).collect();
        let index = canonical
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i as u32))
            .collect();
        Arc::new(Self {
            algebra,
            canonical,
            index,
            total,
            fingerprint: hasher.finish(),
            max_arity,
            // lint: allow(interior-mut) reason="constructs the documented sealed tail"
            tail: RwLock::new(Tail::default()),
        })
    }

    /// The wrapped algebra (also reachable through `Deref`).
    pub fn algebra(&self) -> &SharedAlgebra {
        &self.algebra
    }

    /// The property's name.
    pub fn name(&self) -> String {
        self.algebra.name()
    }

    /// `true` when the enumeration completed and every reachable class
    /// under the arity cap has a canonical id (the tail is permanently
    /// empty and ids are order-independent).
    pub fn is_total(&self) -> bool {
        self.total
    }

    /// The arity cap the table was frozen at.
    pub fn max_arity(&self) -> usize {
        self.max_arity
    }

    /// Number of canonically enumerated classes (the stable prefix).
    pub fn canonical_state_count(&self) -> usize {
        self.canonical.len()
    }

    /// Total number of known classes: the canonical prefix plus any
    /// sealed-tail entries interned so far.
    pub fn state_count(&self) -> usize {
        self.canonical.len()
            + self
                .tail
                .read()
                .expect("sealed tail poisoned")
                .classes
                .len()
    }

    /// A digest of `(property name, options, canonical table)` — two
    /// tables agree on every canonical id exactly when their
    /// fingerprints match (within one build of the workspace; the digest
    /// is not guaranteed stable across releases, which is precisely what
    /// lets label corpora from other versions fail loudly). Sealed
    /// tables additionally fold in a per-instance nonce: their tail ids
    /// are instance-local, so no two sealed tables ever fingerprint the
    /// same — a sealed corpus only verifies against the instance that
    /// produced it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Returns `true` if `id` names a known class (verifiers reject
    /// certificates naming unknown classes).
    pub fn knows(&self, id: StateId) -> bool {
        self.class_of(id).is_some()
    }

    /// Resolves a wire id to its class value; `None` for ids outside the
    /// table (an adversarial label — callers reject, nothing panics).
    pub fn class_of(&self, id: StateId) -> Option<Class> {
        let i = id.0 as usize;
        if let Some(c) = self.canonical.get(i) {
            return Some(c.clone());
        }
        self.tail
            .read()
            .expect("sealed tail poisoned")
            .classes
            .get(i - self.canonical.len())
            .cloned()
    }

    /// Arity of a known class id; `None` for unknown ids.
    pub fn arity_of(&self, id: StateId) -> Option<usize> {
        self.class_of(id).map(|c| c.arity())
    }

    /// Canonical id of a class value without interning; `None` when the
    /// class is not in the table (total mode: not reachable under the
    /// cap; sealed mode: not yet interned).
    pub fn id_of(&self, class: &Class) -> Option<StateId> {
        if let Some(&i) = self.index.get(class) {
            return Some(StateId(i));
        }
        self.tail
            .read()
            .expect("sealed tail poisoned")
            .index
            .get(class)
            .map(|&i| StateId(self.canonical.len() as u32 + i))
    }

    /// The id a prover writes into a label for `class`.
    ///
    /// Total tables resolve by content alone and return `None` for
    /// classes outside the enumerated space (the prover surfaces this as
    /// an internal error — it cannot happen for interfaces within the
    /// arity cap). Sealed tables intern unseen classes into the dynamic
    /// tail and always return an id.
    pub fn intern(&self, class: &Class) -> Option<StateId> {
        if let Some(&i) = self.index.get(class) {
            return Some(StateId(i));
        }
        if self.total {
            return None;
        }
        let mut tail = self.tail.write().expect("sealed tail poisoned");
        let next = tail.classes.len() as u32;
        let i = *tail.index.entry(class.clone()).or_insert(next);
        if i == next {
            tail.classes.push(class.clone());
        }
        Some(StateId(self.canonical.len() as u32 + i))
    }
}

impl Deref for FrozenAlgebra {
    type Target = Algebra;
    fn deref(&self) -> &Algebra {
        &self.algebra
    }
}

impl fmt::Debug for FrozenAlgebra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenAlgebra")
            .field("property", &self.name())
            .field("total", &self.total)
            .field("canonical_states", &self.canonical.len())
            .field("max_arity", &self.max_arity)
            .finish()
    }
}

/// What the freeze pass memoizes: a finished (shareable) total table,
/// or the canonically unsorted class set of an aborted enumeration — the
/// sealed prefix every later construction reuses without re-enumerating.
enum CachedFreeze {
    Total(SharedFrozenAlgebra),
    Partial(Arc<Vec<Class>>),
}

// lint: allow(interior-mut) reason="process-wide freeze memo: caches the deterministic result of enumeration, not algebra state"
type FreezeCache = Mutex<HashMap<(String, FreezeOptions), CachedFreeze>>;

fn freeze_cache() -> &'static FreezeCache {
    // lint: allow(interior-mut) reason="process-wide freeze memo: caches the deterministic result of enumeration, not algebra state"
    static CACHE: OnceLock<FreezeCache> = OnceLock::new();
    // lint: allow(interior-mut) reason="process-wide freeze memo: caches the deterministic result of enumeration, not algebra state"
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Deterministic closure of the reachable state space under the
/// primitive operations, bounded by `opts`. Returns the discovered
/// classes plus whether the closure *completed* (`false` = a budget was
/// hit and the set is a partial prefix). The worklist order is fixed
/// (FIFO over discovery, operations in a fixed order), so the set — all
/// that matters, since ids come from the structural sort — is a pure
/// function of `(property, opts)` either way.
fn enumerate(alg: &Algebra, opts: &FreezeOptions) -> (Vec<Class>, bool) {
    let mut order: Vec<Class> = Vec::new();
    let mut seen: HashMap<Class, ()> = HashMap::new();
    // Processed states, indexed by arity, for the union closure.
    let mut by_arity: Vec<Vec<usize>> = vec![Vec::new(); opts.max_arity + 1];
    let mut ops = 0usize;

    let push = |c: Class, order: &mut Vec<Class>, seen: &mut HashMap<Class, ()>| -> bool {
        if c.arity() <= opts.max_arity && seen.insert(c.clone(), ()).is_none() {
            order.push(c);
        }
        order.len() <= opts.state_budget
    };

    if !push(alg.empty(), &mut order, &mut seen) {
        return (order, false);
    }
    let mut next = 0usize;
    while next < order.len() {
        let s = order[next].clone();
        let a = s.arity();
        by_arity[a].push(next);
        next += 1;

        let mut apply = |c: Class, order: &mut Vec<Class>, seen: &mut HashMap<Class, ()>| -> bool {
            ops += 1;
            ops <= opts.op_budget && push(c, order, seen)
        };

        if a < opts.max_arity {
            for &label in &opts.vertex_labels {
                if !apply(alg.add_vertex(s.clone(), label), &mut order, &mut seen) {
                    return (order, false);
                }
            }
        }
        for x in 0..a {
            for y in 0..a {
                if x == y {
                    continue;
                }
                for marked in [false, true] {
                    if !apply(alg.add_edge(s.clone(), x, y, marked), &mut order, &mut seen) {
                        return (order, false);
                    }
                }
            }
        }
        for x in 0..a {
            for y in (x + 1)..a {
                if !apply(alg.glue(s.clone(), x, y), &mut order, &mut seen) {
                    return (order, false);
                }
                if !apply(alg.swap(s.clone(), x, y), &mut order, &mut seen) {
                    return (order, false);
                }
            }
        }
        for x in 0..a {
            if !apply(alg.forget(s.clone(), x), &mut order, &mut seen) {
                return (order, false);
            }
        }
        // Unions with every already-processed state whose arity fits the
        // cap (both operand orders; later states pick up earlier ones
        // when their own turn comes, so all pairs are covered).
        for b in 0..=(opts.max_arity - a) {
            for i in 0..by_arity[b].len() {
                let t = order[by_arity[b][i]].clone();
                if !apply(alg.union(s.clone(), t.clone()), &mut order, &mut seen) {
                    return (order, false);
                }
                if !apply(alg.union(t, s.clone()), &mut order, &mut seen) {
                    return (order, false);
                }
            }
        }
    }
    (order, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{Bipartite, Connected, HamiltonianCycle};

    fn freeze_connected(arity: usize) -> SharedFrozenAlgebra {
        FrozenAlgebra::freeze(
            Algebra::shared(Connected),
            &FreezeOptions::for_interface_arity(arity),
        )
    }

    #[test]
    fn small_connected_table_is_total_and_pinned() {
        // Arity ≤ 2: partitions of ≤ 2 slots × dead ∈ {0, 1, 2} = 12
        // states, all reachable. The canonical sort puts arity first,
        // then the Debug rendering, so the exact ids below are a
        // regression pin of the canonical assignment.
        let frozen = freeze_connected(2);
        assert!(frozen.is_total());
        assert_eq!(frozen.canonical_state_count(), 12);
        assert_eq!(frozen.state_count(), 12);
        let empty = frozen.empty();
        assert_eq!(frozen.id_of(&empty), Some(StateId(0)));
        let v = frozen.add_vertex(empty.clone(), 0);
        assert_eq!(frozen.id_of(&v), Some(StateId(3)));
        let vv = frozen.union(v.clone(), v.clone());
        assert_eq!(frozen.id_of(&vv), Some(StateId(9)));
        let edge = frozen.add_edge(vv, 0, 1, true);
        assert_eq!(frozen.id_of(&edge), Some(StateId(6)));
        // Round trips.
        assert_eq!(frozen.class_of(StateId(6)), Some(edge.clone()));
        assert_eq!(frozen.arity_of(StateId(6)), Some(2));
        assert!(frozen.knows(StateId(11)));
        assert!(!frozen.knows(StateId(12)));
        assert_eq!(frozen.class_of(StateId(u32::MAX)), None);
        // Total tables never intern anything new.
        assert_eq!(frozen.intern(&edge), Some(StateId(6)));
    }

    #[test]
    fn ids_are_independent_of_visit_order() {
        // Two freezes (the second is a cache hit, so also freeze a fresh
        // property instance bypassing nothing — the enumeration itself is
        // deterministic) agree on ids; querying in different orders
        // changes nothing because the table is immutable.
        let f1 = freeze_connected(4);
        let f2 = freeze_connected(4);
        assert!(f1.is_total());
        let a = f1.add_vertex(f1.empty(), 0);
        let b = f1.add_vertex(a.clone(), 0);
        assert_eq!(f1.id_of(&b), f2.id_of(&b));
        assert_eq!(f1.id_of(&a), f2.id_of(&a));
        assert_eq!(f1.fingerprint(), f2.fingerprint());
    }

    #[test]
    fn fingerprints_separate_properties_and_widths() {
        let conn = freeze_connected(4);
        let bip = FrozenAlgebra::freeze(
            Algebra::shared(Bipartite),
            &FreezeOptions::for_interface_arity(4),
        );
        let narrow = freeze_connected(2);
        assert_ne!(conn.fingerprint(), bip.fingerprint());
        assert_ne!(conn.fingerprint(), narrow.fingerprint());
    }

    #[test]
    fn sealed_fingerprints_are_per_instance() {
        // Tail ids are instance-local, so sealed tables must never look
        // interchangeable: a corpus recorded under one sealed instance
        // has to fail the fingerprint check everywhere else.
        let opts = FreezeOptions::for_interface_arity(6);
        let a = FrozenAlgebra::freeze(Algebra::shared(HamiltonianCycle), &opts);
        let b = FrozenAlgebra::freeze(Algebra::shared(HamiltonianCycle), &opts);
        assert!(!a.is_total() && !b.is_total());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn explosive_algebras_seal() {
        let frozen = FrozenAlgebra::freeze(
            Algebra::shared(HamiltonianCycle),
            &FreezeOptions::for_interface_arity(6),
        );
        assert!(!frozen.is_total());
        assert_eq!(frozen.canonical_state_count(), 0);
        // Sealed tables intern on demand, in arrival order.
        let s = frozen.add_vertex(frozen.empty(), 0);
        let id = frozen.intern(&s).unwrap();
        assert_eq!(frozen.intern(&s), Some(id));
        assert_eq!(frozen.class_of(id), Some(s));
        assert_eq!(frozen.state_count(), 1);
    }

    #[test]
    fn budget_overrun_seals_with_the_enumerated_prefix() {
        // A tiny state budget aborts the Connected enumeration mid-way;
        // the sealed table must keep the canonically sorted prefix (not
        // discard it), and two constructions must agree on every prefix
        // id (the enumeration is memoized and deterministic) while
        // fingerprinting per instance.
        let opts = FreezeOptions {
            state_budget: 20,
            ..FreezeOptions::for_interface_arity(6)
        };
        let a = FrozenAlgebra::freeze(Algebra::shared(Connected), &opts);
        let b = FrozenAlgebra::freeze(Algebra::shared(Connected), &opts);
        assert!(!a.is_total());
        assert!(a.canonical_state_count() > 0, "prefix was discarded");
        assert_eq!(a.canonical_state_count(), b.canonical_state_count());
        let v = a.add_vertex(a.empty(), 0);
        assert_eq!(a.id_of(&a.empty()), b.id_of(&b.empty()));
        assert_eq!(a.id_of(&v), b.id_of(&v));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn oversized_arity_requests_seal_immediately() {
        let frozen = FrozenAlgebra::freeze(
            Algebra::shared(Connected),
            &FreezeOptions::for_interface_arity(MAX_FREEZE_ARITY + 1),
        );
        assert!(!frozen.is_total());
    }

    #[test]
    fn total_tables_are_closed_under_summary_shaped_ops() {
        // Walk a few op chains that mimic the certification pipeline
        // (sorting swaps, unions, glues, forgets) and check every
        // intermediate within the cap resolves.
        let frozen = freeze_connected(4);
        let mut s = frozen.empty();
        for _ in 0..3 {
            s = frozen.add_vertex(s, 0);
            assert!(frozen.id_of(&s).is_some());
        }
        s = frozen.add_edge(s, 0, 2, true);
        assert!(frozen.id_of(&s).is_some());
        s = frozen.swap(s, 0, 1);
        assert!(frozen.id_of(&s).is_some());
        let t = frozen.add_vertex(frozen.empty(), 0);
        let u = frozen.union(s, t);
        assert!(frozen.id_of(&u).is_some());
        let g = frozen.glue(u, 1, 3);
        assert!(frozen.id_of(&g).is_some());
        let f = frozen.forget(g, 0);
        assert!(frozen.id_of(&f).is_some());
    }
}
