//! The [`PerfectMatching`] algebra.

use crate::property::glue_order;
use crate::{Property, Slot};

/// Existence of a perfect matching in the marked subgraph.
#[derive(Clone, Debug, Default)]
pub struct PerfectMatching;

/// State: the set of "which live slots are already matched" masks reachable
/// by matchings that saturate every retired vertex.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MatchState {
    slots: u8,
    masks: Vec<u32>, // sorted, deduped
}

fn normalize(mut masks: Vec<u32>) -> Vec<u32> {
    masks.sort_unstable();
    masks.dedup();
    masks
}

fn drop_bit(mask: u32, slot: Slot) -> u32 {
    let low = mask & ((1u32 << slot) - 1);
    let high = mask >> (slot + 1);
    low | (high << slot)
}

impl Property for PerfectMatching {
    type State = MatchState;

    fn name(&self) -> String {
        "perfect-matching".into()
    }

    fn empty(&self) -> MatchState {
        MatchState {
            slots: 0,
            masks: vec![0],
        }
    }

    fn add_vertex(&self, s: &MatchState, _label: u32) -> MatchState {
        assert!(s.slots < 31, "slot budget");
        MatchState {
            slots: s.slots + 1,
            masks: s.masks.clone(), // new slot enters unmatched (bit 0)
        }
    }

    fn add_edge(&self, s: &MatchState, a: Slot, b: Slot, marked: bool) -> MatchState {
        if !marked {
            return s.clone();
        }
        let mut masks = s.masks.clone();
        for &m in &s.masks {
            if m & (1 << a) == 0 && m & (1 << b) == 0 {
                masks.push(m | (1 << a) | (1 << b));
            }
        }
        MatchState {
            slots: s.slots,
            masks: normalize(masks),
        }
    }

    fn glue(&self, s: &MatchState, a: Slot, b: Slot) -> MatchState {
        let (keep, drop) = glue_order(a, b);
        let masks = s
            .masks
            .iter()
            .copied()
            .filter(|&m| !(m & (1 << keep) != 0 && m & (1 << drop) != 0)) // double-matched
            .map(|m| {
                let merged = m & (1 << keep) != 0 || m & (1 << drop) != 0;
                let m = drop_bit(m, drop);
                if merged {
                    m | (1 << keep)
                } else {
                    m & !(1 << keep)
                }
            })
            .collect();
        MatchState {
            slots: s.slots - 1,
            masks: normalize(masks),
        }
    }

    fn forget(&self, s: &MatchState, a: Slot) -> MatchState {
        // Retired vertices must already be matched.
        let masks = s
            .masks
            .iter()
            .copied()
            .filter(|&m| m & (1 << a) != 0)
            .map(|m| drop_bit(m, a))
            .collect();
        MatchState {
            slots: s.slots - 1,
            masks: normalize(masks),
        }
    }

    fn union(&self, s1: &MatchState, s2: &MatchState) -> MatchState {
        assert!(s1.slots + s2.slots <= 31, "slot budget");
        let masks = s1
            .masks
            .iter()
            .flat_map(|&m1| s2.masks.iter().map(move |&m2| m1 | (m2 << s1.slots)))
            .collect();
        MatchState {
            slots: s1.slots + s2.slots,
            masks: normalize(masks),
        }
    }

    fn swap(&self, s: &MatchState, a: Slot, b: Slot) -> MatchState {
        let masks = s
            .masks
            .iter()
            .map(|&m| {
                let (ba, bb) = (m >> a & 1, m >> b & 1);
                let mut m = m & !(1 << a) & !(1 << b);
                m |= bb << a;
                m |= ba << b;
                m
            })
            .collect();
        MatchState {
            slots: s.slots,
            masks: normalize(masks),
        }
    }

    /// Set/map-valued states explode combinatorially; run sealed (see
    /// [`Property::enumerable`]).
    fn enumerable(&self) -> bool {
        false
    }

    fn accept(&self, s: &MatchState) -> bool {
        let full = if s.slots == 0 {
            0
        } else {
            (1u32 << s.slots) - 1
        };
        s.masks.contains(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::{check_against_oracle, oracles};
    use crate::Algebra;

    #[test]
    fn matches_oracle() {
        let alg = Algebra::new(PerfectMatching);
        check_against_oracle(&alg, &oracles::perfect_matching, 31, 120, 8);
    }

    #[test]
    fn path_parity() {
        let alg = Algebra::new(PerfectMatching);
        // P4 has a perfect matching, P3 does not.
        for (n, want) in [(4usize, true), (3, false)] {
            let mut s = alg.empty();
            for _ in 0..n {
                s = alg.add_vertex(s, 0);
            }
            for i in 0..n - 1 {
                s = alg.add_edge(s, i, i + 1, true);
            }
            assert_eq!(alg.accept(&s), want, "P{n}");
        }
    }

    #[test]
    fn drop_bit_shifts() {
        assert_eq!(drop_bit(0b101, 0), 0b10);
        assert_eq!(drop_bit(0b101, 1), 0b11);
        assert_eq!(drop_bit(0b101, 2), 0b01);
    }
}
