//! Partition-state algebras: [`Forest`], [`Connected`], [`Bipartite`].

use crate::property::glue_order;
use crate::{Property, Slot};

/// Relabels block ids by first occurrence (canonical form).
fn canon(blocks: &mut [u8]) {
    let mut map = [u8::MAX; 256];
    let mut next = 0u8;
    for b in blocks.iter_mut() {
        if map[*b as usize] == u8::MAX {
            map[*b as usize] = next;
            next += 1;
        }
        *b = map[*b as usize];
    }
}

fn merge_blocks(blocks: &mut [u8], keep: u8, drop: u8) {
    for b in blocks.iter_mut() {
        if *b == drop {
            *b = keep;
        }
    }
    canon(blocks);
}

// ---------------------------------------------------------------------------
// Forest
// ---------------------------------------------------------------------------

/// Acyclicity of the marked subgraph ("is a forest").
#[derive(Clone, Debug, Default)]
pub struct Forest;

/// State of [`Forest`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ForestState {
    part: Vec<u8>,
    cyclic: bool,
}

impl Property for Forest {
    type State = ForestState;

    fn name(&self) -> String {
        "forest".into()
    }

    fn empty(&self) -> ForestState {
        ForestState {
            part: Vec::new(),
            cyclic: false,
        }
    }

    fn add_vertex(&self, s: &ForestState, _label: u32) -> ForestState {
        let mut s = s.clone();
        let fresh = s.part.iter().copied().max().map_or(0, |m| m + 1);
        s.part.push(fresh);
        canon(&mut s.part);
        s
    }

    fn add_edge(&self, s: &ForestState, a: Slot, b: Slot, marked: bool) -> ForestState {
        let mut s = s.clone();
        if !marked || s.cyclic {
            return s;
        }
        if s.part[a] == s.part[b] {
            s.cyclic = true;
        } else {
            let (keep, drop) = (s.part[a].min(s.part[b]), s.part[a].max(s.part[b]));
            merge_blocks(&mut s.part, keep, drop);
        }
        s
    }

    fn glue(&self, s: &ForestState, a: Slot, b: Slot) -> ForestState {
        // Identifying two marked-connected vertices closes a cycle.
        let mut s = self.add_edge(s, a, b, true);
        let (_, drop) = glue_order(a, b);
        s.part.remove(drop);
        canon(&mut s.part);
        s
    }

    fn forget(&self, s: &ForestState, a: Slot) -> ForestState {
        let mut s = s.clone();
        s.part.remove(a);
        canon(&mut s.part);
        s
    }

    fn union(&self, s1: &ForestState, s2: &ForestState) -> ForestState {
        let offset = s1.part.iter().copied().max().map_or(0, |m| m + 1);
        let mut part = s1.part.clone();
        part.extend(s2.part.iter().map(|b| b + offset));
        canon(&mut part);
        ForestState {
            part,
            cyclic: s1.cyclic || s2.cyclic,
        }
    }

    fn swap(&self, s: &ForestState, a: Slot, b: Slot) -> ForestState {
        let mut s = s.clone();
        s.part.swap(a, b);
        canon(&mut s.part);
        s
    }

    fn accept(&self, s: &ForestState) -> bool {
        !s.cyclic
    }
}

// ---------------------------------------------------------------------------
// Connected
// ---------------------------------------------------------------------------

/// Connectivity of the marked subgraph over **all** vertices.
#[derive(Clone, Debug, Default)]
pub struct Connected;

/// State of [`Connected`]: live-slot partition plus the number of retired
/// components with no remaining slot (saturated at 2 — more than one dead
/// component can never reconnect).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConnectedState {
    part: Vec<u8>,
    dead: u8,
}

impl Property for Connected {
    type State = ConnectedState;

    fn name(&self) -> String {
        "connected".into()
    }

    fn empty(&self) -> ConnectedState {
        ConnectedState {
            part: Vec::new(),
            dead: 0,
        }
    }

    fn add_vertex(&self, s: &ConnectedState, _label: u32) -> ConnectedState {
        let mut s = s.clone();
        let fresh = s.part.iter().copied().max().map_or(0, |m| m + 1);
        s.part.push(fresh);
        canon(&mut s.part);
        s
    }

    fn add_edge(&self, s: &ConnectedState, a: Slot, b: Slot, marked: bool) -> ConnectedState {
        let mut s = s.clone();
        if marked && s.part[a] != s.part[b] {
            let (keep, drop) = (s.part[a].min(s.part[b]), s.part[a].max(s.part[b]));
            merge_blocks(&mut s.part, keep, drop);
        }
        s
    }

    fn glue(&self, s: &ConnectedState, a: Slot, b: Slot) -> ConnectedState {
        let mut s = self.add_edge(s, a, b, true);
        let (_, drop) = glue_order(a, b);
        s.part.remove(drop);
        canon(&mut s.part);
        s
    }

    fn forget(&self, s: &ConnectedState, a: Slot) -> ConnectedState {
        let mut s = s.clone();
        let block = s.part[a];
        s.part.remove(a);
        if !s.part.contains(&block) {
            s.dead = (s.dead + 1).min(2);
        }
        canon(&mut s.part);
        s
    }

    fn union(&self, s1: &ConnectedState, s2: &ConnectedState) -> ConnectedState {
        let offset = s1.part.iter().copied().max().map_or(0, |m| m + 1);
        let mut part = s1.part.clone();
        part.extend(s2.part.iter().map(|b| b + offset));
        canon(&mut part);
        ConnectedState {
            part,
            dead: (s1.dead + s2.dead).min(2),
        }
    }

    fn swap(&self, s: &ConnectedState, a: Slot, b: Slot) -> ConnectedState {
        let mut s = s.clone();
        s.part.swap(a, b);
        canon(&mut s.part);
        s
    }

    fn accept(&self, s: &ConnectedState) -> bool {
        let live_blocks = s.part.iter().copied().max().map_or(0, |m| m as usize + 1);
        live_blocks + s.dead as usize <= 1
    }
}

// ---------------------------------------------------------------------------
// Bipartite
// ---------------------------------------------------------------------------

/// Bipartiteness (2-colourability) of the marked subgraph.
#[derive(Clone, Debug, Default)]
pub struct Bipartite;

/// State of [`Bipartite`]: partition with per-slot parity relative to the
/// block's first slot, plus a sticky odd-cycle flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BipartiteState {
    part: Vec<u8>,
    parity: Vec<bool>,
    odd: bool,
}

impl BipartiteState {
    fn canonize(&mut self) {
        canon(&mut self.part);
        // Normalize parity so each block's first slot has parity false.
        let mut first_parity = [None::<bool>; 256];
        let flips: Vec<bool> = self
            .part
            .iter()
            .zip(&self.parity)
            .map(|(&b, &p)| *first_parity[b as usize].get_or_insert(p))
            .collect();
        for (i, p) in self.parity.iter_mut().enumerate() {
            *p ^= flips[i];
        }
    }

    fn join(&mut self, a: Slot, b: Slot, want_diff: bool) {
        if self.odd {
            return;
        }
        if self.part[a] == self.part[b] {
            if (self.parity[a] != self.parity[b]) != want_diff {
                self.odd = true;
            }
            return;
        }
        // Merge b's block into a's, flipping parities so the constraint
        // parity(a) XOR parity(b) == want_diff holds.
        let flip = (self.parity[a] != self.parity[b]) != want_diff;
        let (from, to) = (self.part[b], self.part[a]);
        for i in 0..self.part.len() {
            if self.part[i] == from {
                self.part[i] = to;
                if flip {
                    self.parity[i] = !self.parity[i];
                }
            }
        }
        self.canonize();
    }
}

impl Property for Bipartite {
    type State = BipartiteState;

    fn name(&self) -> String {
        "bipartite".into()
    }

    fn empty(&self) -> BipartiteState {
        BipartiteState {
            part: Vec::new(),
            parity: Vec::new(),
            odd: false,
        }
    }

    fn add_vertex(&self, s: &BipartiteState, _label: u32) -> BipartiteState {
        let mut s = s.clone();
        let fresh = s.part.iter().copied().max().map_or(0, |m| m + 1);
        s.part.push(fresh);
        s.parity.push(false);
        s.canonize();
        s
    }

    fn add_edge(&self, s: &BipartiteState, a: Slot, b: Slot, marked: bool) -> BipartiteState {
        let mut s = s.clone();
        if marked {
            s.join(a, b, true);
        }
        s
    }

    fn glue(&self, s: &BipartiteState, a: Slot, b: Slot) -> BipartiteState {
        let mut s = s.clone();
        s.join(a, b, false); // same vertex: equal colours
        let (_, drop) = glue_order(a, b);
        s.part.remove(drop);
        s.parity.remove(drop);
        s.canonize();
        s
    }

    fn forget(&self, s: &BipartiteState, a: Slot) -> BipartiteState {
        let mut s = s.clone();
        s.part.remove(a);
        s.parity.remove(a);
        s.canonize();
        s
    }

    fn union(&self, s1: &BipartiteState, s2: &BipartiteState) -> BipartiteState {
        let offset = s1.part.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BipartiteState {
            part: s1.part.clone(),
            parity: s1.parity.clone(),
            odd: s1.odd || s2.odd,
        };
        s.part.extend(s2.part.iter().map(|b| b + offset));
        s.parity.extend(s2.parity.iter().copied());
        s.canonize();
        s
    }

    fn swap(&self, s: &BipartiteState, a: Slot, b: Slot) -> BipartiteState {
        let mut s = s.clone();
        s.part.swap(a, b);
        s.parity.swap(a, b);
        s.canonize();
        s
    }

    fn accept(&self, s: &BipartiteState) -> bool {
        !s.odd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::{check_against_oracle, oracles};
    use crate::Algebra;

    #[test]
    fn forest_matches_oracle() {
        let alg = Algebra::new(Forest);
        check_against_oracle(&alg, &oracles::forest, 11, 120, 8);
    }

    #[test]
    fn connected_matches_oracle() {
        let alg = Algebra::new(Connected);
        check_against_oracle(&alg, &oracles::connected, 12, 120, 8);
    }

    #[test]
    fn bipartite_matches_oracle() {
        let alg = Algebra::new(Bipartite);
        check_against_oracle(&alg, &oracles::bipartite, 13, 120, 8);
    }

    #[test]
    fn forest_detects_triangle() {
        let alg = Algebra::new(Forest);
        let mut s = alg.empty();
        for _ in 0..3 {
            s = alg.add_vertex(s, 0);
        }
        s = alg.add_edge(s, 0, 1, true);
        s = alg.add_edge(s, 1, 2, true);
        assert!(alg.accept(&s));
        s = alg.add_edge(s, 0, 2, true);
        assert!(!alg.accept(&s));
    }

    #[test]
    fn unmarked_edges_are_invisible() {
        let alg = Algebra::new(Connected);
        let mut s = alg.empty();
        s = alg.add_vertex(s, 0);
        s = alg.add_vertex(s, 0);
        s = alg.add_edge(s, 0, 1, false);
        assert!(!alg.accept(&s), "unmarked edge must not connect");
        s = alg.add_edge(s, 0, 1, true);
        assert!(alg.accept(&s));
    }

    #[test]
    fn bipartite_odd_cycle_via_glue() {
        // Path of 3 vertices, glue the two ends: C2... use 4 vertices for an
        // odd identification: path v0-v1-v2, glue v0,v1's... build P3 then
        // identify ends => C2 (even); build P4 and identify ends => C3 (odd).
        let alg = Algebra::new(Bipartite);
        let mut s = alg.empty();
        for _ in 0..4 {
            s = alg.add_vertex(s, 0);
        }
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            s = alg.add_edge(s, a, b, true);
        }
        let odd = alg.glue(s, 0, 3); // C3
        assert!(!alg.accept(&odd));
    }
}
